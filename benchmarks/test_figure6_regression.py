"""Figure 6 — regression model compatibility.

The paper plots MRE pairs for 4 regressors × 10 parameter setups on
LACity, Adult, and Airline (Health has only binary labels).  All of
table-GAN, ARX and sdcMicro show good regression compatibility; sdcMicro
is generally the closest to the diagonal and table-GAN beats ARX.

Shape to reproduce: every method's mean |gap| is small, and the Health
dataset is excluded by construction.
"""

import pytest

from repro.evaluation import regression_compatibility
from repro.evaluation.compatibility import regressor_suite
from repro.evaluation.reporting import banner, format_scatter_summary, format_table

from benchmarks.conftest import run_once

METHODS = ("tablegan_low", "tablegan_high", "arx", "sdcmicro")
DATASETS = ("lacity", "adult", "airline")  # no Health (§5.2.2.2)


def reduced_suite():
    """4 regressors × 3 parameter setups (speed-scaled from 4×10)."""
    full = regressor_suite()
    picks = [0, 1, 2, 10, 14, 18, 20, 24, 28, 30, 34, 38]
    return [full[i] for i in picks]


@pytest.fixture(scope="module")
def figure6_reports(bundles, released_tables):
    suite = reduced_suite()
    reports = {}
    for dataset in DATASETS:
        bundle = bundles[dataset]
        for method in METHODS:
            reports[(dataset, method)] = regression_compatibility(
                bundle.train, released_tables[(dataset, method)],
                bundle.test, suite=suite,
            )
    return reports


@pytest.mark.benchmark(group="figure6")
def test_figure6_report(benchmark, figure6_reports, capsys):
    def build_rows():
        rows = []
        for dataset in DATASETS:
            for method in METHODS:
                report = figure6_reports[(dataset, method)]
                rows.append((dataset, method,
                             f"{report.mean_gap:.3f}", f"{report.max_gap:.3f}"))
        return rows

    rows = run_once(benchmark, build_rows)
    with capsys.disabled():
        print(banner(
            "Figure 6: regression compatibility — mean/max |MRE(orig) - MRE(released)|"
        ))
        print(format_table(["dataset", "method", "mean |gap|", "max |gap|"], rows))
        print()
        print(format_scatter_summary(
            figure6_reports[("lacity", "tablegan_low")],
            "LACity / table-GAN low privacy, per algorithm",
        ))


@pytest.mark.benchmark(group="figure6")
def test_figure6_health_excluded(benchmark):
    """§5.2.2.2: Health has only binary labels, no regression test."""
    run_once(benchmark, lambda: None)
    assert "health" not in DATASETS


@pytest.mark.benchmark(group="figure6")
def test_figure6_scores_finite(benchmark, figure6_reports):
    import numpy as np

    run_once(benchmark, lambda: None)
    for report in figure6_reports.values():
        for point in report.points:
            assert np.isfinite(point.score_original)
            assert np.isfinite(point.score_released)


@pytest.mark.benchmark(group="figure6")
def test_figure6_all_methods_reasonably_compatible(benchmark, figure6_reports):
    """The paper: 'in almost all datasets ... very good model compatibility'.

    The bound applies to the methods the paper highlights (ARX, sdcMicro,
    table-GAN low privacy); the deliberately degraded high-privacy setting
    only needs to stay finite.
    """
    import numpy as np

    run_once(benchmark, lambda: None)
    for (dataset, method), report in figure6_reports.items():
        if method == "tablegan_high":
            assert np.isfinite(report.mean_gap), (dataset, method)
        else:
            assert report.mean_gap < 2.0, (dataset, method)


@pytest.mark.benchmark(group="figure6")
def test_figure6_single_point_speed(benchmark, bundles, released_tables):
    bundle = bundles["adult"]
    suite = [regressor_suite()[0]]

    def one_point():
        return regression_compatibility(
            bundle.train, released_tables[("adult", "tablegan_low")],
            bundle.test, suite=suite,
        )

    report = benchmark(one_point)
    assert len(report.points) == 1
