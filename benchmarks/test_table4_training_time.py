"""Table 4 — table-GAN training time per dataset.

Paper's Table 4 (GTX970 GPU, TensorFlow, paper-scale rows):

    LACity 3.9 min   Adult 8.16 min   Health 1.9 min   Airline 20.2 min

Airline used the multi-chunk parallel approach of §4.4.  This harness
trains the same pipeline on the numpy substrate at laptop scale and prints
both.  Absolute times are not comparable (different substrate and scale);
the reproduced shape is that Airline (largest) trains via chunking and
costs the most, Health/LACity the least per row count.
"""

import pytest

# Tens of seconds of real training in the module fixture: CI's smoke lane
# (-m "not slow") skips this file; the tier-1 gate still runs it.
pytestmark = pytest.mark.slow

from repro import ChunkedTableGAN, TableGAN
from repro.evaluation.reporting import banner, format_table

from benchmarks.conftest import BENCH_DATASETS, gan_config, run_once

PAPER_MINUTES = {"lacity": 3.9, "adult": 8.16, "health": 1.9, "airline": 20.2}

_measured: dict[str, float] = {}


@pytest.mark.benchmark(group="table4", min_rounds=1)
@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_table4_training_time(benchmark, bundles, dataset):
    """Train table-GAN once per dataset and record wall-clock."""
    bundle = bundles[dataset]

    def train():
        if dataset == "airline":
            # §4.4: the paper trains Airline with the chunked approach.
            model = ChunkedTableGAN(gan_config("low"), n_chunks=2)
        else:
            model = TableGAN(gan_config("low"))
        model.fit(bundle.train)
        return model

    model = benchmark.pedantic(train, rounds=1, iterations=1)
    _measured[dataset] = float(model.train_seconds_)
    assert model.train_seconds_ > 0


@pytest.mark.benchmark(group="table4")
def test_table4_report(benchmark, capsys):
    """Print Table 4, paper vs. measured (runs after the training benches)."""

    def build_rows():
        rows = []
        for name in BENCH_DATASETS:
            measured = _measured.get(name)
            rows.append((
                name,
                f"{PAPER_MINUTES[name]:.2f} min",
                f"{measured:.1f} s" if measured is not None else "(not run)",
                "chunked (§4.4)" if name == "airline" else "single model",
            ))
        return rows

    rows = run_once(benchmark, build_rows)
    with capsys.disabled():
        print(banner("Table 4: table-GAN training time (paper vs measured)"))
        print(format_table(
            ["dataset", "paper (GPU, paper rows)", "measured (numpy, bench rows)", "mode"],
            rows,
        ))
