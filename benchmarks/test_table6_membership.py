"""Table 6 — membership attack vs. the δ privacy knob.

Paper's Table 6 (F-1 / AUCROC, averaged over per-class attack models):

    dataset  low (δ=0)      mid (δ=0.1)    high (δ=0.2)
    LACity   0.59 / 0.64    0.49 / 0.60    0.40 / 0.46
    Adult    0.51 / 0.49    0.41 / 0.50    0.19 / 0.50
    Health   0.33 / 0.48    0.34 / 0.50    0.30 / 0.45
    Airline  0.54 / 0.50    0.48 / 0.47    0.45 / 0.47

Shape to reproduce: attack success (F-1) trends *down* as δ grows, and
AUC stays near chance (≈0.5) — the attack never becomes strong.

Shadow-model attacks train extra table-GANs, so this bench runs one
dataset (Adult) at three δ settings.
"""

import pytest

# Tens of seconds of real training in the module fixture: CI's smoke lane
# (-m "not slow") skips this file; the tier-1 gate still runs it.
pytestmark = pytest.mark.slow

from repro import TableGAN, TableGanConfig
from repro.evaluation.reporting import banner, format_table
from repro.privacy import MembershipAttack

from benchmarks.conftest import BENCH_SEED, gan_config, run_once

PAPER_TABLE6_ADULT = {"low": (0.51, 0.49), "mid": (0.41, 0.50), "high": (0.19, 0.50)}
DELTAS = {"low": 0.0, "mid": 0.1, "high": 0.2}


@pytest.fixture(scope="module")
def attack_results(bundles):
    """Run the §4.5 attack against Adult at the three privacy settings."""
    bundle = bundles["adult"]
    out = {}
    for name, delta in DELTAS.items():
        config = gan_config("low").with_overrides(delta_mean=delta, delta_sd=delta)
        target = TableGAN(config)
        target.fit(bundle.train)
        attack = MembershipAttack(n_shadows=1, shadow_config=config, seed=BENCH_SEED)
        out[name] = attack.run(target, bundle.train, bundle.test)
    return out


@pytest.mark.benchmark(group="table6")
def test_table6_report(benchmark, attack_results, capsys):
    """Print Table 6 (Adult row), paper vs. measured."""

    def build_rows():
        rows = []
        for setting in ("low", "mid", "high"):
            paper_f1, paper_auc = PAPER_TABLE6_ADULT[setting]
            result = attack_results[setting]
            rows.append((
                f"adult / {setting} (δ={DELTAS[setting]})",
                f"{paper_f1:.2f} / {paper_auc:.2f}",
                f"{result.f1:.2f} / {result.auc:.2f}",
            ))
        return rows

    rows = run_once(benchmark, build_rows)
    with capsys.disabled():
        print(banner("Table 6: membership attack F-1 / AUCROC (Adult)"))
        print(format_table(["setting", "paper", "measured"], rows))


@pytest.mark.benchmark(group="table6")
def test_table6_attack_never_dominates(benchmark, attack_results):
    """AUC stays in the near-chance band the paper reports (<= ~0.65)."""

    def check():
        for result in attack_results.values():
            assert result.auc <= 0.75

    run_once(benchmark, check)


@pytest.mark.benchmark(group="table6")
def test_table6_privacy_reduces_attack(benchmark, attack_results):
    """Shape: the high-δ attacker gains no ranking power over the low-δ one.

    F-1 is threshold-dependent and noisy with one shadow model at laptop
    scale, so the assertion uses AUC (ranking quality) with slack.
    """
    run_once(benchmark, lambda: None)
    assert attack_results["high"].auc <= attack_results["low"].auc + 0.2
