"""Shared benchmark fixtures.

The paper's evaluation trains table-GAN on four datasets at up to a
million rows on GPU; this harness runs the identical pipeline at
laptop-scale (hundreds of rows, few epochs, numpy substrate).  Absolute
numbers therefore differ from the paper — every bench prints paper values
next to measured ones, and EXPERIMENTS.md records whether the *shape*
(orderings, zero cells, monotone trends) reproduces.

Set REPRO_BENCH_ROWS / REPRO_BENCH_EPOCHS to scale the harness up.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import TableGAN, high_privacy, low_privacy
from repro.baselines import (
    ArxAnonymizer,
    CondensationSynthesizer,
    DCGANSynthesizer,
    SdcMicroPerturber,
)
from repro.data.datasets import load_dataset

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "600"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "40"))
BENCH_SEED = 2018  # the paper's year, for luck and reproducibility

#: Datasets covered by the per-dataset benches.
BENCH_DATASETS = ("lacity", "adult", "health", "airline")


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark fixture.

    The harness is driven with ``pytest benchmarks/ --benchmark-only``,
    which skips any test not using the ``benchmark`` fixture; report and
    shape-assertion tests wrap their body in this helper so they are
    collected (and their single execution is timed).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def gan_config(privacy: str = "low", **overrides):
    """Scaled-down table-GAN config used across the benches."""
    params = dict(
        epochs=BENCH_EPOCHS, batch_size=32, base_channels=16, seed=BENCH_SEED
    )
    params.update(overrides)
    if privacy == "low":
        return low_privacy(**params)
    if privacy == "high":
        return high_privacy(**params)
    raise ValueError(f"unknown privacy preset {privacy!r}")


@pytest.fixture(scope="session")
def bundles():
    """One laptop-scale bundle per dataset."""
    return {
        name: load_dataset(name, rows=BENCH_ROWS, seed=BENCH_SEED)
        for name in BENCH_DATASETS
    }


@pytest.fixture(scope="session")
def released_tables(bundles):
    """Every method's released table for every dataset, computed once.

    Keys: (dataset, method) with method in
    {"tablegan_low", "tablegan_high", "dcgan", "condensation",
     "arx", "sdcmicro"}.
    """
    out = {}
    for name, bundle in bundles.items():
        train = bundle.train
        rng = np.random.default_rng(BENCH_SEED)

        gan_low = TableGAN(gan_config("low"))
        gan_low.fit(train)
        out[(name, "tablegan_low")] = gan_low.sample(train.n_rows, rng=rng)
        out[(name, "_model_low")] = gan_low

        gan_high = TableGAN(gan_config("high"))
        gan_high.fit(train)
        out[(name, "tablegan_high")] = gan_high.sample(train.n_rows, rng=rng)
        out[(name, "_model_high")] = gan_high

        dcgan = DCGANSynthesizer(config=gan_config("low"))
        dcgan.fit(train)
        out[(name, "dcgan")] = dcgan.sample(train.n_rows, rng=rng)

        condensation = CondensationSynthesizer(group_size=50, seed=BENCH_SEED)
        condensation.fit(train)
        out[(name, "condensation")] = condensation.sample(train.n_rows, rng=rng)

        out[(name, "arx")] = ArxAnonymizer(
            method="k_t", k=5, t=0.5, seed=BENCH_SEED
        ).anonymize(train)
        # "Best of sdcMicro" in the paper is the best privacy/compatibility
        # balance, which lands on light perturbation (small sensitive DCR in
        # Table 5) — hence the low noise level here.
        out[(name, "sdcmicro")] = SdcMicroPerturber(
            pd=0.5, alpha=0.05, seed=BENCH_SEED
        ).perturb(train)
    return out
