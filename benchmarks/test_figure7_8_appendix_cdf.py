"""Figures 7–8 (appendix) — CDFs for all sensitive attributes.

The appendix extends Figure 4's spot checks to many more sensitive
attributes of LACity/Health (Figure 7) and Adult/Airline (Figure 8).
This bench sweeps *every* sensitive attribute of all four datasets and
summarizes per-method mean CDF area distance.

Shape to reproduce: table-GAN low privacy attains the smallest (or tied)
mean distance on most datasets; condensation only occasionally acceptable.
"""

import numpy as np
import pytest

from repro.evaluation import compare_all_sensitive
from repro.evaluation.reporting import banner, format_table

from benchmarks.conftest import BENCH_DATASETS, run_once

GENERATORS = ("tablegan_low", "tablegan_high", "dcgan", "condensation")


@pytest.fixture(scope="module")
def appendix_distances(bundles, released_tables):
    out = {}
    for dataset in BENCH_DATASETS:
        train = bundles[dataset].train
        for method in GENERATORS:
            comparisons = compare_all_sensitive(
                train, released_tables[(dataset, method)]
            )
            out[(dataset, method)] = {
                name: c.area_distance for name, c in comparisons.items()
            }
    return out


@pytest.mark.benchmark(group="figure7_8")
def test_figures7_8_report(benchmark, appendix_distances, capsys):
    def build_rows():
        rows = []
        for dataset in BENCH_DATASETS:
            for method in GENERATORS:
                distances = appendix_distances[(dataset, method)]
                values = np.array(list(distances.values()))
                worst = max(distances, key=distances.get)
                rows.append((
                    dataset, method, str(len(distances)),
                    f"{values.mean():.3f}", f"{values.max():.3f}", worst,
                ))
        return rows

    rows = run_once(benchmark, build_rows)
    with capsys.disabled():
        print(banner(
            "Figures 7-8: CDF area distance over ALL sensitive attributes"
        ))
        print(format_table(
            ["dataset", "method", "# attrs", "mean area", "max area",
             "worst attribute"],
            rows,
        ))


@pytest.mark.benchmark(group="figure7_8")
def test_figures7_8_tablegan_beats_dcgan_overall(benchmark, appendix_distances):
    """table-GAN low privacy beats plain DCGAN on most datasets.

    (Condensation is excluded from the ordering assertion: the Gaussian
    dataset simulators flatter its per-group Gaussian model — see the
    deviation note in test_figure4_cdf.py and EXPERIMENTS.md.)
    """

    def count_wins():
        wins = 0
        for dataset in BENCH_DATASETS:
            ours = np.mean(list(appendix_distances[(dataset, "tablegan_low")].values()))
            dcgan = np.mean(list(appendix_distances[(dataset, "dcgan")].values()))
            wins += ours <= dcgan + 0.02
        return wins

    assert run_once(benchmark, count_wins) >= 3


@pytest.mark.benchmark(group="figure7_8")
def test_figures7_8_every_attribute_covered(benchmark, appendix_distances, bundles):
    run_once(benchmark, lambda: None)
    for dataset in BENCH_DATASETS:
        expected = set(bundles[dataset].train.schema.sensitive)
        got = set(appendix_distances[(dataset, "tablegan_low")])
        assert got == expected
