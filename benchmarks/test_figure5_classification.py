"""Figure 5 — classification model compatibility.

The paper plots, for 4 classifiers × 10 parameter setups, the F-1 score of
the model trained on the original table (x) against the model trained on
the released table (y); points on the diagonal mean perfect model
compatibility.  ARX and sdcMicro sit closest to the diagonal (they barely
change sensitive attributes); table-GAN low-privacy is the best synthetic
method and the only method with meaningful compatibility on Health.

Shape to reproduce: mean |x - y| ordering
    {arx, sdcmicro} <= tablegan_low <= tablegan_high-ish
and every method's points stay in [0, 1].
"""

import pytest

# Tens of seconds of real training in the module fixture: CI's smoke lane
# (-m "not slow") skips this file; the tier-1 gate still runs it.
pytestmark = pytest.mark.slow

from repro.evaluation import classification_compatibility
from repro.evaluation.compatibility import classifier_suite
from repro.evaluation.reporting import banner, format_scatter_summary, format_table

from benchmarks.conftest import run_once

METHODS = ("tablegan_low", "tablegan_high", "arx", "sdcmicro")
DATASETS = ("lacity", "adult", "health")


def reduced_suite():
    """4 algorithms × 3 parameter setups (speed-scaled from the paper's 4×10)."""
    full = classifier_suite()
    picks = [0, 4, 8, 10, 14, 18, 20, 24, 28, 30, 34, 38]
    return [full[i] for i in picks]


@pytest.fixture(scope="module")
def figure5_reports(bundles, released_tables):
    suite = reduced_suite()
    reports = {}
    for dataset in DATASETS:
        bundle = bundles[dataset]
        for method in METHODS:
            reports[(dataset, method)] = classification_compatibility(
                bundle.train, released_tables[(dataset, method)],
                bundle.test, suite=suite,
            )
    return reports


@pytest.mark.benchmark(group="figure5")
def test_figure5_report(benchmark, figure5_reports, capsys):
    """Print per-dataset, per-method diagonal-gap summaries."""

    def build_rows():
        rows = []
        for dataset in DATASETS:
            for method in METHODS:
                report = figure5_reports[(dataset, method)]
                rows.append((dataset, method,
                             f"{report.mean_gap:.3f}", f"{report.max_gap:.3f}"))
        return rows

    rows = run_once(benchmark, build_rows)
    with capsys.disabled():
        print(banner(
            "Figure 5: classification compatibility — mean/max |F1(orig) - F1(released)|"
        ))
        print(format_table(["dataset", "method", "mean |gap|", "max |gap|"], rows))
        print()
        print(format_scatter_summary(
            figure5_reports[("lacity", "tablegan_low")],
            "LACity / table-GAN low privacy, per algorithm",
        ))


@pytest.mark.benchmark(group="figure5")
def test_figure5_scores_valid(benchmark, figure5_reports):
    run_once(benchmark, lambda: None)
    for report in figure5_reports.values():
        for point in report.points:
            assert 0.0 <= point.score_original <= 1.0
            assert 0.0 <= point.score_released <= 1.0


@pytest.mark.benchmark(group="figure5")
def test_figure5_tablegan_low_is_usable(benchmark, figure5_reports):
    """table-GAN low privacy keeps meaningful compatibility everywhere."""
    run_once(benchmark, lambda: None)
    for dataset in DATASETS:
        report = figure5_reports[(dataset, "tablegan_low")]
        assert report.mean_gap < 0.5


@pytest.mark.benchmark(group="figure5")
def test_figure5_anonymization_close_to_diagonal(benchmark, figure5_reports):
    """ARX/sdcMicro barely modify data: near-diagonal compatibility."""
    run_once(benchmark, lambda: None)
    for dataset in DATASETS:
        for method in ("arx", "sdcmicro"):
            assert figure5_reports[(dataset, method)].mean_gap < 0.3


@pytest.mark.benchmark(group="figure5")
def test_figure5_single_point_speed(benchmark, bundles, released_tables):
    """Time one (algorithm, params) compatibility point."""
    bundle = bundles["adult"]
    suite = [classifier_suite()[0]]

    def one_point():
        return classification_compatibility(
            bundle.train, released_tables[("adult", "tablegan_low")],
            bundle.test, suite=suite,
        )

    report = benchmark(one_point)
    assert len(report.points) == 1
