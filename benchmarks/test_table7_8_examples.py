"""Tables 7–8 — generation examples on LACity.

The paper shows six sample records from the original LACity table
(Table 7) and, for each, the closest synthetic record from the low-privacy
table-GAN output (Table 8), demonstrating there is no one-to-one
correspondence: nearest synthetic records differ substantially from their
real counterparts.

Shape to reproduce: the printed pairs differ in every row (no verbatim
leak), while staying in plausible value ranges.
"""

import numpy as np
import pytest

from repro.evaluation.reporting import banner, format_table
from repro.privacy import closest_synthetic_rows
from repro.privacy.dcr import closest_record_distances

from benchmarks.conftest import run_once

DISPLAY_COLUMNS = ("year", "base_salary", "q1_payments", "q2_payments",
                   "q3_payments", "department", "job_class")


@pytest.mark.benchmark(group="table7_8")
def test_tables7_and_8_report(benchmark, bundles, released_tables, capsys):
    """Print six real LACity records and their closest synthetic records."""
    train = bundles["lacity"].train
    synthetic = released_tables[("lacity", "tablegan_low")]
    nearest = run_once(benchmark, lambda: closest_synthetic_rows(train, synthetic))

    real_rows, synth_rows = [], []
    for i in range(6):
        real = train.take([i])
        synth = synthetic.take([nearest[i]])
        real_rows.append([real.to_rows(1)[0][c] for c in DISPLAY_COLUMNS])
        synth_rows.append([synth.to_rows(1)[0][c] for c in DISPLAY_COLUMNS])

    def fmt(rows):
        return [
            [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row]
            for row in rows
        ]

    with capsys.disabled():
        print(banner("Table 7: sample records from the original LACity table"))
        print(format_table(DISPLAY_COLUMNS, fmt(real_rows)))
        print(banner("Table 8: closest synthetic record for each (low privacy)"))
        print(format_table(DISPLAY_COLUMNS, fmt(synth_rows)))


@pytest.mark.benchmark(group="table7_8")
def test_no_verbatim_leak(benchmark, bundles, released_tables):
    """Every real record's nearest synthetic record is strictly different."""
    train = bundles["lacity"].train
    synthetic = released_tables[("lacity", "tablegan_low")]
    distances = run_once(
        benchmark, lambda: closest_record_distances(train, synthetic)
    )
    assert np.all(distances > 0.0)


@pytest.mark.benchmark(group="table7_8")
def test_generation_speed(benchmark, released_tables):
    """Time synthetic-record generation (§4.3: 'lightweight')."""
    model = released_tables[("lacity", "_model_low")]
    table = benchmark(model.sample, 256)
    assert table.n_rows == 256
