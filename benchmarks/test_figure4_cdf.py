"""Figure 4 — cumulative distributions of selected sensitive attributes.

The paper overlays original vs. released CDFs for base salary (LACity),
work class (Adult), and destination airport ID (Airline) across four
generators: table-GAN low-privacy, table-GAN high-privacy, DCGAN, and
condensation.

Shape to reproduce (§5.2.1): table-GAN low-privacy tracks the original
most closely; condensation is the worst; DCGAN and table-GAN high-privacy
fall in between.  We quantify "closeness" as the area between CDFs.
"""

import pytest

# Tens of seconds of real training in the module fixture: CI's smoke lane
# (-m "not slow") skips this file; the tier-1 gate still runs it.
pytestmark = pytest.mark.slow

from repro.evaluation import compare_cdf
from repro.evaluation.reporting import banner, format_cdf_series, format_table

from benchmarks.conftest import run_once

FIGURE4_ATTRIBUTES = {
    "lacity": "base_salary",
    "adult": "workclass",
    "airline": "dest_airport",
}
GENERATORS = ("tablegan_low", "tablegan_high", "dcgan", "condensation")


@pytest.fixture(scope="module")
def figure4_areas(bundles, released_tables):
    areas = {}
    for dataset, attribute in FIGURE4_ATTRIBUTES.items():
        train = bundles[dataset].train
        for method in GENERATORS:
            comparison = compare_cdf(
                train, released_tables[(dataset, method)], attribute
            )
            areas[(dataset, method)] = comparison
    return areas


@pytest.mark.benchmark(group="figure4")
def test_figure4_report(benchmark, figure4_areas, capsys):
    """Print per-method CDF distances and one full series per dataset."""

    def build_rows():
        rows = []
        for dataset, attribute in FIGURE4_ATTRIBUTES.items():
            for method in GENERATORS:
                c = figure4_areas[(dataset, method)]
                rows.append((dataset, attribute, method,
                             f"{c.ks_statistic:.3f}", f"{c.area_distance:.3f}"))
        return rows

    rows = run_once(benchmark, build_rows)
    with capsys.disabled():
        print(banner("Figure 4: CDF similarity (KS statistic / area between CDFs)"))
        print(format_table(
            ["dataset", "attribute", "method", "KS", "area"], rows
        ))
        print("\nFull series, LACity base salary, table-GAN low privacy:")
        print(format_cdf_series(figure4_areas[("lacity", "tablegan_low")]))


@pytest.mark.benchmark(group="figure4")
def test_figure4_tablegan_low_tracks_original(benchmark, figure4_areas):
    """Paper §5.2.1: low-privacy table-GAN reproduces the CDFs well."""
    run_once(benchmark, lambda: None)
    for dataset in FIGURE4_ATTRIBUTES:
        assert figure4_areas[(dataset, "tablegan_low")].area_distance < 0.35


@pytest.mark.benchmark(group="figure4")
def test_figure4_tablegan_beats_dcgan(benchmark, figure4_areas):
    """Paper §5.2.1: table-GAN's loss design beats plain DCGAN's.

    KNOWN DEVIATION (recorded in EXPERIMENTS.md): the paper also reports
    condensation as the worst method, but our Gaussian-latent dataset
    simulators are a perfect match for condensation's per-group Gaussian
    model, so its *marginal* CDFs look excellent here — the deviation is an
    artifact of the offline dataset substitution, not of the table-GAN
    implementation.  The DCGAN ordering, which isolates the contribution of
    the information/classification losses, is asserted instead.
    """
    run_once(benchmark, lambda: None)
    wins = sum(
        figure4_areas[(d, "tablegan_low")].area_distance
        <= figure4_areas[(d, "dcgan")].area_distance + 0.05
        for d in FIGURE4_ATTRIBUTES
    )
    assert wins >= 2


@pytest.mark.benchmark(group="figure4")
def test_figure4_cdf_speed(benchmark, bundles, released_tables):
    """Time one CDF comparison (the Figure 4 kernel)."""
    train = bundles["lacity"].train
    released = released_tables[("lacity", "tablegan_low")]
    comparison = benchmark(compare_cdf, train, released, "base_salary")
    assert comparison.grid.size == 100
