"""Table 5 — distance to the closest record (avg ± std).

Paper's Table 5 (abridged; format avg ± std):

  QIDs + sensitive:
    dataset  ours-low      ours-high     best ARX      best sdcMicro  DCGAN
    LACity   0.96 ± 0.22   1.48 ± 0.30   0.68 ± 0.52   0.07 ± 0.17    0.83 ± 0.31
    Adult    0.75 ± 0.19   1.84 ± 0.23   0.59 ± 0.17   0.54 ± 0.12    0.88 ± 0.24
    Health   2.53 ± 0.43   2.75 ± 0.41   0.61 ± 0.25   1.23 ± 0.34    2.85 ± 0.42
    Airline  1.21 ± 0.21   1.23 ± 0.27   1.46 ± 0.32   0.98 ± 0.41    0.86 ± 0.15
  Sensitive only: ARX is 0 ± 0 everywhere; ours-low ≫ sdcMicro.

Shape to reproduce: (a) ARX sensitive-only DCR is exactly 0 ± 0;
(b) table-GAN's DCR is positive and larger than sdcMicro's;
(c) high privacy gives DCR >= low privacy.
"""

import pytest

from repro.evaluation.reporting import banner, format_table
from repro.privacy import dcr, dcr_sensitive_only

from benchmarks.conftest import BENCH_DATASETS, run_once

PAPER_ALL = {
    "lacity": ("0.96 ± 0.22", "1.48 ± 0.30", "0.68 ± 0.52", "0.07 ± 0.17", "0.83 ± 0.31"),
    "adult": ("0.75 ± 0.19", "1.84 ± 0.23", "0.59 ± 0.17", "0.54 ± 0.12", "0.88 ± 0.24"),
    "health": ("2.53 ± 0.43", "2.75 ± 0.41", "0.61 ± 0.25", "1.23 ± 0.34", "2.85 ± 0.42"),
    "airline": ("1.21 ± 0.21", "1.23 ± 0.27", "1.46 ± 0.32", "0.98 ± 0.41", "0.86 ± 0.15"),
}
PAPER_SENSITIVE = {
    "lacity": ("0.68 ± 0.18", "1.24 ± 0.17", "0 ± 0", "0.05 ± 0.13", "0.54 ± 0.18"),
    "adult": ("0.45 ± 0.14", "1.25 ± 0.17", "0 ± 0", "0.20 ± 0.10", "0.82 ± 0.24"),
    "health": ("2.40 ± 0.38", "2.56 ± 0.39", "0 ± 0", "0.22 ± 0.20", "2.68 ± 0.41"),
    "airline": ("0.96 ± 0.19", "1.08 ± 0.26", "0 ± 0", "0.69 ± 0.36", "0.76 ± 0.16"),
}
METHODS = ("tablegan_low", "tablegan_high", "arx", "sdcmicro", "dcgan")


def _measured_row(bundles, released_tables, dataset, metric_fn):
    bundle = bundles[dataset]
    cells = []
    for method in METHODS:
        result = metric_fn(bundle.train, released_tables[(dataset, method)])
        cells.append(result.formatted())
    return cells


@pytest.mark.benchmark(group="table5")
def test_table5_report(benchmark, bundles, released_tables, capsys):
    """Print Table 5, paper vs. measured, and assert the shape claims."""

    def build_rows():
        all_rows, sens_rows = [], []
        for dataset in BENCH_DATASETS:
            measured_all = _measured_row(bundles, released_tables, dataset, dcr)
            measured_sens = _measured_row(
                bundles, released_tables, dataset, dcr_sensitive_only
            )
            all_rows.append([dataset, "paper", *PAPER_ALL[dataset]])
            all_rows.append(["", "measured", *measured_all])
            sens_rows.append([dataset, "paper", *PAPER_SENSITIVE[dataset]])
            sens_rows.append(["", "measured", *measured_sens])

            train = bundles[dataset].train
            # Shape (a): ARX never touches sensitive values.
            arx_sens = dcr_sensitive_only(train, released_tables[(dataset, "arx")])
            assert arx_sens.mean == 0.0 and arx_sens.std == 0.0
            # Shape (b): table-GAN's sensitive-only DCR beats sdcMicro's.
            ours = dcr_sensitive_only(train, released_tables[(dataset, "tablegan_low")])
            sdc = dcr_sensitive_only(train, released_tables[(dataset, "sdcmicro")])
            assert ours.mean > sdc.mean
            # Every method leaves no verbatim full-record leak except ARX/sdcMicro.
            assert ours.min > 0.0
        return all_rows, sens_rows

    all_rows, sens_rows = run_once(benchmark, build_rows)
    headers = ["dataset", "source", "ours low", "ours high", "best ARX",
               "best sdcMicro", "DCGAN"]
    with capsys.disabled():
        print(banner("Table 5 (top): DCR over QIDs + sensitive attributes"))
        print(format_table(headers, all_rows))
        print(banner("Table 5 (bottom): DCR over sensitive attributes only"))
        print(format_table(headers, sens_rows))


@pytest.mark.benchmark(group="table5")
def test_table5_privacy_knob_shape(benchmark, bundles, released_tables):
    """Shape (c): raising δ must not reduce DCR on a majority of datasets."""

    def count_wins():
        wins = 0
        for dataset in BENCH_DATASETS:
            train = bundles[dataset].train
            low = dcr(train, released_tables[(dataset, "tablegan_low")]).mean
            high = dcr(train, released_tables[(dataset, "tablegan_high")]).mean
            wins += high >= low * 0.95  # tolerance for small-sample noise
        return wins

    assert run_once(benchmark, count_wins) >= 3


@pytest.mark.benchmark(group="table5")
def test_table5_dcr_speed(benchmark, bundles, released_tables):
    """Time one full-table DCR computation (the Table 5 kernel)."""
    bundle = bundles["adult"]
    released = released_tables[("adult", "tablegan_low")]
    result = benchmark(dcr, bundle.train, released)
    assert result.mean > 0
