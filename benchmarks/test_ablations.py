"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table/figure — these isolate the contribution of each
table-GAN component the paper argues for:

* classifier network on/off (§4.1.3 semantic integrity);
* information loss on/off (DCGAN baseline is exactly this, §5.2.1);
* δ sweep monotonicity (the privacy knob, §4.2.2);
* EWMA weight sensitivity (§4.3, w = 0.99).
"""

import numpy as np
import pytest

# Tens of seconds of real training in the module fixture: CI's smoke lane
# (-m "not slow") skips this file; the tier-1 gate still runs it.
pytestmark = pytest.mark.slow

from repro import TableGAN, TableGanConfig
from repro.evaluation import label_correlation_gap, mean_area_distance
from repro.evaluation.reporting import banner, format_table
from repro.privacy import dcr

from benchmarks.conftest import BENCH_SEED, gan_config, run_once


@pytest.fixture(scope="module")
def ablation_tables(bundles):
    """Train the ablation variants on Health (richest semantics)."""
    bundle = bundles["health"]
    variants = {
        "full table-GAN": gan_config("low"),
        "no classifier": gan_config("low").with_overrides(use_classifier=False),
        "no info loss": gan_config("low").with_overrides(use_info_loss=False),
        "neither (DCGAN)": gan_config("low").with_overrides(
            use_classifier=False, use_info_loss=False
        ),
    }
    out = {}
    for name, config in variants.items():
        gan = TableGAN(config)
        gan.fit(bundle.train)
        out[name] = gan.sample(bundle.train.n_rows, rng=np.random.default_rng(1))
    return bundle, out


def _label_consistency(table) -> float:
    """Glucose gap between diabetic and healthy synthetic records."""
    diabetes = table.column("diabetes")
    if diabetes.min() == diabetes.max():
        return 0.0
    glucose = table.column("glucose")
    return float(glucose[diabetes == 1].mean() - glucose[diabetes == 0].mean())


@pytest.mark.benchmark(group="ablations")
def test_component_ablation_report(benchmark, ablation_tables, capsys):
    """Fidelity + semantic integrity per ablation variant."""
    bundle, tables = ablation_tables

    def build_rows():
        real_gap = _label_consistency(bundle.train)
        rows = [("real data", "0.000", f"{real_gap:.1f}", "0.000")]
        for name, table in tables.items():
            rows.append((
                name,
                f"{mean_area_distance(bundle.train, table):.3f}",
                f"{_label_consistency(table):.1f}",
                f"{label_correlation_gap(bundle.train, table):.3f}",
            ))
        return rows

    rows = run_once(benchmark, build_rows)
    with capsys.disabled():
        print(banner("Ablation: component contributions on Health"))
        print(format_table(
            ["variant", "CDF distance (low=faithful)",
             "diabetic glucose gap (high=semantically valid)",
             "label-corr gap (low=semantically valid)"],
            rows,
        ))


@pytest.mark.benchmark(group="ablations")
def test_info_loss_improves_fidelity(benchmark, ablation_tables):
    """Information loss moves feature statistics toward the real table."""
    bundle, tables = ablation_tables

    def gaps():
        return (
            mean_area_distance(bundle.train, tables["full table-GAN"]),
            mean_area_distance(bundle.train, tables["neither (DCGAN)"]),
        )

    full, dcgan = run_once(benchmark, gaps)
    # Allow slack: on tiny runs the effect is directional, not huge.
    assert full <= dcgan + 0.1


@pytest.mark.benchmark(group="ablations")
def test_delta_sweep_monotone_fidelity(benchmark, bundles, capsys):
    """Raising δ must not improve fidelity (it gates the info gradient)."""
    bundle = bundles["adult"]

    def sweep():
        results = []
        for delta in (0.0, 0.3, 1.0):
            config = gan_config("low").with_overrides(
                delta_mean=delta, delta_sd=delta
            )
            gan = TableGAN(config)
            gan.fit(bundle.train)
            synthetic = gan.sample(
                bundle.train.n_rows, rng=np.random.default_rng(2)
            )
            results.append((
                delta,
                mean_area_distance(bundle.train, synthetic),
                dcr(bundle.train, synthetic).mean,
            ))
        return results

    results = run_once(benchmark, sweep)
    with capsys.disabled():
        print(banner("Ablation: δ sweep on Adult"))
        print(format_table(
            ["delta", "CDF distance", "DCR mean"],
            [(f"{d:.1f}", f"{f:.3f}", f"{p:.3f}") for d, f, p in results],
        ))
    # Extreme delta (1.0, hinge almost never active) must not beat delta=0
    # on fidelity by a clear margin.
    assert results[0][1] <= results[-1][1] + 0.05


@pytest.mark.benchmark(group="ablations")
def test_record_layout_ablation(benchmark, bundles, capsys):
    """§3.2 step 1: square-matrix layout vs the 1-D vector alternative.

    The paper states the 1-D convolution variant's "synthesis performance
    is sub-optimal due to its limited convolution computations"; this bench
    reproduces the comparison.
    """
    bundle = bundles["adult"]

    def sweep():
        results = []
        for layout in ("square", "vector"):
            config = gan_config("low").with_overrides(layout=layout)
            gan = TableGAN(config)
            gan.fit(bundle.train)
            synthetic = gan.sample(
                bundle.train.n_rows, rng=np.random.default_rng(3)
            )
            results.append((
                layout,
                mean_area_distance(bundle.train, synthetic),
                gan.train_seconds_,
            ))
        return results

    results = run_once(benchmark, sweep)
    with capsys.disabled():
        print(banner("Ablation: record layout (§3.2) on Adult"))
        print(format_table(
            ["layout", "CDF distance (low=faithful)", "train seconds"],
            [(l, f"{d:.3f}", f"{t:.1f}") for l, d, t in results],
        ))
    # Both layouts must at least produce usable tables; the paper's claimed
    # ordering (square <= vector) is reported, not hard-asserted, because at
    # laptop scale the gap is within run-to-run noise.
    for _, distance, _ in results:
        assert distance < 0.6


@pytest.mark.benchmark(group="ablations")
def test_ewma_weight_sensitivity(benchmark, bundles, capsys):
    """w controls smoothing only: training stays stable across settings."""
    bundle = bundles["adult"]

    def sweep():
        finals = []
        for weight in (0.9, 0.99):
            config = gan_config("low").with_overrides(ewma_weight=weight, epochs=4)
            gan = TableGAN(config)
            gan.fit(bundle.train)
            finals.append((weight, gan.history_.final_l_mean))
        return finals

    finals = run_once(benchmark, sweep)
    with capsys.disabled():
        print(banner("Ablation: EWMA weight w (§4.3)"))
        print(format_table(
            ["w", "final L_mean"],
            [(f"{w:.2f}", f"{v:.3f}") for w, v in finals],
        ))
    for _, value in finals:
        assert np.isfinite(value)
