"""Table 3 — dataset statistics.

Paper's Table 3:

    dataset  rows      QIDs  sensitive  test records
    LACity   15000     2     21         3000
    Adult    32561     5     9          16281
    Health   9813      4     28         1963
    Airline  1000000   2     30         200000

We reproduce the schema shape exactly (QID / sensitive counts) with
configurable row counts; this bench prints the comparison and times
dataset generation.
"""

import pytest

from repro.data.datasets import PAPER_ROWS, generate_adult, load_dataset
from repro.evaluation.reporting import banner, format_table

from benchmarks.conftest import BENCH_DATASETS, BENCH_ROWS, BENCH_SEED, run_once

PAPER_TABLE3 = {
    # dataset: (rows, qids, sensitive, test records)
    "lacity": (15000, 2, 21, 3000),
    "adult": (32561, 5, 9, 16281),
    "health": (9813, 4, 28, 1963),
    "airline": (1_000_000, 2, 30, 200_000),
}


@pytest.mark.benchmark(group="table3")
def test_table3_report(benchmark, bundles, capsys):
    """Print Table 3, paper vs. this harness."""

    def build_rows():
        rows = []
        for name in BENCH_DATASETS:
            bundle = bundles[name]
            schema = bundle.train.schema
            paper_rows, paper_qids, paper_sens, paper_test = PAPER_TABLE3[name]
            rows.append((
                name,
                f"{paper_rows} / {bundle.n_train + bundle.n_test}",
                f"{paper_qids} / {len(schema.qids)}",
                f"{paper_sens} / {len(schema.sensitive)}",
                f"{paper_test} / {bundle.n_test}",
            ))
            # The schema shape must match the paper exactly.
            assert len(schema.qids) == paper_qids
            assert len(schema.sensitive) == paper_sens
        return rows

    rows = run_once(benchmark, build_rows)
    with capsys.disabled():
        print(banner("Table 3: dataset statistics (paper / measured)"))
        print(format_table(
            ["dataset", "# records", "# QIDs", "# sensitive", "# test records"],
            rows,
        ))
        print(f"(measured harness runs at {BENCH_ROWS} rows; paper rows in "
              f"PAPER_ROWS = {PAPER_ROWS})")


@pytest.mark.benchmark(group="table3")
def test_table3_generation_speed(benchmark):
    """Time the Adult generator at harness scale."""
    table = benchmark(generate_adult, rows=BENCH_ROWS, seed=BENCH_SEED)
    assert table.n_rows == BENCH_ROWS


@pytest.mark.benchmark(group="table3")
def test_table3_bundle_load_speed(benchmark):
    """Time a full load (generate + split) of the LACity bundle."""
    bundle = benchmark(load_dataset, "lacity", rows=BENCH_ROWS, seed=BENCH_SEED)
    assert bundle.n_test == pytest.approx(BENCH_ROWS * 0.2, abs=1)
