"""Standalone runner for the training-engine benchmark.

Times the fast engine (stride-trick im2col, bincount col2im, cached index
plans, fused BatchNorm, flat-buffer Adam, float32) against the retained
reference implementations (fancy-index gather, ``np.add.at`` scatter,
separate-pass BatchNorm, per-parameter optimizer loops, float64) and
writes ``BENCH_engine.json``.  ``docs/benchmarks.md`` explains the report.

Run either of::

    PYTHONPATH=src python benchmarks/bench_engine.py [--out PATH] [--repeats N] [--quick]
    PYTHONPATH=src python -m repro bench [--out PATH] [--repeats N] [--quick]
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import main


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output JSON path (default: BENCH_engine.json)")
    parser.add_argument("--repeats", type=_positive_int, default=5,
                        help="timing repeats for conv micro-benchmarks")
    parser.add_argument("--fit-repeats", type=_positive_int, default=2,
                        help="timing repeats for the one-epoch fit benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: scaled-down workload, single repeats")
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args()
    sys.exit(main(args.out, repeats=args.repeats, fit_repeats=args.fit_repeats,
                  quick=args.quick))
