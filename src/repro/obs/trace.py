"""Structured tracing: context-propagated trace_id/span_id, JSONL spans.

Same discipline as :mod:`repro.utils.faults`: a module-global
``_TRACER`` that is ``None`` in the steady state.  Disarmed,
:func:`span` is one global load, an ``is None`` test, and a shared
no-op singleton — the hot paths keep their seams permanently.  Armed
(:func:`arm`, or the :func:`tracing` context manager), spans carry
``trace_id``/``span_id``/``parent`` through a :class:`contextvars.ContextVar`
and are written as one JSON object per line to a file or an in-memory
list.

Cross-thread propagation is explicit: a producer captures
:func:`current` into its queue entry, the consumer re-enters it with
:func:`attach` — this is how a request's handler span becomes the
parent of the batcher-worker spans that serve it.

Span record schema (see ``docs/observability.md``)::

    {"kind": "span", "name": "handler", "trace": "16-hex", "span": "16-hex",
     "parent": "16-hex" | null, "ts": unix_seconds, "dur_ms": float,
     "attrs": {...}}

:func:`log_event` emits ``{"kind": "event", ...}`` records for rare
structured facts (worker crashes); disarmed they fall back to one JSON
line on stderr so the fact is never silently dropped.
"""

import json
import os
import random
import sys
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar

_TRACER = None

#: (trace_id, span_id) of the innermost live span, or None.
_CTX = ContextVar("repro_trace_ctx", default=None)


def new_trace_id():
    """16-hex-char id; usable disarmed (the server always echoes one)."""
    return f"{random.getrandbits(64):016x}"


class _NoopSpan:
    """Shared singleton returned by :func:`span` while disarmed."""

    __slots__ = ()
    trace_id = None
    span_id = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self


_NOOP_SPAN = _NoopSpan()


class _NoopAttach:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP_ATTACH = _NoopAttach()


class Span:
    """A live span; use as a context manager.  ``set()`` adds attrs."""

    __slots__ = ("_tracer", "name", "trace_id", "parent_id", "span_id",
                 "attrs", "_ts", "_start", "_token")

    def __init__(self, tracer, name, trace_id, parent_id, attrs):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.span_id = f"{random.getrandbits(64):016x}"
        self.attrs = attrs

    def set(self, **attrs):
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        self._token = _CTX.set((self.trace_id, self.span_id))
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur_s = time.perf_counter() - self._start
        _CTX.reset(self._token)
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._write({
            "kind": "span",
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "ts": round(self._ts, 6),
            "dur_ms": round(dur_s * 1e3, 4),
            "attrs": self.attrs,
        })
        return False


class _Attach:
    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx):
        self._ctx = ctx

    def __enter__(self):
        self._token = _CTX.set(self._ctx)
        return self

    def __exit__(self, *exc):
        _CTX.reset(self._token)
        return False


class Tracer:
    """Serializes span records to a JSONL file or an append-only list.

    File sinks support size-capped rotation: when ``max_bytes`` is set
    and the live file would exceed it, the tracer shifts ``path.N`` →
    ``path.N+1`` (dropping the oldest beyond ``keep``), moves ``path``
    to ``path.1``, and reopens a fresh file — all under the write lock
    and only *between* whole-line writes, so no JSON record is ever
    torn across files.  Rotation state is per-process: pool workers
    arming the same path rotate independently (see
    ``docs/observability.md``).
    """

    def __init__(self, sink, *, max_bytes=None, keep=3):
        self._lock = threading.Lock()
        self.emitted = 0
        self.rotations = 0
        self._max_bytes = max_bytes if max_bytes and max_bytes > 0 else None
        self._keep = max(1, int(keep))
        if isinstance(sink, str):
            self._path = sink
            self._file = open(sink, "a", encoding="utf-8")
            self._sink = None
        else:
            self._path = None
            self._file = None
            self._sink = sink

    def _rotate_locked(self):
        """Shift the rotation chain and reopen; caller holds the lock."""
        self._file.close()
        for i in range(self._keep - 1, 0, -1):
            src = f"{self._path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self._path}.{i + 1}")
        os.replace(self._path, f"{self._path}.1")
        self._file = open(self._path, "a", encoding="utf-8")
        self.rotations += 1

    def _write(self, record):
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            self.emitted += 1
            if self._file is not None:
                if (self._max_bytes is not None
                        and self._file.tell() + len(line) > self._max_bytes
                        and self._file.tell() > 0):
                    self._rotate_locked()
                self._file.write(line)
                self._file.flush()
            else:
                self._sink.append(record)

    def close(self):
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def armed():
    return _TRACER is not None


def span(name, *, trace_id=None, **attrs):
    """Open a span.  Disarmed: returns the shared no-op singleton.

    With ``trace_id`` the span is a root of that trace (the handler
    passes the inbound/generated ``X-Trace-Id``); otherwise it parents
    to the innermost live span, or starts a fresh trace.
    """
    tracer = _TRACER
    if tracer is None:
        return _NOOP_SPAN
    if trace_id is not None:
        return Span(tracer, name, str(trace_id), None, attrs)
    ctx = _CTX.get()
    if ctx is None:
        return Span(tracer, name, new_trace_id(), None, attrs)
    return Span(tracer, name, ctx[0], ctx[1], attrs)


def emit(name, start_s, *, parent=None, parent_span=None, **attrs):
    """Emit an already-finished span timed from ``perf_counter`` value
    ``start_s``.  ``parent`` is a ``(trace_id, span_id)`` ctx tuple
    (defaults to the current one); ``parent_span`` overrides just the
    parent span id within the resolved trace.  Returns the new span id,
    or None while disarmed.
    """
    tracer = _TRACER
    if tracer is None:
        return None
    dur_s = time.perf_counter() - start_s
    ctx = parent if parent is not None else _CTX.get()
    if ctx is None:
        trace_id, parent_id = new_trace_id(), None
    else:
        trace_id, parent_id = ctx
    if parent_span is not None:
        parent_id = parent_span
    span_id = f"{random.getrandbits(64):016x}"
    tracer._write({
        "kind": "span",
        "name": name,
        "trace": trace_id,
        "span": span_id,
        "parent": parent_id,
        "ts": round(time.time() - dur_s, 6),
        "dur_ms": round(dur_s * 1e3, 4),
        "attrs": attrs,
    })
    return span_id


def current():
    """(trace_id, span_id) of the innermost live span, or None.

    Producers capture this into queue entries; consumers re-enter it
    with :func:`attach` so worker-thread spans parent correctly.
    """
    if _TRACER is None:
        return None
    return _CTX.get()


def attach(ctx):
    """Re-enter a captured trace context in another thread (no-op when
    disarmed or when there is nothing to attach)."""
    if _TRACER is None or ctx is None:
        return _NOOP_ATTACH
    return _Attach(ctx)


def log_event(name, **fields):
    """Structured one-line event.  Armed: written to the span sink.
    Disarmed: one JSON line on stderr — rare operational facts (worker
    crashes, quarantines) must survive without a tracer."""
    ctx = _CTX.get()
    record = {
        "kind": "event",
        "name": name,
        "ts": round(time.time(), 6),
        "trace": ctx[0] if ctx else None,
        "attrs": fields,
    }
    tracer = _TRACER
    if tracer is not None:
        tracer._write(record)
    else:
        sys.stderr.write(json.dumps(record, separators=(",", ":"),
                                    default=repr) + "\n")


def arm(sink, *, max_bytes=None, keep=3):
    """Install a tracer writing to ``sink`` (path or list). Returns it.

    ``max_bytes`` caps file sinks: the live file rotates to ``path.1``
    (… up to ``path.keep``) before a write would exceed the cap."""
    global _TRACER
    tracer = Tracer(sink, max_bytes=max_bytes, keep=keep)
    _TRACER = tracer
    return tracer


def disarm():
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    if tracer is not None:
        tracer.close()
    return tracer


@contextmanager
def tracing(sink, *, max_bytes=None, keep=3):
    """Arm tracing for a scope; restores the previous tracer on exit."""
    global _TRACER
    previous = _TRACER
    tracer = Tracer(sink, max_bytes=max_bytes, keep=keep)
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous
        tracer.close()
