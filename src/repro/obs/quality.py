"""Bounded-memory streaming sketches of synthetic tables, and drift scoring.

The serving tier ships millions of decoded rows with no runtime evidence
that they still look like the table the model was trained on.  This module
is the measurement core closing that gap:

* :class:`TableSketch` — a fixed-size summary of a row stream: per-column
  moments (count/mean/variance/min/max via a vectorized Welford merge),
  fixed-bin histograms keyed to the codec's per-column ``[lo, hi]`` ranges
  (so live histograms align bin-for-bin with the training reference),
  exact per-code counts for categorical columns (the vocabulary is part of
  the schema, so this is bounded too), and a seeded reservoir sample of
  whole rows.  Updates are O(bins × columns) memory regardless of how many
  rows stream through.
* :func:`reference_stats` — freezes a training table's sketch into a plain
  JSON dict for the model registry manifest.
* :func:`score_drift` — compares a live sketch snapshot against a frozen
  reference: KS-style binned-CDF distance for numeric columns (reusing
  :mod:`repro.evaluation.statistical`), total-variation distance for
  categorical columns, thresholded into ``ok | warn | drift`` per column
  plus a worst-of rollup.

Everything here is serving-agnostic: no locks, no metrics, no fault seams.
The serving-side wrapper (`repro.serve.quality.QualityMonitor`) owns those.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, TableSchema
from repro.evaluation.statistical import compare_binned

DEFAULT_BINS = 32
DEFAULT_TOP_K = 8
DEFAULT_RESERVOIR_ROWS = 256
WARN_THRESHOLD = 0.15
DRIFT_THRESHOLD = 0.30
MIN_ROWS = 100

_STATUS_ORDER = {"ok": 0, "warn": 1, "drift": 2}


class ReservoirSample:
    """Seeded algorithm-R reservoir over whole rows, vectorized per batch.

    Deterministic given the seed and the order of ``update`` calls; the RNG
    is private to the reservoir so sampling never perturbs any service RNG.
    """

    def __init__(self, k: int, n_features: int, seed: int = 0):
        self.k = int(k)
        self.rows = np.zeros((self.k, int(n_features)), dtype=np.float64)
        self.filled = 0
        self.seen = 0
        self._rng = np.random.default_rng(seed)

    def update(self, values: np.ndarray) -> None:
        if self.k == 0:
            self.seen += len(values)
            return
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values.reshape(1, -1)
        n = len(values)
        if n == 0:
            return
        if self.filled < self.k:
            take = min(self.k - self.filled, n)
            self.rows[self.filled:self.filled + take] = values[:take]
            self.filled += take
            self.seen += take
            values = values[take:]
            n = len(values)
            if n == 0:
                return
        # Stream indices are 1-based: row i is kept with probability k/i.
        idx = self.seen + np.arange(1, n + 1, dtype=np.float64)
        accept = np.nonzero(self._rng.random(n) < self.k / idx)[0]
        if accept.size:
            slots = self._rng.integers(0, self.k, size=accept.size)
            self.rows[slots] = values[accept]
        self.seen += n

    def sample(self) -> np.ndarray:
        """The current reservoir contents (filled rows only)."""
        return self.rows[: self.filled]


class TableSketch:
    """Streaming summary of a decoded-row stream, aligned to codec ranges.

    Moments and histograms are vectorized across all columns at once so one
    ``update`` costs a handful of NumPy ops on the whole block, not a
    Python loop per column — the tap must stay well under the serving
    bench's 3 % overhead gate.
    """

    def __init__(self, schema: TableSchema, col_min, col_max, *,
                 bins: int = DEFAULT_BINS, top_k: int = DEFAULT_TOP_K,
                 reservoir_rows: int = DEFAULT_RESERVOIR_ROWS, seed: int = 0):
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.schema = schema
        self.bins = int(bins)
        self.top_k = int(top_k)
        n = schema.n_columns
        self.lo = np.asarray(col_min, dtype=np.float64).copy()
        self.hi = np.asarray(col_max, dtype=np.float64).copy()
        if self.lo.shape != (n,) or self.hi.shape != (n,):
            raise ValueError(
                f"col_min/col_max must have {n} entries, got "
                f"{self.lo.shape}/{self.hi.shape}")
        span = self.hi - self.lo
        # Constant columns collapse every value into bin 0.
        self._scale = np.where(span > 0, self.bins / np.where(span > 0, span, 1.0), 0.0)
        self.count = 0
        self.mean = np.zeros(n, dtype=np.float64)
        self.m2 = np.zeros(n, dtype=np.float64)
        self.minv = np.full(n, np.inf, dtype=np.float64)
        self.maxv = np.full(n, -np.inf, dtype=np.float64)
        self.hist = np.zeros((n, self.bins), dtype=np.int64)
        self._cat_cols = [
            (i, spec.n_categories) for i, spec in enumerate(schema.columns)
            if spec.kind is ColumnKind.CATEGORICAL
        ]
        self.cat_counts = {
            i: np.zeros(n_cat, dtype=np.int64) for i, n_cat in self._cat_cols
        }
        self.reservoir = ReservoirSample(reservoir_rows, n, seed=seed)

    @classmethod
    def from_codec(cls, codec, **kwargs) -> "TableSketch":
        """Build a sketch keyed to a fitted ``TableCodec``'s ranges."""
        lo = [c.data_min_ for c in codec.codecs_]
        hi = [c.data_max_ for c in codec.codecs_]
        return cls(codec.schema_, lo, hi, **kwargs)

    def update(self, values: np.ndarray) -> None:
        """Fold a block of decoded rows (``(n, n_columns)``) into the sketch."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values.reshape(1, -1)
        n = len(values)
        if n == 0:
            return
        batch_mean = values.mean(axis=0)
        delta = values - batch_mean
        batch_m2 = np.einsum("ij,ij->j", delta, delta)
        self._merge_moments(n, batch_mean, batch_m2,
                            values.min(axis=0), values.max(axis=0))
        idx = ((values - self.lo) * self._scale).astype(np.int64)
        np.clip(idx, 0, self.bins - 1, out=idx)
        flat = idx + np.arange(values.shape[1], dtype=np.int64) * self.bins
        self.hist += np.bincount(
            flat.ravel(), minlength=self.hist.size).reshape(self.hist.shape)
        for i, n_cat in self._cat_cols:
            codes = np.clip(values[:, i].astype(np.int64), 0, n_cat - 1)
            self.cat_counts[i] += np.bincount(codes, minlength=n_cat)
        self.reservoir.update(values)

    def _merge_moments(self, n, mean, m2, mn, mx):
        if self.count == 0:
            self.count = int(n)
            self.mean = np.asarray(mean, dtype=np.float64).copy()
            self.m2 = np.asarray(m2, dtype=np.float64).copy()
            self.minv = np.asarray(mn, dtype=np.float64).copy()
            self.maxv = np.asarray(mx, dtype=np.float64).copy()
            return
        total = self.count + n
        delta = np.asarray(mean, dtype=np.float64) - self.mean
        self.mean += delta * (n / total)
        self.m2 += np.asarray(m2, dtype=np.float64) + delta * delta * (self.count * n / total)
        np.minimum(self.minv, mn, out=self.minv)
        np.maximum(self.maxv, mx, out=self.maxv)
        self.count = int(total)

    # -- cross-process folding ------------------------------------------

    def to_payload(self, arrays: bool = False) -> dict:
        """Compact stats-only form for shipping across a process boundary.

        The reservoir is deliberately excluded: procpool workers compute
        stats worker-side, while the parent reservoir-samples the decoded
        rows it already holds in the shared ring (keeping reservoir RNG
        consumption single-process and seeded).  ``arrays=True`` keeps
        ndarrays (cheaper to pickle through a result queue); the default
        list form is JSON-serializable.  :meth:`merge_payload` accepts both.
        """
        form = (lambda a: a) if arrays else (lambda a: a.tolist())
        return {
            "count": self.count,
            "mean": form(self.mean),
            "m2": form(self.m2),
            "min": form(self.minv),
            "max": form(self.maxv),
            "hist": form(self.hist),
            "cat": {str(i): form(c) for i, c in self.cat_counts.items()},
        }

    def merge_payload(self, payload: dict) -> None:
        """Fold a :meth:`to_payload` dict from another sketch of same shape."""
        n = int(payload["count"])
        if n == 0:
            return
        self._merge_moments(
            n,
            np.asarray(payload["mean"], dtype=np.float64),
            np.asarray(payload["m2"], dtype=np.float64),
            np.asarray(payload["min"], dtype=np.float64),
            np.asarray(payload["max"], dtype=np.float64),
        )
        self.hist += np.asarray(payload["hist"], dtype=np.int64)
        for key, counts in payload.get("cat", {}).items():
            self.cat_counts[int(key)] += np.asarray(counts, dtype=np.int64)

    def merge(self, other: "TableSketch") -> None:
        """Fold another sketch's statistics (not its reservoir) into this one."""
        self.merge_payload(other.to_payload())

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable summary, same shape as a frozen reference."""
        columns: dict[str, dict] = {}
        std = np.sqrt(np.maximum(self.m2, 0.0) / max(self.count, 1))
        for i, spec in enumerate(self.schema.columns):
            entry = {
                "kind": spec.kind.value,
                "lo": float(self.lo[i]),
                "hi": float(self.hi[i]),
                "mean": float(self.mean[i]) if self.count else 0.0,
                "std": float(std[i]) if self.count else 0.0,
                "min": float(self.minv[i]) if self.count else 0.0,
                "max": float(self.maxv[i]) if self.count else 0.0,
                "hist": self.hist[i].tolist(),
            }
            if i in self.cat_counts:
                counts = self.cat_counts[i]
                order = np.argsort(counts)[::-1][: self.top_k]
                entry["categories"] = {
                    "counts": counts.tolist(),
                    "top_k": [
                        [spec.categories[j], int(counts[j])]
                        for j in order if counts[j] > 0
                    ],
                }
            columns[spec.name] = entry
        return {
            "rows": self.count,
            "bins": self.bins,
            "columns": columns,
            "reservoir": {
                "rows": self.reservoir.filled,
                "seen": self.reservoir.seen,
            },
        }


def reference_stats(table, *, bins: int = DEFAULT_BINS) -> dict:
    """Freeze a training table's per-column statistics for the registry.

    Bin edges are keyed to the table's own min/max per column — exactly the
    ranges a ``TableCodec`` fitted on this table records — so a serve-time
    sketch built from the codec manifest aligns bin-for-bin.
    """
    values = np.asarray(table.values, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("cannot freeze reference stats from an empty table")
    sketch = TableSketch(
        table.schema, values.min(axis=0), values.max(axis=0),
        bins=bins, reservoir_rows=0,
    )
    sketch.update(values)
    return sketch.snapshot()


def _categorical_tv(ref_counts, live_counts) -> float:
    """Total-variation distance between two categorical count vectors."""
    a = np.asarray(ref_counts, dtype=np.float64)
    b = np.asarray(live_counts, dtype=np.float64)
    width = max(a.size, b.size)
    a = np.pad(a, (0, width - a.size))
    b = np.pad(b, (0, width - b.size))
    ta, tb = a.sum(), b.sum()
    if ta <= 0 or tb <= 0:
        return 0.0
    return float(0.5 * np.abs(a / ta - b / tb).sum())


def _status_for(statistic: float, warn: float, drift: float) -> str:
    if statistic >= drift:
        return "drift"
    if statistic >= warn:
        return "warn"
    return "ok"


def score_drift(reference: dict, live: dict, *,
                warn: float = WARN_THRESHOLD,
                drift: float = DRIFT_THRESHOLD,
                min_rows: int = MIN_ROWS) -> dict:
    """Score a live sketch snapshot against a frozen reference.

    Numeric columns use the binned KS statistic (max CDF gap over the
    shared bin grid); categorical columns use total-variation distance on
    code frequencies.  Below ``min_rows`` observed rows every column reads
    ``ok`` — a handful of rows is not evidence of drift.

    Returns ``{"status", "rows", "scored", "columns": {name: {"statistic",
    "area", "status"}}}`` where the rollup status is the worst column.
    """
    rows = int(live.get("rows", 0))
    scored = rows >= min_rows
    columns: dict[str, dict] = {}
    worst = "ok"
    for name, ref_col in reference.get("columns", {}).items():
        live_col = live.get("columns", {}).get(name)
        if live_col is None:
            continue
        if "categories" in ref_col and "categories" in live_col:
            stat = _categorical_tv(
                ref_col["categories"]["counts"],
                live_col["categories"]["counts"])
            area = stat
        else:
            cmp = compare_binned(name, ref_col["hist"], live_col["hist"])
            stat = cmp.ks_statistic
            area = cmp.area_distance
        status = _status_for(stat, warn, drift) if scored else "ok"
        columns[name] = {
            "statistic": round(float(stat), 6),
            "area": round(float(area), 6),
            "status": status,
        }
        if _STATUS_ORDER[status] > _STATUS_ORDER[worst]:
            worst = status
    return {
        "status": worst,
        "rows": rows,
        "scored": scored,
        "thresholds": {"warn": warn, "drift": drift, "min_rows": min_rows},
        "columns": columns,
    }
