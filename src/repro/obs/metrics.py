"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

The registry is the single store behind ``GET /metrics``.  Metric
*families* are registered by name; each family fans out into labeled
*series* (``family.labels(model="tiny")``) that the hot paths pre-bind
once and then update with a single lock-protected increment.  Rendering
is pull-based: :meth:`MetricsRegistry.render_text` emits Prometheus
text exposition, :meth:`MetricsRegistry.snapshot` a JSON-ready dict.
Gauges that mirror live state (queue depth, pooled rows) are refreshed
by *collectors* — callbacks that run at exposition time so the hot path
never pays for them.

:class:`LatencyHistogram` lives here (promoted from
``serve/server/metrics.py``, which re-exports it for compatibility).
Buckets are log-spaced 0.1 ms → ~2 min plus an overflow bucket, so one
histogram covers pool hits and multi-second cold loads with ~25 ints of
state.  Empty histograms are well-behaved: ``summary()`` renders zeros
(never NaN, never raises) so a routed-but-never-sampled model still
produces a valid ``/metrics`` row.
"""

import re
import threading

_BUCKET_BOUNDS = tuple(1e-4 * 1.6 ** i for i in range(24))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class LatencyHistogram:
    """Thread-safe log-bucket histogram of durations in seconds.

    O(1) space, O(buckets) record, percentile reconstruction from
    bucket counts.  ``merge`` folds another histogram in (used to
    aggregate per-model series into totals).
    """

    __slots__ = ("_lock", "_counts", "_count", "_sum", "_max")

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds):
        idx = len(_BUCKET_BOUNDS)
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if seconds <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    # Alias so histogram series read like their Prometheus kin.
    observe = record

    def merge(self, other):
        """Fold ``other``'s observations into this histogram."""
        if not isinstance(other, LatencyHistogram):
            raise TypeError(f"cannot merge {type(other).__name__}")
        with other._lock:
            counts = list(other._counts)
            count = other._count
            total = other._sum
            peak = other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            if peak > self._max:
                self._max = peak
        return self

    @staticmethod
    def _percentile(counts, total, q, max_s):
        """Upper bound of the bucket holding the q-quantile sample."""
        if total <= 0:
            return 0.0
        rank = q * total
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen >= rank:
                if i < len(_BUCKET_BOUNDS):
                    return _BUCKET_BOUNDS[i]
                return max_s
        return max_s

    def _state(self):
        with self._lock:
            return list(self._counts), self._count, self._sum, self._max

    def summary(self):
        counts, count, total, peak = self._state()
        if count == 0:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                    "p90_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        return {
            "count": count,
            "mean_ms": round(total / count * 1e3, 3),
            "p50_ms": round(self._percentile(counts, count, 0.50, peak) * 1e3, 3),
            "p90_ms": round(self._percentile(counts, count, 0.90, peak) * 1e3, 3),
            "p99_ms": round(self._percentile(counts, count, 0.99, peak) * 1e3, 3),
            "max_ms": round(peak * 1e3, 3),
        }


class Counter:
    """Monotonically increasing value; one labeled series of a family."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value; one labeled series of a family."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value):
        with self._lock:
            self._value = float(value)

    def inc(self, amount=1.0):
        with self._lock:
            self._value += amount

    def dec(self, amount=1.0):
        self.inc(-amount)

    @property
    def value(self):
        with self._lock:
            return self._value


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": LatencyHistogram}


class MetricFamily:
    """A named metric with zero or more labeled series."""

    __slots__ = ("name", "help", "kind", "_lock", "_series")

    def __init__(self, name, kind, help=""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self._lock = threading.Lock()
        self._series = {}

    def labels(self, **labelset):
        """Get or create the series for this label set (pre-bind once,
        then update lock-free of the family)."""
        for key in labelset:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name: {key!r}")
        key = tuple(sorted((k, str(v)) for k, v in labelset.items()))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _KINDS[self.kind]()
                self._series[key] = series
            return series

    def remove(self, **labelset):
        key = tuple(sorted((k, str(v)) for k, v in labelset.items()))
        with self._lock:
            self._series.pop(key, None)

    def series(self):
        with self._lock:
            return list(self._series.items())

    # Convenience pass-throughs for unlabeled metrics.
    def inc(self, amount=1.0):
        self.labels().inc(amount)

    def set(self, value):
        self.labels().set(value)

    def record(self, seconds):
        self.labels().record(seconds)

    observe = record


def _escape_label(value):
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key, extra=()):
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in key] + list(extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class MetricsRegistry:
    """Named metric families plus exposition-time collectors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families = {}
        self._collectors = []

    def _family(self, name, kind, help):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}")
            return family

    def counter(self, name, help=""):
        return self._family(name, "counter", help)

    def gauge(self, name, help=""):
        return self._family(name, "gauge", help)

    def histogram(self, name, help=""):
        return self._family(name, "histogram", help)

    def add_collector(self, fn):
        """Register a callback run before every render/snapshot —
        the place to refresh gauges that mirror live state."""
        with self._lock:
            self._collectors.append(fn)

    def remove_collector(self, fn):
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    def collect(self):
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn()

    def families(self):
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def snapshot(self):
        """JSON-ready dump: {name: {kind, help, series: [...]}}."""
        self.collect()
        out = {}
        for family in self.families():
            rows = []
            for key, series in family.series():
                labels = dict(key)
                if family.kind == "histogram":
                    rows.append({"labels": labels, **series.summary()})
                else:
                    rows.append({"labels": labels, "value": series.value})
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "series": rows}
        return out

    @staticmethod
    def _series_matches(key, label_filter):
        if not label_filter:
            return True
        labels = dict(key)
        for name, want in label_filter.items():
            have = labels.get(name)
            if have is None:
                return False
            if callable(want):
                if not want(have):
                    return False
            elif have != str(want):
                return False
        return True

    def render_text(self, label_filter=None):
        """Prometheus text exposition (version 0.0.4).

        ``label_filter`` optionally restricts the output to series whose
        labels match every entry — values compare as strings, or, when
        callable, act as predicates over the label value (how ``GET
        /metrics?model=NAME`` scrapes one model without paying full
        exposition cost).  Series missing a filtered label are omitted,
        as are families left with no matching series.
        """
        self.collect()
        lines = []
        for family in self.families():
            series_list = [
                (key, series) for key, series in family.series()
                if self._series_matches(key, label_filter)
            ]
            if label_filter and not series_list:
                continue
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, series in series_list:
                if family.kind == "histogram":
                    counts, count, total, _peak = series._state()
                    cumulative = 0
                    for bound, c in zip(_BUCKET_BOUNDS, counts):
                        cumulative += c
                        labels = _format_labels(key, (f'le="{bound:.6g}"',))
                        lines.append(
                            f"{family.name}_bucket{labels} {cumulative}")
                    cumulative += counts[-1]
                    labels = _format_labels(key, ('le="+Inf"',))
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    labels = _format_labels(key)
                    lines.append(f"{family.name}_sum{labels} {total:.9g}")
                    lines.append(f"{family.name}_count{labels} {count}")
                else:
                    labels = _format_labels(key)
                    lines.append(f"{family.name}{labels} {series.value:.9g}")
        return "\n".join(lines) + "\n"


#: Default process-wide registry.  The server, router, and batcher bind
#: here unless handed an explicit registry (the bench does, to isolate
#: per-mode numbers).
REGISTRY = MetricsRegistry()
