"""Always-on per-phase wall-clock accumulators.

:class:`PhaseProfile` is the cheap end of the telemetry spectrum: two
``perf_counter`` reads and a dict update per phase (~100 ns), so the
trainers and the synthesis service keep it on unconditionally.  The
bench reads ``snapshot()`` to embed stage breakdowns (shard compute vs
reduce wait vs optimizer step; generate vs decode) in
``BENCH_engine.json``.
"""

import threading


class PhaseProfile:
    """Accumulates (count, total seconds) per named phase."""

    __slots__ = ("_lock", "_phases")

    def __init__(self):
        self._lock = threading.Lock()
        self._phases = {}

    def add(self, phase, seconds):
        with self._lock:
            entry = self._phases.get(phase)
            if entry is None:
                self._phases[phase] = [1, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds

    def snapshot(self):
        """{phase: {"count": n, "total_s": seconds}} — JSON-ready."""
        with self._lock:
            return {
                phase: {"count": entry[0], "total_s": round(entry[1], 6)}
                for phase, entry in sorted(self._phases.items())
            }

    def reset(self):
        with self._lock:
            self._phases.clear()
