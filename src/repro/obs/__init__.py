"""Observability: metrics registry, structured tracing, profiling hooks.

Stdlib-only telemetry for the serving and training stack, built on the
same "zero cost until armed" discipline as :mod:`repro.utils.faults`:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges, and log-bucket histograms with labeled series,
  rendered either as JSON snapshots or Prometheus text exposition
  (``GET /metrics``);
* :mod:`repro.obs.trace` — context-propagated ``trace_id``/``span``
  tracing emitted as JSONL.  Disarmed (the steady state) every
  :func:`~repro.obs.trace.span` call is one module-global load, an
  ``is None`` test, and a shared no-op singleton; armed, spans flow
  HTTP client → handler → batcher tick → ``SynthesisService`` →
  generator forward and come back as the ``X-Trace-Id`` header;
* :mod:`repro.obs.profile` — :class:`PhaseProfile`, the always-on
  per-phase wall-clock accumulator behind the trainer and service
  stage breakdowns in ``BENCH_engine.json``.

CLI surface: ``repro serve --trace-log spans.jsonl`` arms the server,
``repro trace spans.jsonl`` summarizes/inspects the span log.  See
``docs/observability.md`` for the metric catalog and span schema.
"""

from repro.obs.metrics import (
    REGISTRY,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.obs.profile import PhaseProfile
from repro.obs.trace import (
    attach,
    current,
    log_event,
    new_trace_id,
    span,
    tracing,
)

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "LatencyHistogram",
    "PhaseProfile",
    "span",
    "current",
    "attach",
    "tracing",
    "log_event",
    "new_trace_id",
]
