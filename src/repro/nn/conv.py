"""Convolution layers: strided Conv2D and ConvTranspose2D.

Both are built on the blocked batch-major im2col/col2im engine
(:mod:`repro.nn.im2col`).  A transposed convolution's forward pass is
exactly the backward (input-gradient) pass of a normal convolution with
the same geometry, and vice versa — the implementation exploits that
symmetry so the two layers share all index computations (memoized per
record geometry in :mod:`repro.nn.plan`).

Under the batch-major column convention the hot matricizations are
views:

* ``Conv2D.backward`` feeds the weight GEMM the *view*
  ``grad.reshape(N, C_out, P)`` (exposed as ``_grad_mat`` for the layout
  tests) — the seed layout forced a whole-batch ``transpose(...).reshape``
  copy here;
* ``ConvTranspose2D.forward`` projects the *view*
  ``x.reshape(N, C_in, P)`` (exposed as ``_x_mat``) through the kernel.

Both layers run blocked: every forward/backward loops over batch blocks
sized by the plan's workspace budget, through the engine's shared scratch
pool, so large batches no longer fall out of cache.  Inference forwards
(``training=False``) stream and cache nothing;
a backward therefore requires the preceding forward to have run in
training mode.  Conv outputs are written contiguously (NCHW), which lets
the downstream ``Flatten`` at the discriminator's feature layer return a
view.

The seed implementations are retained verbatim as the layers'
``_reference_*`` paths and selected by :func:`repro.nn.im2col.
reference_ops` — that is how the engine benchmark replays the full
seed-idiom data path (fancy gather, position-major columns, batch-last
gradient copies, ``np.add.at`` scatter) on identical workloads.

Shapes are NCHW.  DCGAN uses kernel 4, stride 2, padding 1 throughout,
which exactly halves (conv) or doubles (deconv) spatial dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.im2col import (
    _reference_col2im,
    _reference_im2col,
    conv_gemm_backward,
    conv_gemm_forward,
    conv_output_size,
    fold_gemm_forward,
    is_reference,
    unfold_gemm_backward,
)
from repro.nn.layers import Layer, Parameter, channel_sum
from repro.nn.plan import conv_plan


class Conv2D(Layer):
    """2-D convolution with square kernel.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel:
        Square kernel size (DCGAN uses 4).
    stride, padding:
        Convolution geometry; must tile the input exactly.
    bias:
        Whether to learn a per-output-channel bias.
    rng:
        Seed or generator for DCGAN N(0, 0.02) weight init.
    dtype:
        Parameter dtype (the trainer's compute dtype; default float64).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, padding: int = 1, bias: bool = True, rng=None,
                 dtype=np.float64):
        super().__init__()
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        weight = initializers.dcgan_normal(
            (out_channels, in_channels, kernel, kernel), rng, dtype=dtype
        )
        self.weight = Parameter(weight, "conv.weight")
        self.bias = (
            Parameter(initializers.zeros((out_channels,), dtype=dtype), "conv.bias")
            if bias else None
        )
        self.params = [self.weight] + ([self.bias] if bias else [])
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._grad_mat: np.ndarray | None = None
        self._ref_mode = False
        #: Persistent backing buffer for the cached patch-matrix blocks.
        self._cache_ws: dict = {}

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for an input of ``height`` × ``width``."""
        return (
            conv_output_size(height, self.kernel, self.padding, self.stride),
            conv_output_size(width, self.kernel, self.padding, self.stride),
        )

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got {x.shape}"
            )
        self._ref_mode = is_reference()
        if self._ref_mode:
            return self._reference_forward(x)
        plan = conv_plan(x.shape, self.kernel, self.padding, self.stride)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        # Training caches the patch-matrix blocks for the weight GEMM;
        # inference streams blocks through the workspace and caches
        # nothing.  Bias is added per cache-hot GEMM block.
        out, cols = conv_gemm_forward(
            x, w_mat, plan, None, cache_cols=training,
            bias=None if self.bias is None else self.bias.data,
            cache_ws=self._cache_ws,
        )
        self._cols = cols
        self._x_shape = x.shape if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._ref_mode:
            return self._reference_backward(grad)
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training-mode forward")
        if self.bias is not None:
            self.bias.grad += channel_sum(grad)
        plan = conv_plan(self._x_shape, self.kernel, self.padding, self.stride)
        # The batch-major matricization is a reshape *view* of the NCHW
        # gradient (asserted by the layout-contract tests) — the seed
        # layout copied the whole gradient batch-last here.
        grad_mat = grad.reshape(grad.shape[0], self.out_channels, -1)
        self._grad_mat = grad_mat
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        wgrad, dx = conv_gemm_backward(grad_mat, self._cols, w_mat,
                                       self._x_shape, plan, None)
        self.weight.grad += wgrad.reshape(self.weight.shape)
        return dx

    # -- retained seed path (selected under reference_ops) ---------------
    def _reference_forward(self, x: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        out_h, out_w = self.output_shape(x.shape[2], x.shape[3])
        cols = _reference_im2col(x, self.kernel, self.padding, self.stride)
        self._cols = cols
        self._x_shape = x.shape
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = w_mat @ cols  # (C_out, out_h*out_w*N) in seed column order
        if self.bias is not None:
            out += self.bias.data[:, None]
        return out.reshape(self.out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)

    def _reference_backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        grad_mat = grad.transpose(1, 2, 3, 0).reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat @ self._cols.T).reshape(self.weight.shape)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        dcols = w_mat.T @ grad_mat
        return _reference_col2im(dcols, self._x_shape, self.kernel,
                                 self.padding, self.stride)


class ConvTranspose2D(Layer):
    """2-D transposed ("de-") convolution, the upsampling layer of DCGAN generators.

    The forward pass scatters each input pixel through the kernel into the
    (larger) output — the adjoint of :class:`Conv2D` — so spatial size grows
    by the stride factor with DCGAN's (kernel=4, stride=2, padding=1)
    geometry.

    The weight tensor has shape ``(in_channels, out_channels, k, k)``,
    matching the convention where the deconvolution is the gradient of a
    convolution mapping ``out_channels -> in_channels``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, padding: int = 1, bias: bool = True, rng=None,
                 dtype=np.float64):
        super().__init__()
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        weight = initializers.dcgan_normal(
            (in_channels, out_channels, kernel, kernel), rng, dtype=dtype
        )
        self.weight = Parameter(weight, "deconv.weight")
        self.bias = (
            Parameter(initializers.zeros((out_channels,), dtype=dtype), "deconv.bias")
            if bias else None
        )
        self.params = [self.weight] + ([self.bias] if bias else [])
        self._x: np.ndarray | None = None
        self._x_mat: np.ndarray | None = None
        self._out_shape: tuple[int, ...] | None = None
        self._ref_mode = False

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for an input of ``height`` × ``width``."""
        out_h = (height - 1) * self.stride - 2 * self.padding + self.kernel
        out_w = (width - 1) * self.stride - 2 * self.padding + self.kernel
        return out_h, out_w

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got {x.shape}"
            )
        batch, _, in_h, in_w = x.shape
        out_h, out_w = self.output_shape(in_h, in_w)
        self._out_shape = (batch, self.out_channels, out_h, out_w)
        self._ref_mode = is_reference()
        if self._ref_mode:
            return self._reference_forward(x)
        self._x = x
        # The generator-input matricization: a reshape *view* of x
        # (asserted by the layout-contract tests), projected through the
        # kernel block-by-block — the seed layout copied x batch-last.
        x_mat = x.reshape(batch, self.in_channels, -1)
        self._x_mat = x_mat
        plan = conv_plan(self._out_shape, self.kernel, self.padding, self.stride)
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        # Bias is added per scattered block while it is cache-hot.
        return fold_gemm_forward(
            x_mat, w_mat, self._out_shape, plan, None,
            bias=None if self.bias is None else self.bias.data,
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._ref_mode:
            return self._reference_backward(grad)
        if self._x_mat is None or self._out_shape is None:
            raise RuntimeError("backward called before forward")
        if self.bias is not None:
            self.bias.grad += channel_sum(grad)
        plan = conv_plan(self._out_shape, self.kernel, self.padding, self.stride)
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        # Input gradient: a plain convolution of grad with the kernel;
        # weight gradient: input activations against grad patches — one
        # blocked traversal gathers each grad block once for both.
        wgrad, dx = unfold_gemm_backward(grad, self._x_mat, w_mat, plan, None)
        self.weight.grad += wgrad.reshape(self.weight.shape)
        return dx

    # -- retained seed path (selected under reference_ops) ---------------
    def _reference_forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._x_mat = None
        batch = x.shape[0]
        # Treat x as the "output gradient" of the adjoint convolution:
        # columns = W^T @ x, then fold into the larger output image.
        w_mat = self.weight.data.reshape(self.in_channels, -1)  # (C_in, C_out*k*k)
        x_mat = x.transpose(1, 2, 3, 0).reshape(self.in_channels, -1)
        cols = w_mat.T @ x_mat  # (C_out*k*k, in_h*in_w*N) in seed column order
        out = _reference_col2im(cols, self._out_shape, self.kernel,
                                self.padding, self.stride)
        if self.bias is not None:
            out += self.bias.data.reshape(1, -1, 1, 1)
        return out

    def _reference_backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None or self._out_shape is None:
            raise RuntimeError("backward called before forward")
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        batch, _, in_h, in_w = self._x.shape
        # Input gradient: a plain convolution of grad with the kernel.
        grad_cols = _reference_im2col(grad, self.kernel, self.padding, self.stride)
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        dx = w_mat @ grad_cols  # (C_in, in_h*in_w*N) in seed column order
        dx = dx.reshape(self.in_channels, in_h, in_w, batch).transpose(3, 0, 1, 2)
        # Weight gradient: correlate input activations with output gradient patches.
        x_mat = self._x.transpose(1, 2, 3, 0).reshape(self.in_channels, -1)
        self.weight.grad += (x_mat @ grad_cols.T).reshape(self.weight.shape)
        return dx
