"""Convolution layers: strided Conv2D and ConvTranspose2D.

Both are built on the im2col/col2im machinery.  A transposed convolution's
forward pass is exactly the backward (input-gradient) pass of a normal
convolution with the same geometry, and vice versa — the implementation
exploits that symmetry so the two layers share all index computations
(memoized per geometry in :mod:`repro.nn.plan`).

Shapes are NCHW.  DCGAN uses kernel 4, stride 2, padding 1 throughout,
which exactly halves (conv) or doubles (deconv) spatial dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.layers import Layer, Parameter


class Conv2D(Layer):
    """2-D convolution with square kernel.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel:
        Square kernel size (DCGAN uses 4).
    stride, padding:
        Convolution geometry; must tile the input exactly.
    bias:
        Whether to learn a per-output-channel bias.
    rng:
        Seed or generator for DCGAN N(0, 0.02) weight init.
    dtype:
        Parameter dtype (the trainer's compute dtype; default float64).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, padding: int = 1, bias: bool = True, rng=None,
                 dtype=np.float64):
        super().__init__()
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        weight = initializers.dcgan_normal(
            (out_channels, in_channels, kernel, kernel), rng, dtype=dtype
        )
        self.weight = Parameter(weight, "conv.weight")
        self.bias = (
            Parameter(initializers.zeros((out_channels,), dtype=dtype), "conv.bias")
            if bias else None
        )
        self.params = [self.weight] + ([self.bias] if bias else [])
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for an input of ``height`` × ``width``."""
        return (
            conv_output_size(height, self.kernel, self.padding, self.stride),
            conv_output_size(width, self.kernel, self.padding, self.stride),
        )

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got {x.shape}"
            )
        batch = x.shape[0]
        out_h, out_w = self.output_shape(x.shape[2], x.shape[3])
        cols = im2col(x, self.kernel, self.padding, self.stride)
        self._cols = cols
        self._x_shape = x.shape
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = w_mat @ cols  # (C_out, out_h*out_w*N) in im2col column order
        if self.bias is not None:
            out += self.bias.data[:, None]
        return out.reshape(self.out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        grad_mat = grad.transpose(1, 2, 3, 0).reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat @ self._cols.T).reshape(self.weight.shape)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        dcols = w_mat.T @ grad_mat
        return col2im(dcols, self._x_shape, self.kernel, self.padding, self.stride)


class ConvTranspose2D(Layer):
    """2-D transposed ("de-") convolution, the upsampling layer of DCGAN generators.

    The forward pass scatters each input pixel through the kernel into the
    (larger) output — the adjoint of :class:`Conv2D` — so spatial size grows
    by the stride factor with DCGAN's (kernel=4, stride=2, padding=1)
    geometry.

    The weight tensor has shape ``(in_channels, out_channels, k, k)``,
    matching the convention where the deconvolution is the gradient of a
    convolution mapping ``out_channels -> in_channels``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, padding: int = 1, bias: bool = True, rng=None,
                 dtype=np.float64):
        super().__init__()
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        weight = initializers.dcgan_normal(
            (in_channels, out_channels, kernel, kernel), rng, dtype=dtype
        )
        self.weight = Parameter(weight, "deconv.weight")
        self.bias = (
            Parameter(initializers.zeros((out_channels,), dtype=dtype), "deconv.bias")
            if bias else None
        )
        self.params = [self.weight] + ([self.bias] if bias else [])
        self._x: np.ndarray | None = None
        self._out_shape: tuple[int, ...] | None = None

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for an input of ``height`` × ``width``."""
        out_h = (height - 1) * self.stride - 2 * self.padding + self.kernel
        out_w = (width - 1) * self.stride - 2 * self.padding + self.kernel
        return out_h, out_w

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got {x.shape}"
            )
        batch, _, in_h, in_w = x.shape
        out_h, out_w = self.output_shape(in_h, in_w)
        self._x = x
        self._out_shape = (batch, self.out_channels, out_h, out_w)
        # Treat x as the "output gradient" of the adjoint convolution:
        # columns = W^T @ x, then fold into the larger output image.
        w_mat = self.weight.data.reshape(self.in_channels, -1)  # (C_in, C_out*k*k)
        x_mat = x.transpose(1, 2, 3, 0).reshape(self.in_channels, -1)
        cols = w_mat.T @ x_mat  # (C_out*k*k, in_h*in_w*N) in im2col column order
        out = col2im(cols, self._out_shape, self.kernel, self.padding, self.stride)
        if self.bias is not None:
            # col2im output is freshly allocated, so the add is safely in place.
            out += self.bias.data.reshape(1, -1, 1, 1)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None or self._out_shape is None:
            raise RuntimeError("backward called before forward")
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        batch, _, in_h, in_w = self._x.shape
        # Input gradient: a plain convolution of grad with the kernel.
        grad_cols = im2col(grad, self.kernel, self.padding, self.stride)
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        dx = w_mat @ grad_cols  # (C_in, in_h*in_w*N) in im2col column order
        dx = dx.reshape(self.in_channels, in_h, in_w, batch).transpose(3, 0, 1, 2)
        # Weight gradient: correlate input activations with output gradient patches.
        x_mat = self._x.transpose(1, 2, 3, 0).reshape(self.in_channels, -1)
        self.weight.grad += (x_mat @ grad_cols.T).reshape(self.weight.shape)
        return dx
