"""A from-scratch numpy deep-learning framework.

This subpackage is the substrate replacing TensorFlow in the paper's
implementation: strided convolutions, transposed convolutions, batch
normalization, DCGAN initialization, Adam — everything table-GAN's three
networks need, with explicit per-layer backward rules.

Every hot path ships as a fast kernel paired with a retained reference
oracle (see ``docs/architecture.md``): im2col/col2im in
:mod:`repro.nn.im2col`, fused BatchNorm in :mod:`repro.nn.batchnorm`, and
the fused flat-buffer optimizers in :mod:`repro.nn.optim`.  The
:func:`reference_kernels` context manager flips every dispatch to the
oracles at once — that is how the engine benchmark times the seed idioms
against the engine on identical workloads.
"""

from contextlib import contextmanager

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.batchnorm import BatchNorm, reference_batchnorm
from repro.nn.conv import Conv2D, ConvTranspose2D
from repro.nn.conv1d import Conv1D, ConvTranspose1D
from repro.nn.flatbuf import FlatParameterBuffer
from repro.nn.im2col import cols_from_reference, cols_to_reference, reference_ops
from repro.nn.layers import Dense, Flatten, Layer, Parameter, Reshape
from repro.nn.losses import bce_with_logits, hinge_threshold, l1, mse, sigmoid
from repro.nn.optim import SGD, Adam, Optimizer, reference_optimizers
from repro.nn.plan import (
    ConvPlan,
    clear_plan_cache,
    conv_plan,
    plan_cache_info,
    set_workspace_budget,
    workspace_budget,
)
from repro.nn.sequential import Sequential
from repro.nn.serialization import (
    atomic_savez,
    load_npz,
    load_state_dict,
    save_npz,
    state_dict,
)


@contextmanager
def reference_kernels():
    """Force every fast-kernel dispatch onto the retained reference oracles.

    Combines :func:`repro.nn.im2col.reference_ops` (fancy-index gather +
    ``np.add.at`` scatter), :func:`repro.nn.batchnorm.reference_batchnorm`
    (separate mean/var passes, un-fused backward), and
    :func:`repro.nn.optim.reference_optimizers` (per-parameter update
    loops for optimizers constructed inside the context).
    """
    with reference_ops(), reference_batchnorm(), reference_optimizers():
        yield

__all__ = [
    "ConvPlan",
    "conv_plan",
    "plan_cache_info",
    "clear_plan_cache",
    "workspace_budget",
    "set_workspace_budget",
    "cols_to_reference",
    "cols_from_reference",
    "Layer",
    "Parameter",
    "FlatParameterBuffer",
    "Dense",
    "Flatten",
    "Reshape",
    "Conv2D",
    "ConvTranspose2D",
    "Conv1D",
    "ConvTranspose1D",
    "BatchNorm",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "reference_ops",
    "reference_batchnorm",
    "reference_optimizers",
    "reference_kernels",
    "bce_with_logits",
    "mse",
    "l1",
    "hinge_threshold",
    "sigmoid",
    "state_dict",
    "load_state_dict",
    "save_npz",
    "load_npz",
    "atomic_savez",
]
