"""A from-scratch numpy deep-learning framework.

This subpackage is the substrate replacing TensorFlow in the paper's
implementation: strided convolutions, transposed convolutions, batch
normalization, DCGAN initialization, Adam — everything table-GAN's three
networks need, with explicit per-layer backward rules.
"""

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.batchnorm import BatchNorm
from repro.nn.conv import Conv2D, ConvTranspose2D
from repro.nn.conv1d import Conv1D, ConvTranspose1D
from repro.nn.layers import Dense, Flatten, Layer, Parameter, Reshape
from repro.nn.losses import bce_with_logits, hinge_threshold, l1, mse, sigmoid
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.plan import ConvPlan, clear_plan_cache, conv_plan, plan_cache_info
from repro.nn.sequential import Sequential
from repro.nn.serialization import load_npz, load_state_dict, save_npz, state_dict

__all__ = [
    "ConvPlan",
    "conv_plan",
    "plan_cache_info",
    "clear_plan_cache",
    "Layer",
    "Parameter",
    "Dense",
    "Flatten",
    "Reshape",
    "Conv2D",
    "ConvTranspose2D",
    "Conv1D",
    "ConvTranspose1D",
    "BatchNorm",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "bce_with_logits",
    "mse",
    "l1",
    "hinge_threshold",
    "sigmoid",
    "state_dict",
    "load_state_dict",
    "save_npz",
    "load_npz",
]
