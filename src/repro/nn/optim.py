"""Optimizers: SGD with momentum, and Adam.

table-GAN trains all three networks with Adam using DCGAN's canonical
hyper-parameters (lr=2e-4, beta1=0.5).  Optimizers hold per-parameter
state keyed by identity, so one optimizer instance serves one network.

Two update paths live here, mirroring the fast-engine/reference-oracle
convention of :mod:`repro.nn.im2col`:

* the **fused engine** (default) — parameters are materialized as views
  into one contiguous buffer per dtype
  (:class:`~repro.nn.flatbuf.FlatParameterBuffer`) and ``step()`` runs a
  handful of whole-buffer in-place ufuncs over persistent state/scratch
  buffers: zero per-parameter temporaries, no python loop over
  parameters.  Because every op is elementwise, the fused update is
  bit-identical to the reference in every dtype;
* the **per-parameter reference** — the original loop over
  ``Parameter`` objects, retained verbatim as ``_step_per_parameter``
  and selected with ``fused=False`` or the :func:`reference_optimizers`
  context manager.  It is the oracle the equivalence tests in
  ``tests/nn/test_optim.py`` compare against and the baseline the
  ``adam`` section of the engine benchmark measures speedups from.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.nn.flatbuf import FlatParameterBuffer
from repro.nn.layers import Parameter

#: When True, newly constructed optimizers default to the per-parameter
#: reference path instead of the fused flat-buffer path.
_USE_REFERENCE = False


@contextmanager
def reference_optimizers():
    """Context manager making new optimizers default to the reference path.

    Used by the engine benchmark to time the per-parameter seed idiom
    against the fused flat-buffer update on identical workloads, and by
    tests exercising the dispatch.  Optimizers constructed before entering
    the context keep whichever path they were built with.
    """
    global _USE_REFERENCE
    previous = _USE_REFERENCE
    _USE_REFERENCE = True
    try:
        yield
    finally:
        _USE_REFERENCE = previous


class Optimizer:
    """Base optimizer over a fixed list of :class:`Parameter` objects.

    Parameters
    ----------
    params:
        The parameters to optimize — a list of :class:`Parameter` objects
        or an already-materialized
        :class:`~repro.nn.flatbuf.FlatParameterBuffer` (e.g. from
        :meth:`Sequential.flatten_parameters`), which is reused instead of
        flattening again.
    lr:
        Learning rate (positive).
    fused:
        ``True`` flattens the parameters into per-dtype buffers and uses
        whole-buffer updates; ``False`` keeps the per-parameter reference
        loop.  ``None`` (default) picks the fused path unless inside a
        :func:`reference_optimizers` context.
    """

    def __init__(self, params, lr: float, fused: bool | None = None):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if isinstance(params, FlatParameterBuffer):
            if fused is False:
                raise ValueError(
                    "cannot run per-parameter updates on a FlatParameterBuffer; "
                    "pass the parameter list instead"
                )
            self.params = list(params.params)
            self.lr = lr
            self.fused = True
            self._flat = params
            return
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr
        if fused is None:
            fused = not _USE_REFERENCE
        self.fused = bool(fused)
        if self.fused:
            # Reuse an existing exact-match buffer (e.g. from a prior
            # optimizer over the same network, or an explicit
            # Sequential.flatten_parameters) instead of refusing to rebind.
            self._flat = FlatParameterBuffer.owner_of(self.params) or \
                FlatParameterBuffer(self.params)
        else:
            self._flat = None

    def step(self) -> None:
        """Apply one update using the gradients accumulated in each parameter."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero all parameter gradients (one memset per buffer when fused)."""
        if self._flat is not None:
            self._flat.zero_grad()
            return
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, fused: bool | None = None):
        # Validate before super().__init__ materializes a flat buffer, so a
        # rejected construction leaves the parameters untouched.
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        super().__init__(params, lr, fused=fused)
        self.momentum = momentum
        if self._flat is not None:
            self._velocity = [np.zeros_like(g.data) for g in self._flat.groups]
            self._scratch = [np.empty_like(g.data) for g in self._flat.groups]
        else:
            self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        if self._flat is None:
            self._step_per_parameter()
            return
        for group, v, scratch in zip(self._flat.groups, self._velocity, self._scratch):
            if self.momentum > 0:
                np.multiply(v, self.momentum, out=v)
                np.add(v, group.grad, out=v)
                np.multiply(v, self.lr, out=scratch)
            else:
                np.multiply(group.grad, self.lr, out=scratch)
            np.subtract(group.data, scratch, out=group.data)

    def _step_per_parameter(self) -> None:
        """Reference oracle: the original per-parameter update loop."""
        for p, v in zip(self.params, self._velocity):
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    Defaults follow DCGAN: ``lr=2e-4, beta1=0.5, beta2=0.999``.
    """

    def __init__(self, params: list[Parameter], lr: float = 2e-4,
                 beta1: float = 0.5, beta2: float = 0.999, eps: float = 1e-8,
                 fused: bool | None = None):
        # Validate before super().__init__ materializes a flat buffer, so a
        # rejected construction leaves the parameters untouched.
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        super().__init__(params, lr, fused=fused)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        if self._flat is not None:
            groups = self._flat.groups
            self._m = [np.zeros_like(g.data) for g in groups]
            self._v = [np.zeros_like(g.data) for g in groups]
            # Two persistent whole-buffer scratch arrays per dtype group;
            # step() allocates nothing.
            self._scratch = [
                (np.empty_like(g.data), np.empty_like(g.data)) for g in groups
            ]
        else:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        if self._flat is None:
            self._step_per_parameter(bc1, bc2)
            return
        # Whole-buffer fused update.  Each line performs the same scalar
        # operation, in the same order, as the per-parameter reference —
        # elementwise ops over a concatenation of the parameters — so the
        # result is bit-identical in every dtype.
        for group, m, v, (s1, s2) in zip(
            self._flat.groups, self._m, self._v, self._scratch
        ):
            grad = group.grad
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            np.add(m, s1, out=m)
            np.multiply(grad, grad, out=s1)
            np.multiply(s1, 1.0 - self.beta2, out=s1)
            np.multiply(v, self.beta2, out=v)
            np.add(v, s1, out=v)
            np.divide(v, bc2, out=s1)
            np.sqrt(s1, out=s1)
            np.add(s1, self.eps, out=s1)
            np.divide(m, bc1, out=s2)
            np.multiply(s2, self.lr, out=s2)
            np.divide(s2, s1, out=s2)
            np.subtract(group.data, s2, out=group.data)

    def _step_per_parameter(self, bc1: float, bc2: float) -> None:
        """Reference oracle: the original per-parameter update loop."""
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot the moment buffers and step count (for checkpointing).

        Buffer layout depends on the update path: fused optimizers hold
        one (m, v) pair per dtype group, the reference path one pair per
        parameter.  A checkpoint therefore restores only into an
        optimizer built on the same path (both are deterministic per
        construction mode, so matching runs always agree).
        """
        state = {f"m{i:03d}": m.copy() for i, m in enumerate(self._m)}
        state.update({f"v{i:03d}": v.copy() for i, v in enumerate(self._v)})
        state["t"] = np.array([self._t], dtype=np.int64)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore moment buffers saved by :meth:`state_dict` in place.

        Raises ``ValueError`` on buffer-count or shape mismatches (e.g. a
        checkpoint from a different network or update path).
        """
        saved_pairs = sum(1 for k in state if k.startswith("m"))
        if saved_pairs != len(self._m):
            raise ValueError(
                f"checkpoint has {saved_pairs} moment buffers but this "
                f"optimizer holds {len(self._m)} (different update path "
                "or network?)"
            )
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            for current, key in ((m, f"m{i:03d}"), (v, f"v{i:03d}")):
                saved = state[key]
                if saved.shape != current.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: saved {saved.shape}, "
                        f"optimizer {current.shape}"
                    )
                np.copyto(current, saved.astype(current.dtype, copy=False))
        self._t = int(np.asarray(state["t"]).ravel()[0])
