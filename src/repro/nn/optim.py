"""Optimizers: SGD with momentum, and Adam.

table-GAN trains all three networks with Adam using DCGAN's canonical
hyper-parameters (lr=2e-4, beta1=0.5).  Optimizers hold per-parameter
state keyed by identity, so one optimizer instance serves one network.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer over a fixed list of :class:`Parameter` objects."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr

    def step(self) -> None:
        """Apply one update using the gradients accumulated in each parameter."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero all parameter gradients."""
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    Defaults follow DCGAN: ``lr=2e-4, beta1=0.5, beta2=0.999``.
    """

    def __init__(self, params: list[Parameter], lr: float = 2e-4,
                 beta1: float = 0.5, beta2: float = 0.999, eps: float = 1e-8):
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
