"""Layer protocol plus the shape-manipulating and dense layers.

Every layer implements ``forward``/``backward`` and exposes its learnable
:class:`Parameter` objects.  Backward passes accumulate into
``Parameter.grad``; optimizers consume and the trainer zeroes them.  The
design is deliberately layer-local (no tape/autograd) — the table-GAN
training loop only needs feed-forward stacks, and explicit per-layer
backward rules keep the numerics auditable.
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers


#: Cached all-ones row vectors for :func:`channel_sum`, keyed by (n, dtype).
_ONES: dict = {}


def channel_sum(t: np.ndarray) -> np.ndarray:
    """Per-channel sum of ``(N, C, *spatial)`` over every axis but 1.

    Contiguous batch-major tensors reduce their channel axis with long
    strided gathers under ``t.sum(axis=(0, 2, ...))``; routing the batch
    reduction through a BLAS GEMV (ones @ t) instead is 5–20× faster on
    the conv layers' activation shapes.  Falls back to ``np.sum`` for
    non-contiguous input.  Float summation order differs from ``np.sum``,
    so callers with a bit-exactness contract (the float64 BatchNorm
    oracle path) must not use it.
    """
    if t.ndim == 2:
        return t.sum(axis=0)
    if not t.flags["C_CONTIGUOUS"] or t.size < 8192:
        # Strided input, or too small for the GEMV call to pay for itself.
        return t.sum(axis=(0,) + tuple(range(2, t.ndim)))
    n, channels = t.shape[:2]
    key = (n, t.dtype)
    ones = _ONES.get(key)
    if ones is None:
        ones = _ONES[key] = np.ones(n, t.dtype)
    per_cell = ones @ t.reshape(n, -1)
    return per_cell.reshape(channels, -1).sum(axis=1)


class Parameter:
    """A learnable tensor: ``data`` plus accumulated gradient ``grad``.

    The floating dtype of ``data`` is preserved (that is the network's
    compute dtype); non-float input is promoted to float64.

    ``data`` and ``grad`` normally own their storage, but a parameter can
    be re-homed onto externally owned memory with :meth:`bind_views` —
    that is how :class:`~repro.nn.flatbuf.FlatParameterBuffer` turns a
    whole network's parameters into slices of one contiguous buffer so
    optimizers can update them with whole-buffer in-place ops.  All code
    that mutates a parameter does so in place (``grad += ...``,
    ``grad[...] = 0``, ``data[...] = loaded``), which is what keeps such
    views permanently valid.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        data = np.asarray(data)
        if not np.issubdtype(data.dtype, np.floating):
            data = data.astype(np.float64)
        self.data = data
        self.grad = np.zeros_like(self.data)
        self.name = name
        #: The FlatParameterBuffer this parameter is a view into, if any.
        #: Set by the buffer on construction; flattening twice is refused
        #: there because it would orphan the first buffer.
        self.flat_buffer = None

    def bind_views(self, data: np.ndarray, grad: np.ndarray) -> None:
        """Rebind ``data``/``grad`` to external views, preserving values.

        The views must match the parameter's current shape and dtype; the
        current data and accumulated gradient are copied into them so the
        rebind is invisible to training code.
        """
        for label, view in (("data", data), ("grad", grad)):
            if view.shape != self.data.shape or view.dtype != self.data.dtype:
                raise ValueError(
                    f"{label} view {view.shape}/{view.dtype} does not match "
                    f"parameter {self.name} {self.data.shape}/{self.data.dtype}"
                )
        data[...] = self.data
        grad[...] = self.grad
        self.data = data
        self.grad = grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad[...] = 0.0

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.data.shape})"


class Layer:
    """Base class for all layers.

    Subclasses override :meth:`forward` and :meth:`backward` and register
    parameters in ``self.params``.  ``forward`` may cache whatever it needs
    for the backward pass; caches must not be mutated by ``backward`` so a
    single forward can support multiple backward passes (the table-GAN
    generator update back-propagates through the discriminator twice: once
    from the adversarial loss and once from the information loss).
    """

    def __init__(self):
        self.params: list[Parameter] = []

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """All learnable parameters of this layer."""
        return list(self.params)

    def extra_state(self) -> dict[str, np.ndarray]:
        """Non-learnable state to persist (e.g. batch-norm running stats)."""
        return {}

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`extra_state`."""
        if state:
            raise ValueError(f"{type(self).__name__} has no extra state to load")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    init:
        ``"dcgan"`` (N(0, 0.02)), ``"he"``, or ``"glorot"``.
    bias:
        Whether to learn an additive bias.
    rng:
        Seed or generator for weight initialization.
    dtype:
        Parameter dtype (the trainer's compute dtype; default float64).
    """

    def __init__(self, in_features: int, out_features: int, init: str = "dcgan",
                 bias: bool = True, rng=None, dtype=np.float64):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        shape = (in_features, out_features)
        if init == "dcgan":
            weight = initializers.dcgan_normal(shape, rng, dtype=dtype)
        elif init == "he":
            weight = initializers.he_normal(shape, in_features, rng, dtype=dtype)
        elif init == "glorot":
            weight = initializers.glorot_uniform(
                shape, in_features, out_features, rng, dtype=dtype
            )
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Parameter(weight, "dense.weight")
        self.bias = (
            Parameter(initializers.zeros((out_features,), dtype=dtype), "dense.bias")
            if bias else None
        )
        self.params = [self.weight] + ([self.bias] if bias else [])
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Dense expects 2-D input, got shape {x.shape}")
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.data.T


class Flatten(Layer):
    """Flatten (N, ...) to (N, features), remembering the shape for backward."""

    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._shape)


class Reshape(Layer):
    """Reshape (N, features) to (N, *target_shape); inverse of :class:`Flatten`."""

    def __init__(self, target_shape: tuple[int, ...]):
        super().__init__()
        self.target_shape = tuple(target_shape)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return x.reshape(x.shape[0], *self.target_shape)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(grad.shape[0], -1)
