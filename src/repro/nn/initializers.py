"""Weight initializers for :mod:`repro.nn` layers.

DCGAN (Radford et al., 2015) initializes all weights from N(0, 0.02); we
expose that alongside the standard He and Glorot schemes used by the dense
networks in :mod:`repro.ml`.

Every initializer takes a ``dtype`` (default float64).  Samples are always
drawn in float64 and then cast, so a float32 network starts from the
rounded float64 weights — the random stream is identical across compute
dtypes, which keeps seeded runs comparable.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

#: Standard deviation DCGAN uses for every weight tensor.
DCGAN_STD = 0.02


def dcgan_normal(shape: tuple[int, ...], rng=None, dtype=np.float64) -> np.ndarray:
    """N(0, 0.02) initialization used by every DCGAN conv/deconv/dense layer."""
    rng = ensure_rng(rng)
    return rng.normal(0.0, DCGAN_STD, size=shape).astype(dtype, copy=False)


def he_normal(shape: tuple[int, ...], fan_in: int, rng=None,
              dtype=np.float64) -> np.ndarray:
    """He initialization, appropriate for ReLU-family activations."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    rng = ensure_rng(rng)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(dtype, copy=False)


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int, rng=None,
                   dtype=np.float64) -> np.ndarray:
    """Glorot/Xavier uniform initialization for tanh/sigmoid networks."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    rng = ensure_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype, copy=False)


def zeros(shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """All-zeros initializer (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=dtype)


def ones(shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """All-ones initializer (batch-norm scale)."""
    return np.ones(shape, dtype=dtype)
