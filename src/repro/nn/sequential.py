"""Sequential layer container with partial forward/backward access.

The table-GAN training loop needs more than a plain feed-forward stack:

* the information loss reads the discriminator's *feature layer* (the
  flattened activations right before the final dense+sigmoid), and
* the generator update injects a gradient at that feature layer and
  back-propagates it the rest of the way to the input.

``Sequential`` therefore caches per-layer outputs on every forward pass and
exposes :meth:`activation`, :meth:`backward_from` and :meth:`layer_index`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.flatbuf import FlatParameterBuffer
from repro.nn.layers import Layer, Parameter


class Sequential(Layer):
    """A stack of layers applied in order.

    Layers can be given names via ``(name, layer)`` tuples so call sites can
    refer to semantically meaningful points in the stack (e.g. the
    table-GAN discriminator names its flattened feature layer ``"features"``).
    """

    def __init__(self, layers):
        super().__init__()
        self.layers: list[Layer] = []
        self.names: list[str] = []
        for idx, entry in enumerate(layers):
            if isinstance(entry, tuple):
                name, layer = entry
            else:
                name, layer = f"layer{idx}", entry
            if not isinstance(layer, Layer):
                raise TypeError(f"entry {idx} is not a Layer: {layer!r}")
            self.layers.append(layer)
            self.names.append(name)
        self._activations: list[np.ndarray] | None = None

    def layer_index(self, name: str) -> int:
        """Index of the layer registered under ``name``."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"no layer named {name!r}; have {self.names}") from None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        activations = []
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
            activations.append(out)
        self._activations = activations
        return out

    #: Rows per chunk of :meth:`stream_forward` — sized so one chunk's
    #: inter-layer activations stay cache-resident (measured sweet spot of
    #: the blocked conv engine's serving workloads).
    STREAM_CHUNK_ROWS = 256

    def stream_forward(self, x: np.ndarray,
                       chunk_rows: int | None = None) -> np.ndarray:
        """Inference forward in row chunks; returns only the final output.

        Evaluation-mode layers are row-independent (BatchNorm serves its
        running statistics), so pushing ``chunk_rows``-row slices through
        the whole stack is numerically identical to one monolithic pass —
        but the inter-layer activation tensors stay cache-resident instead
        of streaming through DRAM, which keeps bulk-synthesis throughput
        flat in the batch size (the serving half of ISSUE 4; see
        ``docs/benchmarks.md``).  The chunking is a pure function of the
        input size, so for a given input the result is deterministic; it
        also makes bulk sampling *less* batch-size sensitive than the
        monolithic pass, since most rows go through identical
        ``chunk_rows``-row GEMMs regardless of the caller's batching.

        Unlike :meth:`forward`, no per-layer activations are recorded
        (``activation()`` still reports the last recorded pass); like any
        forward, it clobbers the layers' backward caches.
        """
        chunk = self.STREAM_CHUNK_ROWS if chunk_rows is None else int(chunk_rows)
        if chunk <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        n = x.shape[0]
        if n <= chunk:
            out = x
            for layer in self.layers:
                out = layer.forward(out, training=False)
            return out
        final: np.ndarray | None = None
        for start in range(0, n, chunk):
            out = x[start: min(start + chunk, n)]
            for layer in self.layers:
                out = layer.forward(out, training=False)
            if final is None:
                final = np.empty((n,) + out.shape[1:], dtype=out.dtype)
            final[start: start + out.shape[0]] = out
        return final

    def activation(self, name_or_index) -> np.ndarray:
        """Cached output of a layer from the most recent forward pass."""
        if self._activations is None:
            raise RuntimeError("no forward pass has been run yet")
        idx = name_or_index if isinstance(name_or_index, int) else self.layer_index(name_or_index)
        return self._activations[idx]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.backward_from(len(self.layers) - 1, grad)

    def backward_from(self, name_or_index, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` from the output of the given layer to the input.

        Uses the caches of the most recent forward pass.  Parameter gradients
        of the traversed layers accumulate; call :meth:`zero_grad` first when
        they should not (e.g. when the discriminator is only a conduit for
        generator gradients).
        """
        if self._activations is None:
            raise RuntimeError("backward called before forward")
        idx = name_or_index if isinstance(name_or_index, int) else self.layer_index(name_or_index)
        out_grad = grad
        for layer in reversed(self.layers[: idx + 1]):
            out_grad = layer.backward(out_grad)
        return out_grad

    def backward_to(self, name_or_index, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` from the network output down *to* a layer.

        Traverses only the layers above the given one and returns the
        gradient at that layer's **output** without propagating through it.
        Because every backward rule is linear in the incoming gradient, a
        gradient injected at that point (e.g. the table-GAN information
        loss at the discriminator's feature layer) can be *added* to the
        returned value and the sum propagated the rest of the way with
        :meth:`backward_from` — one traversal of the lower layers instead
        of two.
        """
        if self._activations is None:
            raise RuntimeError("backward called before forward")
        idx = name_or_index if isinstance(name_or_index, int) else self.layer_index(name_or_index)
        out_grad = grad
        for layer in reversed(self.layers[idx + 1 :]):
            out_grad = layer.backward(out_grad)
        return out_grad

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def flatten_parameters(self) -> FlatParameterBuffer:
        """Materialize all parameters as views into contiguous buffers.

        Rebinds every parameter's storage to slices of one buffer per
        dtype (values preserved) and returns the
        :class:`~repro.nn.flatbuf.FlatParameterBuffer`, which optimizers
        accept in place of a parameter list for fused whole-buffer
        updates.  Safe to call on a trained network: all mutation of
        parameters is in place, so existing gradients survive and
        subsequent forward/backward passes read and write the views.

        Idempotent: if the parameters are already materialized (e.g. a
        fused optimizer flattened them first), the existing buffer is
        returned rather than silently orphaning it with a new one.
        """
        params = self.parameters()
        existing = FlatParameterBuffer.owner_of(params)
        if existing is not None:
            return existing
        return FlatParameterBuffer(params)

    def extra_state(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.layers):
            for key, value in layer.extra_state().items():
                state[f"{idx:04d}.{key}"] = value
        return state

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        per_layer: dict[int, dict[str, np.ndarray]] = {}
        for key, value in state.items():
            idx_str, _, rest = key.partition(".")
            per_layer.setdefault(int(idx_str), {})[rest] = value
        for idx, layer_state in per_layer.items():
            self.layers[idx].load_extra_state(layer_state)

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)
