"""im2col / col2im index machinery for convolution layers.

Convolutions are implemented as matrix multiplications over patch matrices
("columns").  ``im2col`` unfolds sliding windows of the input into a 2-D
matrix; ``col2im`` folds a column matrix back into an image, accumulating
overlapping contributions — exactly the adjoint of ``im2col``, which is what
back-propagation (and transposed convolution) needs.

Shapes follow the NCHW convention used throughout :mod:`repro.nn`.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, padding: int, stride: int) -> int:
    """Spatial output size of a convolution along one axis.

    Raises ``ValueError`` when the geometry does not divide evenly, because a
    silent floor would desynchronize ``im2col`` and ``col2im``.
    """
    numerator = size + 2 * padding - kernel
    if numerator < 0:
        raise ValueError(
            f"kernel {kernel} larger than padded input {size + 2 * padding}"
        )
    if numerator % stride != 0:
        raise ValueError(
            f"convolution geometry not exact: size={size}, kernel={kernel}, "
            f"padding={padding}, stride={stride}"
        )
    return numerator // stride + 1


def im2col_indices(
    x_shape: tuple[int, int, int, int],
    kernel: int,
    padding: int,
    stride: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the (channel, row, col) gather indices for ``im2col``.

    Returns index arrays ``(k, i, j)`` such that
    ``padded_x[:, k, i, j]`` has shape ``(N, C*kernel*kernel, H_out*W_out)``.
    """
    _, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel, padding, stride)
    out_w = conv_output_size(width, kernel, padding, stride)

    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    return k, i, j


def im2col(x: np.ndarray, kernel: int, padding: int, stride: int) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into a patch matrix.

    Returns an array of shape ``(C*kernel*kernel, N*H_out*W_out)`` whose
    columns are flattened receptive fields.
    """
    k, i, j = im2col_indices(x.shape, kernel, padding, stride)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    cols = x[:, k, i, j]
    channels_kk = cols.shape[1]
    return cols.transpose(1, 2, 0).reshape(channels_kk, -1)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    padding: int,
    stride: int,
) -> np.ndarray:
    """Fold a patch matrix back into an image, accumulating overlaps.

    ``cols`` has shape ``(C*kernel*kernel, N*H_out*W_out)`` and the result
    has shape ``x_shape`` (N, C, H, W).  This is the exact adjoint of
    :func:`im2col` and therefore also the forward pass of a transposed
    convolution.
    """
    batch, channels, height, width = x_shape
    padded_h, padded_w = height + 2 * padding, width + 2 * padding
    x_padded = np.zeros((batch, channels, padded_h, padded_w), dtype=cols.dtype)

    k, i, j = im2col_indices(x_shape, kernel, padding, stride)
    cols_reshaped = cols.reshape(channels * kernel * kernel, -1, batch)
    cols_reshaped = cols_reshaped.transpose(2, 0, 1)
    np.add.at(x_padded, (slice(None), k, i, j), cols_reshaped)

    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]
