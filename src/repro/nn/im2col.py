"""im2col / col2im patch machinery for convolution layers.

Convolutions are implemented as matrix multiplications over patch matrices
("columns").  ``im2col`` unfolds sliding windows of the input into a 2-D
matrix; ``col2im`` folds a column matrix back into an image, accumulating
overlapping contributions — exactly the adjoint of ``im2col``, which is what
back-propagation (and transposed convolution) needs.

Two implementations live here:

* the **fast engine** — gather through
  ``np.lib.stride_tricks.sliding_window_view`` (one strided copy, no index
  arrays) and a three-way scatter over the memoized
  :class:`~repro.nn.plan.ConvPlan`: a single fancy-index assignment when
  ``stride >= kernel`` makes the windows non-overlapping; ``np.bincount``
  over the plan's precomputed flat indices for overlapping float64 columns
  (bincount accumulates in float64 natively); and a per-kernel-offset
  strided accumulation for overlapping float32 columns, which stays in
  dtype instead of paying bincount's float64 round trip.  All three
  accumulate each output cell in ascending kernel-offset order — the same
  per-cell order as the reference ``np.add.at`` — so results are
  bit-identical to the oracle in every dtype;
* the **reference oracle** — the original fancy-index gather and
  ``np.add.at`` scatter, retained as ``_reference_*`` functions and used by
  the equivalence tests and the engine benchmark.

``im2col``/``col2im`` accept both 4-D ``(N, C, H, W)`` and 3-D
``(N, C, L)`` inputs, so the 1-D layers in :mod:`repro.nn.conv1d` share the
same engine.  Shapes follow the NCHW convention used throughout
:mod:`repro.nn`; column order is spatial-position-major, then batch.

All index arithmetic is memoized per geometry in :mod:`repro.nn.plan`
(:func:`~repro.nn.plan.conv_plan`), so the hot loop never recomputes
gather/scatter indices.  The :func:`reference_ops` context manager flips
the public functions onto the oracle — the engine benchmark
(``python -m repro bench``, see ``docs/benchmarks.md``) uses it to time
both paths on identical workloads.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.nn.plan import ConvPlan, conv_output_size, conv_plan

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "im2col_indices",
    "reference_ops",
]

#: When True, the public im2col/col2im dispatch to the reference oracle.
_USE_REFERENCE = False


@contextmanager
def reference_ops():
    """Context manager forcing the reference im2col/col2im implementations.

    Used by the engine benchmark to time the seed idioms against the fast
    engine on identical workloads, and by tests exercising the dispatch.
    """
    global _USE_REFERENCE
    previous = _USE_REFERENCE
    _USE_REFERENCE = True
    try:
        yield
    finally:
        _USE_REFERENCE = previous


def _pad_spatial(x: np.ndarray, padding: int) -> np.ndarray:
    if padding <= 0:
        return x
    width = ((0, 0), (0, 0)) + ((padding, padding),) * (x.ndim - 2)
    return np.pad(x, width, mode="constant")


def _pad_spatial_fast(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial axes of ``x`` via one allocation and one copy.

    Bit-identical to :func:`_pad_spatial` (``np.pad`` with constant zeros)
    but without np.pad's per-axis python machinery — the padded buffer is
    on the hottest path of every convolution forward.
    """
    if padding <= 0:
        return x
    out = np.zeros(
        x.shape[:2] + tuple(s + 2 * padding for s in x.shape[2:]), dtype=x.dtype
    )
    core = (slice(None), slice(None)) + tuple(
        slice(padding, padding + s) for s in x.shape[2:]
    )
    out[core] = x
    return out


def im2col(x: np.ndarray, kernel: int, padding: int, stride: int) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) or (N, C, L) into a patch matrix.

    Returns ``(C*kernel*kernel, N*H_out*W_out)`` for 4-D input and
    ``(C*kernel, N*L_out)`` for 3-D input; columns are flattened receptive
    fields.  The input dtype is preserved.
    """
    if x.ndim not in (3, 4):
        raise ValueError(f"expected (N, C, L) or (N, C, H, W) input, got {x.shape}")
    if _USE_REFERENCE:
        if x.ndim == 4:
            return _reference_im2col(x, kernel, padding, stride)
        return _reference_im2col_1d(x, kernel, padding, stride)
    plan = conv_plan(x.shape, kernel, padding, stride)
    x = _pad_spatial_fast(x, padding)
    if x.ndim == 4:
        windows = np.lib.stride_tricks.sliding_window_view(
            x, (kernel, kernel), axis=(2, 3)
        )[:, :, ::stride, ::stride]  # (N, C, out_h, out_w, k, k)
        cols = windows.transpose(1, 4, 5, 2, 3, 0)  # (C, k, k, out_h, out_w, N)
    else:
        windows = np.lib.stride_tricks.sliding_window_view(
            x, kernel, axis=2
        )[:, :, ::stride]  # (N, C, out_len, k)
        cols = windows.transpose(1, 3, 2, 0)  # (C, k, out_len, N)
    # The reshape of the transposed view is the single data copy.
    return cols.reshape(plan.cols_shape)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    kernel: int,
    padding: int,
    stride: int,
) -> np.ndarray:
    """Fold a patch matrix back into an image, accumulating overlaps.

    ``cols`` has the shape produced by :func:`im2col` for ``x_shape`` and
    the result has shape ``x_shape``.  This is the exact adjoint of
    :func:`im2col` and therefore also the forward pass of a transposed
    convolution.  The dtype of ``cols`` is preserved.
    """
    if len(x_shape) not in (3, 4):
        raise ValueError(f"expected (N, C, L) or (N, C, H, W) shape, got {x_shape}")
    if _USE_REFERENCE:
        if len(x_shape) == 4:
            return _reference_col2im(cols, x_shape, kernel, padding, stride)
        return _reference_col2im_1d(cols, x_shape, kernel, padding, stride)
    plan = conv_plan(x_shape, kernel, padding, stride)
    if cols.shape != plan.cols_shape:
        raise ValueError(
            f"cols shape {cols.shape} does not match plan {plan.cols_shape} "
            f"for x_shape={tuple(x_shape)}"
        )
    if not plan.overlapping:
        # stride >= kernel: scatter targets are disjoint, no accumulation
        # needed — one fancy-index assignment, staying in dtype throughout.
        flat = np.zeros(plan.padded_size, dtype=cols.dtype)
        flat[plan.scatter_index] = cols.ravel()
        return flat.reshape(plan.padded_shape)[plan.unpad_slices]
    if cols.dtype == np.float64:
        # scatter_index is laid out in cols.ravel() order; each target cell
        # accumulates its overlaps in ascending kernel-offset order, the
        # same per-cell order as the reference np.add.at, so sums are
        # bit-identical.
        flat = np.bincount(
            plan.scatter_index, weights=cols.ravel(), minlength=plan.padded_size
        )
        return flat.reshape(plan.padded_shape)[plan.unpad_slices]
    return _offset_col2im(cols, plan)


def _offset_col2im(cols: np.ndarray, plan: ConvPlan) -> np.ndarray:
    """Overlapping scatter as ``kernel**S`` strided-slice accumulations.

    Accumulates in a channel-major ``(C, *padded, N)`` buffer so both the
    reads (contiguous column blocks) and the writes (stride-``s`` slices
    with contiguous inner runs of N) stay cache-friendly, then transposes
    back to NCHW once.  The kernel offsets are visited in ascending order,
    matching the reference per-cell accumulation order bit for bit.
    """
    kernel, stride = plan.kernel, plan.stride
    padded = plan.padded_shape[2:]
    out = plan.out
    acc = np.zeros((plan.channels, *padded, plan.batch), dtype=cols.dtype)
    spatial_core = plan.unpad_slices[2:]
    if len(padded) == 2:
        view = cols.reshape(
            plan.channels, kernel, kernel, out[0], out[1], plan.batch
        )
        for ki in range(kernel):
            rows = slice(ki, ki + stride * out[0], stride)
            for kj in range(kernel):
                acc[:, rows, kj : kj + stride * out[1] : stride, :] += view[:, ki, kj]
        core = acc[:, spatial_core[0], spatial_core[1], :]
        return np.ascontiguousarray(core.transpose(3, 0, 1, 2))
    view = cols.reshape(plan.channels, kernel, out[0], plan.batch)
    for ki in range(kernel):
        acc[:, ki : ki + stride * out[0] : stride, :] += view[:, ki]
    core = acc[:, spatial_core[0], :]
    return np.ascontiguousarray(core.transpose(2, 0, 1))


# ----------------------------------------------------------------------
# Reference oracle: the original implementations, kept verbatim.  They are
# the ground truth the fast engine is property-tested against and the
# baseline the engine benchmark measures speedups from.
# ----------------------------------------------------------------------

def im2col_indices(
    x_shape: tuple[int, int, int, int],
    kernel: int,
    padding: int,
    stride: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the (channel, row, col) gather indices for ``im2col``.

    Returns index arrays ``(k, i, j)`` such that
    ``padded_x[:, k, i, j]`` has shape ``(N, C*kernel*kernel, H_out*W_out)``.
    """
    _, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel, padding, stride)
    out_w = conv_output_size(width, kernel, padding, stride)

    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    return k, i, j


def _reference_im2col(x: np.ndarray, kernel: int, padding: int,
                      stride: int) -> np.ndarray:
    """Fancy-index gather (the seed implementation of :func:`im2col`)."""
    k, i, j = im2col_indices(x.shape, kernel, padding, stride)
    x = _pad_spatial(x, padding)
    cols = x[:, k, i, j]
    channels_kk = cols.shape[1]
    return cols.transpose(1, 2, 0).reshape(channels_kk, -1)


def _reference_col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    padding: int,
    stride: int,
) -> np.ndarray:
    """Buffered ``np.add.at`` scatter (the seed implementation of :func:`col2im`)."""
    batch, channels, height, width = x_shape
    padded_h, padded_w = height + 2 * padding, width + 2 * padding
    x_padded = np.zeros((batch, channels, padded_h, padded_w), dtype=cols.dtype)

    k, i, j = im2col_indices(x_shape, kernel, padding, stride)
    cols_reshaped = cols.reshape(channels * kernel * kernel, -1, batch)
    cols_reshaped = cols_reshaped.transpose(2, 0, 1)
    np.add.at(x_padded, (slice(None), k, i, j), cols_reshaped)

    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


def _reference_im2col_1d(x: np.ndarray, kernel: int, padding: int,
                         stride: int) -> np.ndarray:
    """Fancy-index gather over (N, C, L) (the seed ``_im2col_1d``)."""
    batch, channels, length = x.shape
    out_len = conv_output_size(length, kernel, padding, stride)
    x = _pad_spatial(x, padding)
    k = np.repeat(np.arange(channels), kernel).reshape(-1, 1)
    offsets = np.tile(np.arange(kernel), channels).reshape(-1, 1)
    starts = stride * np.arange(out_len).reshape(1, -1)
    cols = x[:, k, offsets + starts]  # (N, C*kernel, L_out)
    return cols.transpose(1, 2, 0).reshape(channels * kernel, -1)


def _reference_col2im_1d(cols: np.ndarray, x_shape: tuple[int, int, int],
                         kernel: int, padding: int, stride: int) -> np.ndarray:
    """``np.add.at`` scatter over (N, C, L) (the seed ``_col2im_1d``)."""
    batch, channels, length = x_shape
    out_len = conv_output_size(length, kernel, padding, stride)
    x_padded = np.zeros((batch, channels, length + 2 * padding), dtype=cols.dtype)
    k = np.repeat(np.arange(channels), kernel).reshape(-1, 1)
    offsets = np.tile(np.arange(kernel), channels).reshape(-1, 1)
    starts = stride * np.arange(out_len).reshape(1, -1)
    cols_reshaped = cols.reshape(channels * kernel, out_len, batch).transpose(2, 0, 1)
    np.add.at(x_padded, (slice(None), k, offsets + starts), cols_reshaped)
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding]
