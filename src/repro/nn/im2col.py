"""im2col / col2im patch machinery for convolution layers.

Convolutions are implemented as matrix multiplications over patch
matrices.  ``im2col`` unfolds sliding windows of the input into a 2-D
matrix; ``col2im`` folds a patch matrix back into an image, accumulating
overlapping contributions — exactly the adjoint of ``im2col``, which is
what back-propagation (and transposed convolution) needs.

**Column-layout contract (batch-major, ISSUE 4).**  The fast engine's
patch matrix for a batch of ``N`` records is ``(N * P, rows)`` where
``P = prod(out_spatial)`` and ``rows = C * kernel**S``: patch ``(n, p)``
is row ``n * P + p`` and its elements are ordered channel-major
``(c, *k_off)``.  Because the batch axis is outermost, the batch-major
matricization of any NCHW activation or gradient tensor —
``t.reshape(N, C, P)`` — is a *view*, so the weight-gradient GEMM in
``Conv2D.backward`` and the input projection in
``ConvTranspose2D.forward`` never copy a full batch (the seed layout,
position-major-then-batch, forced a whole-gradient ``transpose(...)
.reshape`` copy before every weight GEMM).  The retained reference
oracles still speak the seed layout ``(rows, P * N)``; the explicit
adapters :func:`cols_to_reference` / :func:`cols_from_reference` convert
between the two by pure relabeling (bit-exact), and are what the
equivalence tests and the dispatch wrapper use.

**Blocked/streamed execution.**  All engine entry points loop over batch
blocks of :meth:`ConvPlan.batch_block` records — sized so one block's
patch matrix fits the workspace budget
(:func:`repro.nn.plan.workspace_budget`) — through one shared, persistent
scratch pool (gather/pack/GEMM/scatter buffers, reused across blocks,
calls, and layers).  Large-batch generator forwards therefore no longer
fall out of cache: throughput at 4096-row batches matches the few-hundred
row sweet spot of the monolithic engine.  Inside a block the engine
stores the patch matrix *transposed*, ``(rows, P*b)`` with
position-major-within-block columns — the orientation whose gather copy,
GEMM operands, and scatter slices all vectorize best (chosen by
measurement in ISSUE 4 against batch-major-within-block and stacked
alternatives); the GEMM *pack* buffers are block-sized, cache-resident
transposes of the batch-major views (the only data movement between them
and BLAS), so no full-batch repack ever happens.

Two implementations live here:

* the **fast engine** — gather through
  ``np.lib.stride_tricks.sliding_window_view`` (one strided copy per
  block, no index arrays) and a two-way scatter over the memoized
  :class:`~repro.nn.plan.ConvPlan`: a single fancy-index assignment per
  block when ``stride >= kernel`` makes the windows non-overlapping, and
  a per-kernel-offset strided accumulation for overlapping windows whose
  reads are fully contiguous in the transposed block.  The plan's
  **parity groups** (offsets ``m*stride + rho``, grouped by ``m``, have
  pairwise disjoint targets within a group) let group 0 *assign* the
  leading ``stride*out`` subgrid instead of read-modify-writing it, so
  only a trailing border of the padded buffer is ever zeroed.  Offsets
  are visited in ascending order, so every output cell accumulates its
  overlapping contributions in ascending kernel-offset order — the same
  per-cell order as the reference ``np.add.at`` — making results
  bit-identical to the oracle in every dtype;
* the **reference oracle** — the original fancy-index gather and
  ``np.add.at`` scatter, retained verbatim as ``_reference_*`` functions
  in the seed's position-major column order, used by the equivalence
  tests and the engine benchmark.

``im2col``/``col2im`` accept both 4-D ``(N, C, H, W)`` and 3-D
``(N, C, L)`` inputs, so the 1-D layers in :mod:`repro.nn.conv1d` share
the same engine.  All index arithmetic is memoized per record geometry in
:mod:`repro.nn.plan` (:func:`~repro.nn.plan.conv_plan`), so the hot loop
never recomputes gather/scatter indices.  The :func:`reference_ops`
context manager flips the public functions (and the conv layers) onto the
oracle — the engine benchmark (``python -m repro bench``, see
``docs/benchmarks.md``) uses it to time both paths on identical
workloads.
"""

from __future__ import annotations

from contextlib import contextmanager
from math import prod

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.plan import ConvPlan, conv_output_size, conv_plan

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "im2col_indices",
    "cols_to_reference",
    "cols_from_reference",
    "reference_ops",
    "is_reference",
]

#: When True, the public im2col/col2im (and the conv layers) dispatch to
#: the reference oracle.
_USE_REFERENCE = False


@contextmanager
def reference_ops():
    """Context manager forcing the reference im2col/col2im implementations.

    Used by the engine benchmark to time the seed idioms against the fast
    engine on identical workloads, and by tests exercising the dispatch.
    """
    global _USE_REFERENCE
    previous = _USE_REFERENCE
    _USE_REFERENCE = True
    try:
        yield
    finally:
        _USE_REFERENCE = previous


def is_reference() -> bool:
    """Whether the reference oracle is currently forced (see above)."""
    return _USE_REFERENCE


# ----------------------------------------------------------------------
# Layout adapters: batch-major engine layout <-> seed reference layout.
# ----------------------------------------------------------------------

def cols_to_reference(cols: np.ndarray, batch: int) -> np.ndarray:
    """Batch-major ``(N*P, rows)`` -> reference ``(rows, P*N)`` patch matrix.

    A pure relabeling (one permutation copy, bit-exact): patch ``(n, p)``
    moves from row ``n*P + p`` to column ``p*N + n``.  Used by the
    equivalence tests and by the dispatch wrapper under
    :func:`reference_ops`.
    """
    n_p, rows = cols.shape
    if batch <= 0 or n_p % batch:
        raise ValueError(f"cols of shape {cols.shape} cannot hold batch {batch}")
    positions = n_p // batch
    return np.ascontiguousarray(
        cols.reshape(batch, positions, rows).transpose(2, 1, 0)
    ).reshape(rows, n_p)


def cols_from_reference(ref_cols: np.ndarray, batch: int) -> np.ndarray:
    """Reference ``(rows, P*N)`` -> batch-major ``(N*P, rows)`` patch matrix."""
    rows, p_n = ref_cols.shape
    if batch <= 0 or p_n % batch:
        raise ValueError(
            f"reference cols of shape {ref_cols.shape} cannot hold batch {batch}"
        )
    positions = p_n // batch
    return np.ascontiguousarray(
        ref_cols.reshape(rows, positions, batch).transpose(2, 1, 0)
    ).reshape(p_n, rows)


# ----------------------------------------------------------------------
# Workspaces and padding.
# ----------------------------------------------------------------------

#: Shared scratch pool for the blocked engine.  One set of block-sized
#: buffers serves every conv layer (they run one at a time), so the hot
#: working set stays a few cache-resident arrays instead of one persistent
#: workspace per layer.  Single-threaded by design, like the layers' own
#: forward caches.
_WORKSPACES: dict = {}


def clear_workspaces() -> None:
    """Drop the engine's shared scratch buffers (benchmark cold starts)."""
    _WORKSPACES.clear()


def _ws(ws: dict | None, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    """A reusable named scratch array of ``shape``/``dtype``.

    Buffers are kept flat and sliced, so one buffer serves both full and
    partial (tail) blocks; they persist across blocks, calls, and layers
    (``ws=None`` selects the shared module pool).
    """
    if ws is None:
        ws = _WORKSPACES
    size = prod(shape)
    buf = ws.get(name)
    if buf is None or buf.dtype != dtype or buf.size < size:
        buf = np.empty(max(size, 1), dtype)
        ws[name] = buf
    return buf[:size].reshape(shape)


def _pad_spatial(x: np.ndarray, padding: int) -> np.ndarray:
    if padding <= 0:
        return x
    width = ((0, 0), (0, 0)) + ((padding, padding),) * (x.ndim - 2)
    return np.pad(x, width, mode="constant")


def _pad_spatial_fast(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial axes of ``x`` via one allocation and one copy.

    Bit-identical to :func:`_pad_spatial` (``np.pad`` with constant zeros)
    but without np.pad's per-axis python machinery — the padded buffer is
    on the hottest path of every convolution forward.
    """
    if padding <= 0:
        return x
    out = np.zeros(
        x.shape[:2] + tuple(s + 2 * padding for s in x.shape[2:]), dtype=x.dtype
    )
    core = (slice(None), slice(None)) + tuple(
        slice(padding, padding + s) for s in x.shape[2:]
    )
    out[core] = x
    return out


# ----------------------------------------------------------------------
# Blocked gather / scatter primitives (rank-generic).
# ----------------------------------------------------------------------

def _gather_block(x: np.ndarray, plan: ConvPlan, start: int, stop: int,
                  out2: np.ndarray, ws: dict) -> None:
    """Unfold items ``[start, stop)`` of ``x`` into ``out2`` ((b*P, rows)).

    The single data copy per block is the strided write of the
    window view into ``out2``; padding goes through a reused workspace
    buffer so no full-batch padded copy is ever materialized.
    """
    windows = _windows_block(x, plan, start, stop, ws)
    b = stop - start
    kernel = plan.kernel
    if x.ndim == 4:
        view = out2.reshape(b, *plan.out, plan.channels, kernel, kernel)
        np.copyto(view, windows.transpose(0, 2, 3, 1, 4, 5))
    else:
        view = out2.reshape(b, plan.out[0], plan.channels, kernel)
        np.copyto(view, windows.transpose(0, 2, 1, 3))


def _windows_block(x: np.ndarray, plan: ConvPlan, start: int, stop: int,
                   ws: dict):
    """Strided window view over items ``[start, stop)`` of ``x``.

    Returns ``(b, C, *out, k[, k])``.  Padding goes through a reused
    workspace buffer, so no full-batch padded copy is ever materialized.
    """
    xb = x[start:stop]
    if plan.padding:
        pad = _ws(ws, "pad",
                  (stop - start, plan.channels, *plan.padded_spatial), x.dtype)
        # Zero only the padding ring; the core is overwritten right after.
        p = plan.padding
        if len(plan.spatial) == 2:
            pad[:, :, :p, :] = 0
            pad[:, :, p + plan.spatial[0]:, :] = 0
            pad[:, :, p: p + plan.spatial[0], :p] = 0
            pad[:, :, p: p + plan.spatial[0], p + plan.spatial[1]:] = 0
        else:
            pad[:, :, :p] = 0
            pad[:, :, p + plan.spatial[0]:] = 0
        core = (slice(None), slice(None)) + tuple(
            slice(p, p + s) for s in plan.spatial
        )
        pad[core] = xb
        xb = pad
    kernel, stride = plan.kernel, plan.stride
    if x.ndim == 4:
        return sliding_window_view(
            xb, (kernel, kernel), axis=(2, 3)
        )[:, :, ::stride, ::stride]  # (b, C, out_h, out_w, k, k)
    return sliding_window_view(xb, kernel, axis=2)[:, :, ::stride]


def _gather_block_t(x: np.ndarray, plan: ConvPlan, start: int, stop: int,
                    cols_t: np.ndarray, ws: dict) -> None:
    """Unfold items ``[start, stop)`` of ``x`` into ``cols_t`` ((rows, P*b)).

    The engine-internal transposed block layout: column index ``(p, n)``,
    position-major within the block — the orientation whose gather copy
    and scatter slices vectorize best (long batch-contiguous runs), and
    the one the blocked GEMMs consume/produce without reordering.
    """
    windows = _windows_block(x, plan, start, stop, ws)
    b = stop - start
    kernel = plan.kernel
    if x.ndim == 4:
        view = cols_t.reshape(plan.channels, kernel, kernel, *plan.out, b)
        np.copyto(view, windows.transpose(1, 4, 5, 2, 3, 0))
    else:
        view = cols_t.reshape(plan.channels, kernel, plan.out[0], b)
        np.copyto(view, windows.transpose(1, 3, 2, 0))


def _scatter_overlapping(cols_t: np.ndarray, plan: ConvPlan,
                         acc: np.ndarray) -> None:
    """Per-offset strided accumulation of a block's transposed patch matrix.

    ``cols_t`` is ``(rows, P*b)`` — column index ``(p, n)``,
    position-major *within the block* — and ``acc`` the batch-innermost
    accumulator ``(C, *padded, b)``: slicing one kernel offset out of
    ``cols_t`` is then a fully contiguous read, and each ``+=`` writes
    stride-``s`` slabs whose innermost axis is the contiguous batch run
    (the layout both sides vectorize on — measured against batch-major
    column orders, channel-major accumulators, fused parity-group passes,
    and residue-subgrid accumulators in ISSUE 4).  The kernel offsets of
    each parity group (``plan.offset_groups``) write to pairwise disjoint
    cells; group 0 (offsets below ``stride``) jointly tiles the leading
    ``stride*out`` subgrid, so its passes *assign* instead of
    read-modify-write — the caller only zeroes the trailing border no
    group-0 offset reaches.  Offsets are visited in ascending order,
    which accumulates every cell's overlapping contributions in ascending
    kernel-offset order: the per-cell order of the reference
    ``np.add.at``, keeping float sums bit-identical to the oracle in
    every dtype.
    """
    kernel, stride = plan.kernel, plan.stride
    b = acc.shape[-1]
    out = plan.out
    view = cols_t.reshape(plan.channels,
                          *((kernel,) * len(plan.spatial)), *out, b)
    if len(plan.spatial) == 2:
        oh, ow = out
        for ki in range(kernel):
            rows = slice(ki, ki + stride * oh, stride)
            for kj in range(kernel):
                if ki < stride and kj < stride:
                    # Parity group 0 (offsets < stride) has pairwise
                    # disjoint targets that jointly tile the leading
                    # [0, stride*out) subgrid: plain assignment, no
                    # read-modify-write, no prior zeroing needed there.
                    acc[:, rows, kj: kj + stride * ow: stride, :] = view[:, ki, kj]
                else:
                    acc[:, rows, kj: kj + stride * ow: stride, :] += view[:, ki, kj]
    else:
        (ol,) = out
        for ki in range(kernel):
            if ki < stride:
                acc[:, ki: ki + stride * ol: stride, :] = view[:, ki]
            else:
                acc[:, ki: ki + stride * ol: stride, :] += view[:, ki]


def _scatter_block(cols_t: np.ndarray, plan: ConvPlan, out: np.ndarray,
                   start: int, stop: int, ws: dict) -> None:
    """Fold a block's transposed patch matrix into ``out[start:stop]``.

    ``cols_t`` is ``(rows, P*b)`` with position-major-within-block
    columns — the layout the blocked GEMMs produce directly, and the one
    whose per-offset slices are contiguous reads.  Writes every cell of
    the target slice, so ``out`` may be uninitialized.
    """
    b = stop - start
    positions = plan.n_positions
    if not plan.overlapping:
        # stride >= kernel: scatter targets are disjoint, no accumulation
        # needed — one fancy-index assignment per block, staying in dtype.
        if plan.padding:
            buf = _ws(ws, "scatter", (b, plan.channels, *plan.padded_spatial),
                      cols_t.dtype)
        else:
            buf = out[start:stop]
        buf[...] = 0
        flat = buf.reshape(b, plan.padded_item_size)
        flat[:, plan.scatter_index] = cols_t.reshape(
            plan.rows, positions, b
        ).transpose(2, 1, 0)
        if plan.padding:
            out[start:stop] = buf[plan.unpad_slices]
        return
    acc = _ws(ws, "scatter", (plan.channels, *plan.padded_spatial, b),
              cols_t.dtype)
    # Parity group 0 assigns the leading [0, stride*out) subgrid, so only
    # the trailing border (cells no group-0 offset reaches) needs zeroing.
    stride = plan.stride
    if len(plan.spatial) == 2:
        acc[:, stride * plan.out[0]:, :, :] = 0
        acc[:, : stride * plan.out[0], stride * plan.out[1]:, :] = 0
    else:
        acc[:, stride * plan.out[0]:, :] = 0
    _scatter_overlapping(cols_t, plan, acc)
    core = acc[(slice(None),) + plan.unpad_slices[2:] + (slice(None),)]
    out[start:stop] = np.moveaxis(core, -1, 0)


# ----------------------------------------------------------------------
# Public im2col / col2im (batch-major layout; oracle dispatch adapts).
# ----------------------------------------------------------------------

def im2col(x: np.ndarray, kernel: int, padding: int, stride: int) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) or (N, C, L) into a batch-major patch matrix.

    Returns ``(N*H_out*W_out, C*kernel*kernel)`` for 4-D input and
    ``(N*L_out, C*kernel)`` for 3-D input; rows are flattened receptive
    fields ordered batch-major (patch ``(n, p)`` is row ``n*P + p``).  The
    input dtype is preserved.  Under :func:`reference_ops` the oracle
    computes in the seed layout and the result is adapted back, so the
    public layout is mode-independent.
    """
    if x.ndim not in (3, 4):
        raise ValueError(f"expected (N, C, L) or (N, C, H, W) input, got {x.shape}")
    if _USE_REFERENCE:
        if x.ndim == 4:
            ref = _reference_im2col(x, kernel, padding, stride)
        else:
            ref = _reference_im2col_1d(x, kernel, padding, stride)
        return cols_from_reference(ref, x.shape[0])
    plan = conv_plan(x.shape, kernel, padding, stride)
    batch = x.shape[0]
    cols = np.empty(plan.cols_shape(batch), dtype=x.dtype)
    block = plan.batch_block(x.dtype.itemsize)
    ws = None
    positions = plan.n_positions
    for start in range(0, batch, block):
        stop = min(start + block, batch)
        _gather_block(x, plan, start, stop,
                      cols[start * positions: stop * positions], ws)
    return cols


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    kernel: int,
    padding: int,
    stride: int,
) -> np.ndarray:
    """Fold a batch-major patch matrix back into an image, accumulating overlaps.

    ``cols`` has the shape produced by :func:`im2col` for ``x_shape`` and
    the result has shape ``x_shape``.  This is the exact adjoint of
    :func:`im2col` and therefore also the forward pass of a transposed
    convolution.  The dtype of ``cols`` is preserved.
    """
    if len(x_shape) not in (3, 4):
        raise ValueError(f"expected (N, C, L) or (N, C, H, W) shape, got {x_shape}")
    batch = int(x_shape[0])
    if _USE_REFERENCE:
        ref_cols = cols_to_reference(cols, batch)
        if len(x_shape) == 4:
            return _reference_col2im(ref_cols, x_shape, kernel, padding, stride)
        return _reference_col2im_1d(ref_cols, x_shape, kernel, padding, stride)
    plan = conv_plan(x_shape, kernel, padding, stride)
    if cols.shape != plan.cols_shape(batch):
        raise ValueError(
            f"cols shape {cols.shape} does not match plan "
            f"{plan.cols_shape(batch)} for x_shape={tuple(x_shape)}"
        )
    out = np.empty(x_shape, dtype=cols.dtype)
    block = plan.batch_block(cols.dtype.itemsize)
    ws = None
    positions = plan.n_positions
    for start in range(0, batch, block):
        stop = min(start + block, batch)
        b = stop - start
        # The scatter consumes the transposed block (rows, P*b); the
        # blocked GEMM callers produce that layout directly, the public
        # API pays one block-local (cache-resident) transpose.
        cols_t = _ws(ws, "cols_t", (plan.rows, positions * b), cols.dtype)
        cols_t.reshape(plan.rows, positions, b)[...] = (
            cols[start * positions: stop * positions]
            .reshape(b, positions, plan.rows).transpose(2, 1, 0)
        )
        _scatter_block(cols_t, plan, out, start, stop, ws)
    return out


# ----------------------------------------------------------------------
# Blocked GEMM entry points for the conv layers.  Each loops over batch
# blocks, reusing the caller-owned workspace dict across blocks and calls.
# ----------------------------------------------------------------------

def conv_gemm_forward(x: np.ndarray, w_mat: np.ndarray, plan: ConvPlan,
                      ws: dict, cache_cols: bool, bias: np.ndarray | None = None,
                      cache_ws: dict | None = None):
    """Blocked convolution forward: gather + GEMM per batch block.

    ``w_mat`` is ``(C_out, rows)``; ``bias`` (per output channel) is added
    to each cache-hot GEMM block instead of in a full-tensor pass.
    Returns ``(out, blocks)`` where
    ``out`` is the **contiguous** ``(N, C_out, *out_spatial)`` activation
    (written block-wise through a cache-resident unpack, so ``Flatten``
    downstream is a view) and ``blocks`` is the list of gathered
    ``(start, stop, cols_t)`` patch-matrix blocks when ``cache_cols``
    (training replays exactly these blocks in the weight-gradient GEMM),
    else ``None`` — inference streams blocks through one reused workspace
    and never materializes the full patch matrix.  The cached blocks are
    carved out of one persistent buffer in ``cache_ws`` (the layer owns
    it), so steady-state training epochs stop paying a multi-megabyte
    allocate/page-zero cycle per forward.
    """
    batch = x.shape[0]
    c_out = w_mat.shape[0]
    positions = plan.n_positions
    blocks: list | None = None
    if cache_cols:
        blocks = []
        cache_flat = _ws(cache_ws if cache_ws is not None else ws,
                         "cols_cache", (plan.rows * positions * batch,),
                         x.dtype)
    block = min(plan.batch_block(x.dtype.itemsize), max(batch, 1))
    out = np.empty((batch, c_out, *plan.out), dtype=x.dtype)
    out3 = out.reshape(batch, c_out, positions)
    for start in range(0, batch, block):
        stop = min(start + block, batch)
        b = stop - start
        if cache_cols:
            cols_t = cache_flat[
                plan.rows * positions * start: plan.rows * positions * stop
            ].reshape(plan.rows, positions * b)
            blocks.append((start, stop, cols_t))
        else:
            cols_t = _ws(ws, "cols_t", (plan.rows, positions * b), x.dtype)
        _gather_block_t(x, plan, start, stop, cols_t, ws)
        t = _ws(ws, "gemm_out", (c_out, positions * b), x.dtype)
        np.matmul(w_mat, cols_t, out=t)
        if bias is not None:
            t += bias[:, None]
        # Unpack (C_out, (p, n)) -> (n, C_out, p): block-local, cache-hot.
        out3[start:stop] = t.reshape(c_out, positions, b).transpose(2, 0, 1)
    return out, blocks


def conv_gemm_backward(grad_mat: np.ndarray, blocks: list,
                       w_mat: np.ndarray, x_shape: tuple[int, ...],
                       plan: ConvPlan, ws: dict):
    """Blocked convolution backward: weight-gradient and input-gradient.

    ``grad_mat`` is the batch-major matricization ``(N, C_out, P)`` of the
    output gradient — a *view* of the NCHW gradient, never a copy; the
    only reordering is one block-sized, cache-resident pack per block
    (the seed layout transposed the *whole* gradient batch-last here).
    ``blocks`` is the ``(start, stop, cols_t)`` list the forward cached.
    Returns ``(wgrad, dx)`` with ``wgrad`` of shape ``(C_out, rows)`` and
    ``dx`` of shape ``x_shape``.
    """
    batch, c_out, positions = grad_mat.shape
    dtype = grad_mat.dtype
    wgrad = np.zeros((c_out, plan.rows), dtype=dtype)
    dx = np.empty(x_shape, dtype=dtype)
    for start, stop, cols_t in blocks:
        b = stop - start
        # One scatter-ordered pack of the gradient block, (C_out, (p, n)),
        # shared by the weight GEMM (against the cached block, whose
        # columns are in the same order) and the input-gradient GEMM
        # (whose output feeds the scatter with no further reordering).
        pk = _ws(ws, "pack", (c_out, positions * b), dtype)
        pk.reshape(c_out, positions, b)[...] = (
            grad_mat[start:stop].transpose(1, 2, 0)
        )
        wgrad += pk @ cols_t.T
        dcols_t = _ws(ws, "dcols_t", (plan.rows, positions * b), dtype)
        np.matmul(w_mat.T, pk, out=dcols_t)
        _scatter_block(dcols_t, plan, dx, start, stop, ws)
    return wgrad, dx


def fold_gemm_forward(x_mat: np.ndarray, w_mat: np.ndarray,
                      out_shape: tuple[int, ...], plan: ConvPlan,
                      ws: dict, bias: np.ndarray | None = None) -> np.ndarray:
    """Blocked transposed-convolution forward: GEMM + scatter per block.

    ``x_mat`` is the batch-major matricization ``(N, C_in, P)`` of the
    layer input — a *view* (the generator-input matricization of ISSUE 4);
    ``w_mat`` is ``(C_in, rows)``; ``plan`` describes ``out_shape`` (whose
    conv output positions are exactly the input's spatial grid).  Streams
    blocks through one reused workspace — the full patch matrix is never
    materialized, which is what keeps large-batch generator forwards in
    cache.
    """
    batch, c_in, positions = x_mat.shape
    dtype = x_mat.dtype
    out = np.empty(out_shape, dtype=dtype)
    block = min(plan.batch_block(dtype.itemsize), max(batch, 1))
    for start in range(0, batch, block):
        stop = min(start + block, batch)
        b = stop - start
        # Pack the input block scatter-ordered, (C_in, (p, n)), so the
        # GEMM output feeds the scatter with no further reordering.
        pk = _ws(ws, "pack", (c_in, positions * b), dtype)
        pk.reshape(c_in, positions, b)[...] = x_mat[start:stop].transpose(1, 2, 0)
        cols_t = _ws(ws, "cols_t", (plan.rows, positions * b), dtype)
        np.matmul(w_mat.T, pk, out=cols_t)
        _scatter_block(cols_t, plan, out, start, stop, ws)
        if bias is not None:
            # Per-block add while the freshly scattered slice is cache-hot.
            out[start:stop] += bias.reshape(
                (1, -1) + (1,) * (len(out_shape) - 2)
            )
    return out


def unfold_gemm_backward(grad: np.ndarray, x_mat: np.ndarray,
                         w_mat: np.ndarray, plan: ConvPlan, ws: dict):
    """Blocked transposed-convolution backward.

    ``grad`` is the NCHW output gradient (the image side of the plan),
    ``x_mat`` the cached batch-major input matricization ``(N, C_in, P)``.
    Gathers ``grad`` patches block-wise (streamed), computes the input
    gradient ``dx = (N, C_in, *in_spatial)`` and the weight gradient
    ``(C_in, rows)``, reusing one gather per block for both GEMMs.
    """
    batch, c_in, positions = x_mat.shape
    dtype = x_mat.dtype
    wgrad = np.zeros((c_in, plan.rows), dtype=dtype)
    block = min(plan.batch_block(dtype.itemsize), max(batch, 1))
    dx = np.empty((batch, c_in, *plan.out), dtype=dtype)
    dx3 = dx.reshape(batch, c_in, positions)
    for start in range(0, batch, block):
        stop = min(start + block, batch)
        b = stop - start
        cols_t = _ws(ws, "cols_t", (plan.rows, positions * b), dtype)
        _gather_block_t(grad, plan, start, stop, cols_t, ws)
        t = _ws(ws, "gemm_out", (c_in, positions * b), dtype)
        np.matmul(w_mat, cols_t, out=t)
        dx3[start:stop] = t.reshape(c_in, positions, b).transpose(2, 0, 1)
        pk = _ws(ws, "pack", (c_in, positions * b), dtype)
        pk.reshape(c_in, positions, b)[...] = x_mat[start:stop].transpose(1, 2, 0)
        wgrad += pk @ cols_t.T
    return wgrad, dx


# ----------------------------------------------------------------------
# Reference oracle: the original implementations, kept verbatim (seed
# column layout: position-major, then batch).  They are the ground truth
# the fast engine is property-tested against — through the layout
# adapters above — and the baseline the engine benchmark measures
# speedups from.
# ----------------------------------------------------------------------

def im2col_indices(
    x_shape: tuple[int, int, int, int],
    kernel: int,
    padding: int,
    stride: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the (channel, row, col) gather indices for ``im2col``.

    Returns index arrays ``(k, i, j)`` such that
    ``padded_x[:, k, i, j]`` has shape ``(N, C*kernel*kernel, H_out*W_out)``.
    """
    _, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel, padding, stride)
    out_w = conv_output_size(width, kernel, padding, stride)

    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    return k, i, j


def _reference_im2col(x: np.ndarray, kernel: int, padding: int,
                      stride: int) -> np.ndarray:
    """Fancy-index gather (the seed implementation of :func:`im2col`)."""
    k, i, j = im2col_indices(x.shape, kernel, padding, stride)
    x = _pad_spatial(x, padding)
    cols = x[:, k, i, j]
    channels_kk = cols.shape[1]
    return cols.transpose(1, 2, 0).reshape(channels_kk, -1)


def _reference_col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    padding: int,
    stride: int,
) -> np.ndarray:
    """Buffered ``np.add.at`` scatter (the seed implementation of :func:`col2im`)."""
    batch, channels, height, width = x_shape
    padded_h, padded_w = height + 2 * padding, width + 2 * padding
    x_padded = np.zeros((batch, channels, padded_h, padded_w), dtype=cols.dtype)

    k, i, j = im2col_indices(x_shape, kernel, padding, stride)
    cols_reshaped = cols.reshape(channels * kernel * kernel, -1, batch)
    cols_reshaped = cols_reshaped.transpose(2, 0, 1)
    np.add.at(x_padded, (slice(None), k, i, j), cols_reshaped)

    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


def _reference_im2col_1d(x: np.ndarray, kernel: int, padding: int,
                         stride: int) -> np.ndarray:
    """Fancy-index gather over (N, C, L) (the seed ``_im2col_1d``)."""
    batch, channels, length = x.shape
    out_len = conv_output_size(length, kernel, padding, stride)
    x = _pad_spatial(x, padding)
    k = np.repeat(np.arange(channels), kernel).reshape(-1, 1)
    offsets = np.tile(np.arange(kernel), channels).reshape(-1, 1)
    starts = stride * np.arange(out_len).reshape(1, -1)
    cols = x[:, k, offsets + starts]  # (N, C*kernel, L_out)
    return cols.transpose(1, 2, 0).reshape(channels * kernel, -1)


def _reference_col2im_1d(cols: np.ndarray, x_shape: tuple[int, int, int],
                         kernel: int, padding: int, stride: int) -> np.ndarray:
    """``np.add.at`` scatter over (N, C, L) (the seed ``_col2im_1d``)."""
    batch, channels, length = x_shape
    out_len = conv_output_size(length, kernel, padding, stride)
    x_padded = np.zeros((batch, channels, length + 2 * padding), dtype=cols.dtype)
    k = np.repeat(np.arange(channels), kernel).reshape(-1, 1)
    offsets = np.tile(np.arange(kernel), channels).reshape(-1, 1)
    starts = stride * np.arange(out_len).reshape(1, -1)
    cols_reshaped = cols.reshape(channels * kernel, out_len, batch).transpose(2, 0, 1)
    np.add.at(x_padded, (slice(None), k, offsets + starts), cols_reshaped)
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding]
