"""Parameter persistence for :mod:`repro.nn` networks.

Weights are stored as flat ``.npz`` archives keyed by position so a trained
table-GAN can be saved and reloaded without retraining.  Loading validates
shapes so mismatched architectures fail loudly instead of silently
corrupting a model.

Saves are **atomic**: :func:`atomic_savez` writes the archive to a
temporary file in the destination directory and commits it with a single
``os.replace``, so an interrupted save (crash, SIGKILL, full disk) can
never leave a truncated archive at the final path for the model registry
to load.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.nn.layers import Layer


def _npz_path(path) -> str:
    """The final archive path, mirroring numpy's ``.npz`` suffix behaviour."""
    path = os.fspath(path)
    return path if path.endswith(".npz") else path + ".npz"


def atomic_savez(path, **arrays) -> str:
    """``np.savez_compressed`` with write-temp-then-``os.replace`` semantics.

    Returns the final path written (with the ``.npz`` suffix numpy would
    have appended).  On any failure the temporary file is removed and the
    destination is left untouched.
    """
    final = _npz_path(path)
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-",
                               suffix=os.path.basename(final))
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return final


def state_dict(network: Layer) -> dict[str, np.ndarray]:
    """Snapshot parameters and extra state (e.g. batch-norm running stats)."""
    state = {
        f"p{idx:04d}.{param.name}": param.data.copy()
        for idx, param in enumerate(network.parameters())
    }
    for key, value in network.extra_state().items():
        state[f"x.{key}"] = value.copy()
    return state


def load_state_dict(network: Layer, state: dict[str, np.ndarray]) -> None:
    """Restore state captured by :func:`state_dict` into ``network``.

    Raises ``ValueError`` on any count or shape mismatch.
    """
    param_state = {k: v for k, v in state.items() if k.startswith("p")}
    extra_state = {k[2:]: v for k, v in state.items() if k.startswith("x.")}
    params = network.parameters()
    if len(param_state) != len(params):
        raise ValueError(
            f"state has {len(param_state)} parameter entries but network has "
            f"{len(params)} parameters"
        )
    for (key, value), param in zip(sorted(param_state.items()), params):
        if value.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {key}: saved {value.shape}, network {param.data.shape}"
            )
        param.data[...] = value
    network.load_extra_state(extra_state)


def save_npz(path, network: Layer) -> None:
    """Atomically write ``network`` parameters to ``path`` as a .npz archive."""
    atomic_savez(path, **state_dict(network))


def load_npz(path, network: Layer) -> None:
    """Load parameters saved by :func:`save_npz` into ``network`` in place."""
    with np.load(path) as archive:
        load_state_dict(network, dict(archive.items()))
