"""Contiguous flat parameter buffers for fused optimizer updates.

An optimizer that walks a python list of :class:`~repro.nn.layers.Parameter`
objects pays the per-parameter overhead of every numpy call — ufunc
dispatch, temporary allocation, loop setup — dozens of times per step, per
network, per mini-batch.  table-GAN trains three Adam-driven networks, so
that overhead is paid in triplicate.

A :class:`FlatParameterBuffer` removes it structurally: all parameters of a
network are materialized as *views* into one contiguous 1-D buffer per
dtype (one for data, one for gradients).  Layers keep accumulating
gradients through their usual ``param.grad += ...`` in-place ops — those
writes land directly in the flat gradient buffer — and the optimizer
updates every parameter of the network with a handful of whole-buffer
in-place ufuncs instead of a python loop (see :mod:`repro.nn.optim`).

Because a whole-buffer elementwise op performs exactly the same scalar
operations as the per-parameter loop (no reductions are involved), the
fused update is **bit-identical** to the per-parameter reference in every
dtype; the equivalence tests in ``tests/nn/test_flatbuf.py`` and
``tests/nn/test_optim.py`` pin that down.

Networks built by :mod:`repro.core.networks` use a single compute dtype
(``TableGanConfig.dtype``), so in practice one network means one buffer
pair; the per-dtype grouping keeps the container correct for mixed-dtype
parameter lists.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class _DtypeGroup:
    """All parameters of one dtype, viewing one (data, grad) buffer pair."""

    __slots__ = ("dtype", "data", "grad", "params", "slices")

    def __init__(self, dtype: np.dtype, params: list[Parameter]):
        self.dtype = dtype
        self.params = params
        total = sum(p.data.size for p in params)
        self.data = np.empty(total, dtype=dtype)
        self.grad = np.empty(total, dtype=dtype)
        self.slices: list[slice] = []
        offset = 0
        for p in params:
            stop = offset + p.data.size
            view = slice(offset, stop)
            self.slices.append(view)
            p.bind_views(
                self.data[view].reshape(p.data.shape),
                self.grad[view].reshape(p.data.shape),
            )
            offset = stop

    def rebind(self, data: np.ndarray | None = None,
               grad: np.ndarray | None = None) -> None:
        """Move this group's storage onto externally owned 1-D arrays.

        Current values are copied into the new arrays and every
        parameter's views are re-pointed at them, so the move is
        invisible to training code.  Used to back the buffers with
        ``multiprocessing.shared_memory`` (and to move them off it again
        before the segment is closed).
        """
        for label, new in (("data", data), ("grad", grad)):
            if new is None:
                continue
            if new.shape != (self.data.size,) or new.dtype != self.dtype:
                raise ValueError(
                    f"{label} backing {new.shape}/{new.dtype} does not match "
                    f"group buffer ({self.data.size},)/{self.dtype}"
                )
        if data is not None:
            data[...] = self.data
            self.data = data
        if grad is not None:
            grad[...] = self.grad
            self.grad = grad
        for p, view in zip(self.params, self.slices):
            p.data = self.data[view].reshape(p.data.shape)
            p.grad = self.grad[view].reshape(p.data.shape)


class FlatParameterBuffer:
    """Materialize parameters as views into contiguous per-dtype buffers.

    Construction rebinds each parameter's ``data`` and ``grad`` (via
    :meth:`Parameter.bind_views`) to slices of shared 1-D buffers,
    preserving current values.  From then on the parameters and the
    buffers alias the same memory: layer backward passes accumulate into
    the flat gradient buffer, and whole-buffer updates applied to
    ``group.data`` are immediately visible through every ``param.data``.

    Parameters
    ----------
    params:
        The parameters to flatten.  Must be non-empty and free of
        duplicates (flattening the same parameter twice into one buffer
        would double-count its update).
    """

    def __init__(self, params: list[Parameter]):
        params = list(params)
        if not params:
            raise ValueError("cannot flatten an empty parameter list")
        seen: set[int] = set()
        for p in params:
            if not isinstance(p, Parameter):
                raise TypeError(f"expected Parameter, got {type(p).__name__}")
            if id(p) in seen:
                raise ValueError(f"duplicate parameter in flatten list: {p!r}")
            if p.flat_buffer is not None:
                # Rebinding would silently orphan the first buffer: any
                # optimizer holding it would keep updating dead memory.
                raise ValueError(
                    f"parameter {p.name} is already materialized in a "
                    f"FlatParameterBuffer; reuse that buffer (e.g. via "
                    f"Sequential.flatten_parameters, which returns the "
                    f"existing one) instead of flattening again"
                )
            seen.add(id(p))
        self.params = params
        by_dtype: dict[np.dtype, list[Parameter]] = {}
        for p in params:
            by_dtype.setdefault(p.data.dtype, []).append(p)
        self.groups = [_DtypeGroup(dtype, ps) for dtype, ps in by_dtype.items()]
        for p in params:
            p.flat_buffer = self

    @staticmethod
    def owner_of(params: list[Parameter]) -> "FlatParameterBuffer | None":
        """The buffer already holding exactly ``params``, if one exists.

        Returns the shared :class:`FlatParameterBuffer` when every
        parameter is bound to the same buffer and that buffer holds no
        others; ``None`` when the parameters are unbound.  A partial or
        mixed binding raises — those parameters cannot be flattened
        together correctly.
        """
        params = list(params)
        if not params or all(p.flat_buffer is None for p in params):
            return None
        owner = params[0].flat_buffer
        same_owner = all(p.flat_buffer is owner for p in params)
        if owner is None or not same_owner or set(map(id, owner.params)) != set(
            map(id, params)
        ):
            raise ValueError(
                "parameters are bound to different or partially overlapping "
                "FlatParameterBuffers and cannot be flattened together"
            )
        return owner

    @property
    def n_elements(self) -> int:
        """Total number of scalar parameters across all dtype groups."""
        return sum(group.data.size for group in self.groups)

    def zero_grad(self) -> None:
        """Zero every gradient with one memset per dtype buffer."""
        for group in self.groups:
            group.grad[...] = 0.0

    # ------------------------------------------------------------------
    # Shared-memory backing and broadcast/reduce primitives (the
    # data-parallel trainer's all-reduce unit; see repro.core.parallel).
    # ------------------------------------------------------------------
    def group_specs(self) -> list[tuple[np.dtype, int]]:
        """``(dtype, n_elements)`` per group, in group order.

        This is the layout contract for every externally allocated
        backing or exchange buffer: one 1-D array per group, matching
        dtype and length.
        """
        return [(group.dtype, group.data.size) for group in self.groups]

    def _check_buffers(self, buffers, label: str) -> list[np.ndarray]:
        buffers = list(buffers)
        specs = self.group_specs()
        if len(buffers) != len(specs):
            raise ValueError(
                f"expected {len(specs)} {label} buffers (one per dtype "
                f"group), got {len(buffers)}"
            )
        for buf, (dtype, size) in zip(buffers, specs):
            if buf.shape != (size,) or buf.dtype != dtype:
                raise ValueError(
                    f"{label} buffer {buf.shape}/{buf.dtype} does not match "
                    f"group layout ({size},)/{dtype}"
                )
        return buffers

    def rebind_storage(self, data_backing=None, grad_backing=None) -> None:
        """Move the flat buffers onto externally owned arrays, in place.

        ``data_backing`` / ``grad_backing`` are sequences of 1-D arrays
        matching :meth:`group_specs` — typically views into
        ``multiprocessing.shared_memory`` segments.  Values are preserved
        and every parameter keeps aliasing the (new) buffers, so
        optimizers and layers notice nothing.  Rebinding data onto a
        shared segment makes every weight update a zero-copy broadcast to
        all processes mapping the segment; gradients are normally left on
        private memory so concurrent backward passes cannot race.
        """
        data_backing = (None if data_backing is None
                        else self._check_buffers(data_backing, "data"))
        grad_backing = (None if grad_backing is None
                        else self._check_buffers(grad_backing, "grad"))
        for i, group in enumerate(self.groups):
            group.rebind(
                data=None if data_backing is None else data_backing[i],
                grad=None if grad_backing is None else grad_backing[i],
            )

    def export_data(self, buffers) -> None:
        """Copy the parameter values into per-group 1-D ``buffers``."""
        for group, buf in zip(self.groups, self._check_buffers(buffers, "data")):
            buf[...] = group.data

    def import_data(self, buffers) -> None:
        """Overwrite the parameter values from per-group 1-D ``buffers``."""
        for group, buf in zip(self.groups, self._check_buffers(buffers, "data")):
            group.data[...] = buf

    def export_grads(self, buffers, scale: float | None = None) -> None:
        """Copy the gradients into per-group ``buffers``, optionally scaled.

        ``scale`` is applied in the group dtype (a data-parallel worker
        publishes its shard gradient pre-weighted by its share of the
        global batch, so the reduction is a plain ordered sum).
        """
        for group, buf in zip(self.groups, self._check_buffers(buffers, "grad")):
            if scale is None:
                buf[...] = group.grad
            else:
                np.multiply(group.grad, group.dtype.type(scale), out=buf)

    def reduce_grads(self, shard_buffers) -> None:
        """All-reduce: overwrite the gradients with an *ordered* sum.

        ``shard_buffers`` is a sequence of per-shard buffer lists (each a
        :meth:`group_specs`-shaped list).  Accumulation runs strictly in
        shard-index order — floating-point addition is not associative,
        so this fixed order is what makes the data-parallel update a pure
        function of the shard decomposition, never of how many workers
        computed the shards or in which order they arrived.
        """
        shard_buffers = [self._check_buffers(b, "grad") for b in shard_buffers]
        if not shard_buffers:
            raise ValueError("reduce_grads needs at least one shard buffer")
        for i, group in enumerate(self.groups):
            acc = group.grad
            acc[...] = shard_buffers[0][i]
            for contrib in shard_buffers[1:]:
                acc += contrib[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        per_group = ", ".join(
            f"{group.dtype.name}:{group.data.size}" for group in self.groups
        )
        return (
            f"FlatParameterBuffer({len(self.params)} params, "
            f"{self.n_elements} elements, [{per_group}])"
        )
