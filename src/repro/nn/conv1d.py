"""1-D convolution layers for the paper's record-layout ablation.

§3.2 step 1 notes that records could instead be kept "in the original
vector format" and processed with 1-D convolutions, but the authors found
that layout's synthesis performance sub-optimal.  These layers make that
comparison reproducible: :class:`Conv1D` / :class:`ConvTranspose1D` mirror
the 2-D pair over (N, C, L) tensors, and share the blocked batch-major
im2col/col2im engine (and its memoized, batch-free index plans) with the
2-D layers — including the view-not-copy matricizations and the retained
seed ``_reference_*`` paths selected under
:func:`repro.nn.im2col.reference_ops`.
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.im2col import (
    _reference_col2im_1d,
    _reference_im2col_1d,
    conv_gemm_backward,
    conv_gemm_forward,
    conv_output_size,
    fold_gemm_forward,
    is_reference,
    unfold_gemm_backward,
)
from repro.nn.layers import Layer, Parameter, channel_sum
from repro.nn.plan import conv_plan


def conv1d_output_size(size: int, kernel: int, padding: int, stride: int) -> int:
    """Output length of a 1-D convolution; geometry must divide exactly."""
    return conv_output_size(size, kernel, padding, stride)


class Conv1D(Layer):
    """Strided 1-D convolution over (N, C, L) tensors."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, padding: int = 1, bias: bool = True, rng=None,
                 dtype=np.float64):
        super().__init__()
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        weight = initializers.dcgan_normal(
            (out_channels, in_channels, kernel), rng, dtype=dtype
        )
        self.weight = Parameter(weight, "conv1d.weight")
        self.bias = (
            Parameter(initializers.zeros((out_channels,), dtype=dtype), "conv1d.bias")
            if bias else None
        )
        self.params = [self.weight] + ([self.bias] if bias else [])
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int] | None = None
        self._grad_mat: np.ndarray | None = None
        self._ref_mode = False
        #: Persistent backing buffer for the cached patch-matrix blocks.
        self._cache_ws: dict = {}

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(f"expected (N, {self.in_channels}, L) input, got {x.shape}")
        self._ref_mode = is_reference()
        if self._ref_mode:
            return self._reference_forward(x)
        plan = conv_plan(x.shape, self.kernel, self.padding, self.stride)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out, cols = conv_gemm_forward(
            x, w_mat, plan, None, cache_cols=training,
            bias=None if self.bias is None else self.bias.data,
            cache_ws=self._cache_ws,
        )
        self._cols = cols
        self._x_shape = x.shape if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._ref_mode:
            return self._reference_backward(grad)
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training-mode forward")
        if self.bias is not None:
            self.bias.grad += channel_sum(grad)
        plan = conv_plan(self._x_shape, self.kernel, self.padding, self.stride)
        # Batch-major matricization: a view of the (N, C_out, L_out) grad.
        grad_mat = grad.reshape(grad.shape[0], self.out_channels, -1)
        self._grad_mat = grad_mat
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        wgrad, dx = conv_gemm_backward(grad_mat, self._cols, w_mat,
                                       self._x_shape, plan, None)
        self.weight.grad += wgrad.reshape(self.weight.shape)
        return dx

    # -- retained seed path (selected under reference_ops) ---------------
    def _reference_forward(self, x: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        out_len = conv1d_output_size(x.shape[2], self.kernel, self.padding,
                                     self.stride)
        cols = _reference_im2col_1d(x, self.kernel, self.padding, self.stride)
        self._cols = cols
        self._x_shape = x.shape
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = w_mat @ cols  # (C_out, L_out*N) in seed column order
        if self.bias is not None:
            out += self.bias.data[:, None]
        return out.reshape(self.out_channels, out_len, batch).transpose(2, 0, 1)

    def _reference_backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2))
        grad_mat = grad.transpose(1, 2, 0).reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat @ self._cols.T).reshape(self.weight.shape)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        dcols = w_mat.T @ grad_mat
        return _reference_col2im_1d(dcols, self._x_shape, self.kernel,
                                    self.padding, self.stride)


class ConvTranspose1D(Layer):
    """Strided 1-D transposed convolution (adjoint of :class:`Conv1D`)."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, padding: int = 1, bias: bool = True, rng=None,
                 dtype=np.float64):
        super().__init__()
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        weight = initializers.dcgan_normal(
            (in_channels, out_channels, kernel), rng, dtype=dtype
        )
        self.weight = Parameter(weight, "deconv1d.weight")
        self.bias = (
            Parameter(initializers.zeros((out_channels,), dtype=dtype), "deconv1d.bias")
            if bias else None
        )
        self.params = [self.weight] + ([self.bias] if bias else [])
        self._x: np.ndarray | None = None
        self._x_mat: np.ndarray | None = None
        self._out_shape: tuple[int, int, int] | None = None
        self._ref_mode = False

    def output_length(self, length: int) -> int:
        """Output length for an input of ``length``."""
        return (length - 1) * self.stride - 2 * self.padding + self.kernel

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(f"expected (N, {self.in_channels}, L) input, got {x.shape}")
        batch, _, in_len = x.shape
        self._out_shape = (batch, self.out_channels, self.output_length(in_len))
        self._ref_mode = is_reference()
        if self._ref_mode:
            return self._reference_forward(x)
        self._x = x
        # Input matricization: a reshape view, never a copy.
        x_mat = x.reshape(batch, self.in_channels, -1)
        self._x_mat = x_mat
        plan = conv_plan(self._out_shape, self.kernel, self.padding, self.stride)
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        return fold_gemm_forward(
            x_mat, w_mat, self._out_shape, plan, None,
            bias=None if self.bias is None else self.bias.data,
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._ref_mode:
            return self._reference_backward(grad)
        if self._x_mat is None or self._out_shape is None:
            raise RuntimeError("backward called before forward")
        if self.bias is not None:
            self.bias.grad += channel_sum(grad)
        plan = conv_plan(self._out_shape, self.kernel, self.padding, self.stride)
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        wgrad, dx = unfold_gemm_backward(grad, self._x_mat, w_mat, plan, None)
        self.weight.grad += wgrad.reshape(self.weight.shape)
        return dx

    # -- retained seed path (selected under reference_ops) ---------------
    def _reference_forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._x_mat = None
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        x_mat = x.transpose(1, 2, 0).reshape(self.in_channels, -1)
        cols = w_mat.T @ x_mat
        out = _reference_col2im_1d(cols, self._out_shape, self.kernel,
                                   self.padding, self.stride)
        if self.bias is not None:
            out += self.bias.data.reshape(1, -1, 1)
        return out

    def _reference_backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None or self._out_shape is None:
            raise RuntimeError("backward called before forward")
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2))
        batch, _, in_len = self._x.shape
        grad_cols = _reference_im2col_1d(grad, self.kernel, self.padding,
                                        self.stride)
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        dx = (w_mat @ grad_cols).reshape(self.in_channels, in_len, batch).transpose(2, 0, 1)
        x_mat = self._x.transpose(1, 2, 0).reshape(self.in_channels, -1)
        self.weight.grad += (x_mat @ grad_cols.T).reshape(self.weight.shape)
        return dx
