"""Loss functions used by the GAN training loops and the MLP classifier.

All losses operate on *logits* (pre-sigmoid scores) where possible, using
the numerically stable softplus formulation so that extreme discriminator
confidence never produces inf/nan gradients.
"""

from __future__ import annotations

import numpy as np


def _as_float(x: np.ndarray) -> np.ndarray:
    """View ``x`` as a float array, preserving float32/float64.

    Non-float input (ints, lists) is promoted to float64; float input keeps
    its dtype so the float32 training path never silently upcasts.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    return x


def _softplus(x: np.ndarray) -> np.ndarray:
    """log(1 + exp(x)) computed without overflow."""
    return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid, preserving the input dtype.

    This is the shared stable-sigmoid helper: it never overflows, even for
    extreme logits, so callers must not pre-clip their inputs.
    """
    x = _as_float(x)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def bce_with_logits(logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Binary cross-entropy on logits.

    Returns ``(mean_loss, grad_wrt_logits)``.  The gradient is already
    divided by the batch size, so it can be fed straight into ``backward``.
    """
    logits = _as_float(logits)
    targets = _as_float(targets)
    if logits.shape != targets.shape:
        raise ValueError(f"shape mismatch: logits {logits.shape} vs targets {targets.shape}")
    loss = float(np.mean(_softplus(logits) - targets * logits))
    grad = (sigmoid(logits) - targets) / logits.size
    return loss, grad


def mse(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error; returns ``(loss, grad_wrt_pred)``."""
    pred = _as_float(pred)
    target = _as_float(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def l1(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean absolute error; returns ``(loss, subgrad_wrt_pred)``.

    Used by the table-GAN classification loss (Eq. 5), which measures the
    absolute discrepancy between synthesized labels and classifier
    predictions.
    """
    pred = _as_float(pred)
    target = _as_float(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    diff = pred - target
    loss = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return loss, grad


def hinge_threshold(value: float, delta: float) -> tuple[float, float]:
    """The table-GAN hinge ``max(0, value - delta)`` (Eq. 4).

    Returns ``(loss, dloss_dvalue)``; the derivative is the indicator that
    the hinge is active, which is what turns δ into a privacy knob: while
    the discrepancy stays below δ no gradient flows and synthesis quality is
    deliberately left degraded.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    excess = value - delta
    if excess > 0:
        return float(excess), 1.0
    return 0.0, 0.0
