"""Cached convolution index plans and the blocked-workspace policy.

Every convolution in :mod:`repro.nn` reduces to two primitives: a *gather*
(``im2col``) and its adjoint *scatter* (``col2im``).  Both are fully
determined by the per-record geometry ``(channels, spatial, kernel,
padding, stride)``, yet the seed implementation recomputed the index
arithmetic on every call — inside the hottest loop of the codebase.  A
:class:`ConvPlan` captures everything derivable from the geometry once:

* the validated output spatial sizes;
* the per-item flat scatter indices that map each patch element to its
  position in one (padded) record, used by the disjoint fancy-index
  scatter when ``stride >= kernel``;
* whether windows overlap at all, and the parity grouping of kernel
  offsets the overlapping scatter uses (see
  :func:`repro.nn.im2col.col2im`);
* the batch block size the blocked/streamed engine processes at a time
  (:meth:`ConvPlan.batch_block`), chosen so one block's patch matrix fits
  the workspace budget (:func:`workspace_budget`).

Since the **batch-major column convention** (ISSUE 4), a plan is
batch-free: the memo key is ``(channels, *spatial, kernel, padding,
stride)``, so one plan serves every batch size of the same record
geometry — training mini-batches, single-row serving requests, and the
blocked engine's partial tail blocks all hit the same cache entry.
Plans are memoized with :func:`functools.lru_cache`; the three conv layer
families (``Conv2D``, ``ConvTranspose2D`` and the 1-D pair in
:mod:`repro.nn.conv1d`) share index computations across layers, batches,
and training steps (``plan_cache_info`` exposes the counters;
``clear_plan_cache`` frees the cached index arrays, which benchmarks call
to measure cold-start behaviour honestly).  One plan handles one or two
spatial dimensions; ``x_shape`` is ``(N, C, L)`` or ``(N, C, H, W)``.

The plan is what the fast/reference testing contract hangs off: the fast
kernels consume plan indices and block sizes, the retained
``_reference_*`` oracles in :mod:`repro.nn.im2col` recompute everything
from scratch in the seed's spatial-position-major column order, and the
property tests in ``tests/nn/test_plan.py`` assert the two agree — through
the explicit layout adapters — bit-for-bit in float64 and within 1e-5 in
float32 (see ``docs/architecture.md``).
"""

from __future__ import annotations

from functools import lru_cache
from math import prod

import numpy as np

#: Default byte budget for one block's patch matrix in the blocked engine.
#: Sized so the hot working set (cols block + GEMM pack + output slice)
#: stays cache-resident; see :func:`set_workspace_budget`.
_DEFAULT_WORKSPACE_BUDGET = 4 * 2**20

_workspace_budget = _DEFAULT_WORKSPACE_BUDGET


def workspace_budget() -> int:
    """Current byte budget for one batch block's patch matrix."""
    return _workspace_budget


def set_workspace_budget(n_bytes: int | None) -> int:
    """Set the blocked-engine workspace budget; ``None`` restores the default.

    Returns the previous budget so callers (tests force tiny budgets to
    exercise single-item and partial blocks) can restore it.
    """
    global _workspace_budget
    previous = _workspace_budget
    if n_bytes is None:
        _workspace_budget = _DEFAULT_WORKSPACE_BUDGET
    else:
        if n_bytes < 1:
            raise ValueError(f"workspace budget must be positive, got {n_bytes}")
        _workspace_budget = int(n_bytes)
    return previous


def conv_output_size(size: int, kernel: int, padding: int, stride: int) -> int:
    """Spatial output size of a convolution along one axis.

    Raises ``ValueError`` when the geometry does not divide evenly, because
    a silent floor would desynchronize ``im2col`` and ``col2im``.  Both
    error messages spell out the full geometry for debuggability.
    """
    numerator = size + 2 * padding - kernel
    if numerator < 0:
        raise ValueError(
            f"kernel {kernel} larger than padded input {size + 2 * padding}: "
            f"size={size}, kernel={kernel}, padding={padding}, stride={stride}"
        )
    if numerator % stride != 0:
        raise ValueError(
            f"convolution geometry not exact: size={size}, kernel={kernel}, "
            f"padding={padding}, stride={stride}"
        )
    return numerator // stride + 1


class ConvPlan:
    """Precomputed im2col/col2im geometry for one per-record shape.

    A plan is **batch-free**: it describes one record ``(C, *spatial)``
    and every batch size shares it.  The batch-major patch matrix for a
    batch of ``N`` records has shape :meth:`cols_shape` ``= (N *
    n_positions, rows)`` — patch ``(n, p)`` is row ``n * n_positions +
    p``, so any batch-major matricization of an activation or gradient
    tensor is a reshape view, never a copy.

    Attributes
    ----------
    item_shape:
        The (unpadded) shape of one record, ``(C, *spatial)``.
    out:
        Output spatial sizes, one per spatial dimension.
    n_positions:
        ``prod(out)`` — patch positions per record.
    rows:
        ``C * kernel**S`` — elements per patch (the patch-matrix width).
    overlapping:
        True when ``stride < kernel``, i.e. scatter targets collide and
        ``col2im`` must accumulate.
    scatter_index:
        Per-item flat ``np.intp`` indices into one padded record
        ``(C, *padded)``, shaped ``(n_positions, rows)`` to match the
        batch-major patch layout, so the non-overlapping ``col2im``
        degenerates to one fancy-index assignment per batch block.
        Built lazily on first access: the overlapping path scatters by
        parity-grouped strided slices and never needs it.
    offset_groups:
        Kernel-offset parity groups of the overlapping scatter: per
        spatial dimension, the list of ``(m, cnt)`` pairs where group
        ``m`` fuses the ``cnt`` mutually disjoint offsets ``m * stride
        + rho`` (``rho < cnt``) into a single strided accumulation pass.
    """

    __slots__ = (
        "item_shape", "kernel", "padding", "stride", "channels",
        "spatial", "out", "n_positions", "rows",
        "padded_spatial", "padded_item_size", "unpad_slices", "overlapping",
        "offset_groups", "_scatter_index",
    )

    def __init__(self, item_shape: tuple[int, ...], kernel: int, padding: int,
                 stride: int):
        if len(item_shape) not in (2, 3):
            raise ValueError(
                f"expected (C, L) or (C, H, W) record shape, got {item_shape}"
            )
        channels, *spatial = (int(s) for s in item_shape)
        self.item_shape = (channels, *spatial)
        self.kernel = kernel
        self.padding = padding
        self.stride = stride
        self.channels = channels
        self.spatial = tuple(spatial)
        self.out = tuple(
            conv_output_size(s, kernel, padding, stride) for s in spatial
        )
        ndim_sp = len(self.spatial)
        padded = tuple(s + 2 * padding for s in spatial)
        self.n_positions = prod(self.out)
        self.rows = channels * kernel**ndim_sp
        self.padded_spatial = padded
        self.padded_item_size = channels * prod(padded)
        self.unpad_slices = (slice(None), slice(None)) + tuple(
            slice(padding, size - padding) if padding else slice(None)
            for size in padded
        )
        self.overlapping = stride < kernel
        # Offsets k_off = m*stride + rho (rho < cnt) form group m; within a
        # group all offsets land on distinct residues mod stride, so their
        # scatter targets are disjoint and one strided pass adds them all.
        self.offset_groups = tuple(
            (m, min(stride, kernel - m * stride))
            for m in range(-(-kernel // stride))
        ) if self.overlapping else ()
        self._scatter_index: np.ndarray | None = None

    def cols_shape(self, batch: int) -> tuple[int, int]:
        """Shape of the batch-major patch matrix for ``batch`` records."""
        return (int(batch) * self.n_positions, self.rows)

    def batch_block(self, itemsize: int) -> int:
        """Records per block so one block's patch matrix fits the budget."""
        per_item = self.n_positions * self.rows * int(itemsize)
        return max(1, _workspace_budget // max(1, per_item))

    @property
    def scatter_index(self) -> np.ndarray:
        if self._scatter_index is None:
            # Per-item flat targets: the element of patch position (*o) at
            # patch row (c, *k_off) lands at spatial cell stride * o + k_off
            # of channel c in one padded record.
            kernel, stride = self.kernel, self.stride
            padded = self.padded_spatial
            ndim_sp = len(padded)
            k_grid = np.indices((kernel,) * ndim_sp).reshape(ndim_sp, -1)
            o_grid = np.indices(self.out).reshape(ndim_sp, -1)
            # pos[d, p, kk]: spatial coordinate along axis d.
            pos = stride * o_grid[:, :, None] + k_grid[:, None, :]
            flat_sp = pos[0]
            for d in range(1, ndim_sp):
                flat_sp = flat_sp * padded[d] + pos[d]
            # Row order is (c, *k_off): channel-major within each patch.
            index = (
                np.arange(self.channels)[None, :, None] * prod(padded)
                + flat_sp[:, None, :]
            ).reshape(self.n_positions, self.rows)
            self._scatter_index = np.ascontiguousarray(index, dtype=np.intp)
        return self._scatter_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConvPlan(item_shape={self.item_shape}, kernel={self.kernel}, "
            f"padding={self.padding}, stride={self.stride}, out={self.out}, "
            f"overlapping={self.overlapping})"
        )


@lru_cache(maxsize=128)
def _cached_plan(item_shape: tuple[int, ...], kernel: int, padding: int,
                 stride: int) -> ConvPlan:
    return ConvPlan(item_shape, kernel, padding, stride)


def conv_plan(x_shape: tuple[int, ...], kernel: int, padding: int,
              stride: int) -> ConvPlan:
    """The memoized :class:`ConvPlan` for one batched input shape.

    ``x_shape`` is ``(N, C, L)`` or ``(N, C, H, W)``; the batch axis is
    dropped from the memo key (plans are batch-free under the batch-major
    convention), and the remaining sizes are normalized to python ints so
    numpy integer scalars hit the same cache entry.
    """
    if len(x_shape) not in (3, 4):
        raise ValueError(
            f"expected (N, C, L) or (N, C, H, W) input shape, got {tuple(x_shape)}"
        )
    key = tuple(int(s) for s in x_shape[1:])
    return _cached_plan(key, int(kernel), int(padding), int(stride))


def plan_cache_info():
    """Cache statistics of the plan memo (exposed for tests/benchmarks)."""
    return _cached_plan.cache_info()


def clear_plan_cache() -> None:
    """Drop all memoized plans (frees the cached index arrays)."""
    _cached_plan.cache_clear()
