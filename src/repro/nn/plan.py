"""Cached convolution index plans.

Every convolution in :mod:`repro.nn` reduces to two primitives: a *gather*
(``im2col``) and its adjoint *scatter* (``col2im``).  Both are fully
determined by the input geometry ``(x_shape, kernel, padding, stride)``,
yet the seed implementation recomputed the index arithmetic on every call
— inside the hottest loop of the codebase.  A :class:`ConvPlan` captures
everything derivable from the geometry once:

* the validated output spatial sizes;
* the flat scatter indices that map each patch-matrix element to its
  position in the (padded) image, laid out so a single ``np.bincount``
  accumulates all overlapping contributions;
* whether windows overlap at all — when ``stride >= kernel`` the scatter
  targets are disjoint and ``col2im`` degenerates to one fancy-index
  assignment with no accumulation.

Plans are memoized per geometry with :func:`functools.lru_cache`, so the
three conv layer families (``Conv2D``, ``ConvTranspose2D`` and the 1-D
pair in :mod:`repro.nn.conv1d`) share index computations across layers,
batches, and training steps: a table-GAN training run touches only a
handful of distinct geometries, so after the first mini-batch every
``im2col``/``col2im`` call is a cache hit (``plan_cache_info`` exposes the
counters; ``clear_plan_cache`` frees the cached index arrays, which
benchmarks call to measure cold-start behaviour honestly).  One plan
handles one or two spatial dimensions; ``x_shape`` is ``(N, C, L)`` or
``(N, C, H, W)``.

The plan is what the fast/reference testing contract hangs off: the fast
kernels consume plan indices, the retained ``_reference_*`` oracles in
:mod:`repro.nn.im2col` recompute everything from scratch, and the property
tests in ``tests/nn/test_plan.py`` assert the two agree bit-for-bit in
float64 and within 1e-5 in float32 (see ``docs/architecture.md``).
"""

from __future__ import annotations

from functools import lru_cache
from math import prod

import numpy as np


def conv_output_size(size: int, kernel: int, padding: int, stride: int) -> int:
    """Spatial output size of a convolution along one axis.

    Raises ``ValueError`` when the geometry does not divide evenly, because
    a silent floor would desynchronize ``im2col`` and ``col2im``.  Both
    error messages spell out the full geometry for debuggability.
    """
    numerator = size + 2 * padding - kernel
    if numerator < 0:
        raise ValueError(
            f"kernel {kernel} larger than padded input {size + 2 * padding}: "
            f"size={size}, kernel={kernel}, padding={padding}, stride={stride}"
        )
    if numerator % stride != 0:
        raise ValueError(
            f"convolution geometry not exact: size={size}, kernel={kernel}, "
            f"padding={padding}, stride={stride}"
        )
    return numerator // stride + 1


class ConvPlan:
    """Precomputed im2col/col2im geometry for one input shape.

    Attributes
    ----------
    x_shape:
        The (unpadded) input shape, ``(N, C, *spatial)``.
    out:
        Output spatial sizes, one per spatial dimension.
    cols_shape:
        Shape of the patch matrix: ``(C * kernel**S, prod(out) * N)``.
    overlapping:
        True when ``stride < kernel``, i.e. scatter targets collide and
        ``col2im`` must accumulate.
    scatter_index:
        Flat ``np.intp`` indices into the padded image buffer in
        ``cols.ravel()`` order ``(rows, positions, N)``, so ``col2im`` is a
        single ``np.bincount`` with no reordering copy.  Each target cell
        receives its overlapping contributions in ascending kernel-offset
        (row) order — the same per-cell order the reference ``np.add.at``
        uses — so float accumulation is bit-identical to the oracle.
        Built lazily on first access: the default float32 overlapping path
        scatters by strided kernel-offset slices and never needs it.
    """

    __slots__ = (
        "x_shape", "kernel", "padding", "stride", "batch", "channels",
        "spatial", "out", "n_positions", "rows", "cols_shape",
        "padded_shape", "padded_size", "unpad_slices", "overlapping",
        "_scatter_index",
    )

    def __init__(self, x_shape: tuple[int, ...], kernel: int, padding: int,
                 stride: int):
        if len(x_shape) not in (3, 4):
            raise ValueError(
                f"expected (N, C, L) or (N, C, H, W) input shape, got {x_shape}"
            )
        batch, channels, *spatial = (int(s) for s in x_shape)
        self.x_shape = (batch, channels, *spatial)
        self.kernel = kernel
        self.padding = padding
        self.stride = stride
        self.batch = batch
        self.channels = channels
        self.spatial = tuple(spatial)
        self.out = tuple(
            conv_output_size(s, kernel, padding, stride) for s in spatial
        )
        ndim_sp = len(self.spatial)
        padded = tuple(s + 2 * padding for s in spatial)
        self.n_positions = prod(self.out)
        self.rows = channels * kernel**ndim_sp
        self.cols_shape = (self.rows, self.n_positions * batch)
        self.padded_shape = (batch, channels, *padded)
        self.padded_size = prod(self.padded_shape)
        self.unpad_slices = (slice(None), slice(None)) + tuple(
            slice(padding, size - padding) if padding else slice(None)
            for size in padded
        )
        self.overlapping = stride < kernel
        self._scatter_index: np.ndarray | None = None

    @property
    def scatter_index(self) -> np.ndarray:
        if self._scatter_index is None:
            # Flat scatter targets: for patch row (c, *k_off) and output
            # position (*o), the element lands at spatial cell
            # stride * o + k_off of channel c.
            kernel, stride = self.kernel, self.stride
            padded = self.padded_shape[2:]
            ndim_sp = len(padded)
            k_grid = np.indices((kernel,) * ndim_sp).reshape(ndim_sp, -1)
            o_grid = np.indices(self.out).reshape(ndim_sp, -1)
            pos = stride * o_grid[:, None, :] + k_grid[:, :, None]
            flat_sp = pos[0]
            for d in range(1, ndim_sp):
                flat_sp = flat_sp * padded[d] + pos[d]
            within_item = (
                np.arange(self.channels)[:, None, None] * prod(padded)
                + flat_sp[None]
            ).reshape(self.rows, self.n_positions)
            per_item = self.channels * prod(padded)
            index = (
                within_item[:, :, None]
                + np.arange(self.batch)[None, None, :] * per_item
            )
            self._scatter_index = np.ascontiguousarray(
                index.reshape(-1), dtype=np.intp
            )
        return self._scatter_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConvPlan(x_shape={self.x_shape}, kernel={self.kernel}, "
            f"padding={self.padding}, stride={self.stride}, out={self.out}, "
            f"overlapping={self.overlapping})"
        )


@lru_cache(maxsize=128)
def _cached_plan(x_shape: tuple[int, ...], kernel: int, padding: int,
                 stride: int) -> ConvPlan:
    return ConvPlan(x_shape, kernel, padding, stride)


def conv_plan(x_shape: tuple[int, ...], kernel: int, padding: int,
              stride: int) -> ConvPlan:
    """The memoized :class:`ConvPlan` for one geometry.

    ``x_shape`` is normalized to a tuple of python ints so numpy integer
    scalars hit the same cache entry.
    """
    key = tuple(int(s) for s in x_shape)
    return _cached_plan(key, int(kernel), int(padding), int(stride))


def plan_cache_info():
    """Cache statistics of the plan memo (exposed for tests/benchmarks)."""
    return _cached_plan.cache_info()


def clear_plan_cache() -> None:
    """Drop all memoized plans (frees the cached index arrays)."""
    _cached_plan.cache_clear()
