"""Activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.

DCGAN's recipe (adopted by table-GAN §4.1): ReLU in the generator,
LeakyReLU(0.2) in the discriminator/classifier, Tanh on the generator
output, Sigmoid on the discriminator/classifier output.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


class ReLU(Layer):
    """Rectified linear unit, ``max(0, x)``."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask


class LeakyReLU(Layer):
    """Leaky rectifier, ``x if x > 0 else alpha * x`` (default alpha 0.2)."""

    def __init__(self, alpha: float = 0.2):
        super().__init__()
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self._scale: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        # One cached scale array (1 or alpha per element) makes forward and
        # backward a single multiply each instead of two np.where passes.
        one = x.dtype.type(1.0) if np.issubdtype(x.dtype, np.floating) else 1.0
        alpha = x.dtype.type(self.alpha) if np.issubdtype(x.dtype, np.floating) else self.alpha
        self._scale = np.where(x > 0, one, alpha)
        return x * self._scale

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._scale is None:
            raise RuntimeError("backward called before forward")
        return grad * self._scale


class Sigmoid(Layer):
    """Logistic sigmoid; output spans (0, 1)."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        # Numerically stable piecewise form avoids exp overflow for |x| >> 0.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Hyperbolic tangent; output spans (-1, 1), matching the [-1, 1] record encoding."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._out**2)
