"""Activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.

DCGAN's recipe (adopted by table-GAN §4.1): ReLU in the generator,
LeakyReLU(0.2) in the discriminator/classifier, Tanh on the generator
output, Sigmoid on the discriminator/classifier output.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


class ReLU(Layer):
    """Rectified linear unit, ``max(0, x)``."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask


class LeakyReLU(Layer):
    """Leaky rectifier, ``x if x > 0 else alpha * x`` (default alpha 0.2).

    The cached state is a boolean bitmask (1 byte per element) instead of a
    full-size floating scale array; forward and backward scale everything by
    alpha and then overwrite the positive entries in place.  The retained
    scale-array idiom (``_reference_forward``/``_reference_backward``) is the
    oracle the bitmask path is tested bit-identical against.
    """

    def __init__(self, alpha: float = 0.2):
        super().__init__()
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def _alpha_for(self, dtype: np.dtype):
        return dtype.type(self.alpha) if np.issubdtype(dtype, np.floating) else self.alpha

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        out = np.multiply(x, self._alpha_for(x.dtype))
        np.copyto(out, x, where=self._mask)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        dx = np.multiply(grad, self._alpha_for(grad.dtype))
        np.copyto(dx, grad, where=self._mask)
        return dx

    # Reference oracle: the full-size scale-array idiom, retained for the
    # fast==reference equivalence tests in ``tests/nn/test_activations.py``.
    def _reference_forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        one = x.dtype.type(1.0) if np.issubdtype(x.dtype, np.floating) else 1.0
        scale = np.where(x > 0, one, self._alpha_for(x.dtype))
        return x * scale, scale

    @staticmethod
    def _reference_backward(grad: np.ndarray, scale: np.ndarray) -> np.ndarray:
        return grad * scale


class Sigmoid(Layer):
    """Logistic sigmoid; output spans (0, 1)."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        # Numerically stable piecewise form avoids exp overflow for |x| >> 0.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Hyperbolic tangent; output spans (-1, 1), matching the [-1, 1] record encoding."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._out**2)
