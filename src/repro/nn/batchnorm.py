"""Batch normalization (Ioffe & Szegedy, 2015) for 2-D and 4-D inputs.

DCGAN applies batch norm in both generator and discriminator (except the
generator output and discriminator input layers).  One class handles both
dense (N, F) and convolutional (N, C, H, W) activations, normalizing per
feature / per channel.

Two kernel paths live here, mirroring the fast-engine/reference-oracle
convention of :mod:`repro.nn.im2col`:

* the **fused engine** (default) — the forward computes batch statistics
  with a fused reduction (single-pass ``E[x²] − mean²`` in float32,
  routed through the GEMV-backed
  :func:`~repro.nn.layers.channel_sum`, which is several times faster
  than ``np.sum`` over the conv layers' contiguous batch-major
  activations; a centered two-pass in float64 that reuses the centering
  buffer as the normalized-activation cache and is bit-identical to
  ``np.var``) and
  writes the scale-and-shift through in-place ufuncs; the backward folds
  the two re-reductions of the chain rule into the ``dgamma``/``dbeta``
  sums it already computes (float32) or replays the reference reductions
  through reused buffers (float64, bit-identical);
* the **reference oracle** — the original forward/backward, retained
  verbatim as ``_reference_forward``/``_reference_backward`` and selected
  with the :func:`reference_batchnorm` context manager.  The equivalence
  tests in ``tests/nn/test_batchnorm.py`` assert fused == reference
  bit-for-bit in float64 and within 1e-5 in float32, and the ``batchnorm``
  section of the engine benchmark measures speedups against it.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.nn import initializers
from repro.nn.layers import Layer, Parameter, channel_sum

#: When True, BatchNorm.forward/backward dispatch to the reference oracle.
_USE_REFERENCE = False


@contextmanager
def reference_batchnorm():
    """Context manager forcing the reference BatchNorm forward/backward.

    Used by the engine benchmark to time the seed idioms against the fused
    kernels on identical workloads, and by the equivalence tests.
    """
    global _USE_REFERENCE
    previous = _USE_REFERENCE
    _USE_REFERENCE = True
    try:
        yield
    finally:
        _USE_REFERENCE = previous


class BatchNorm(Layer):
    """Batch normalization with learnable scale (gamma) and shift (beta).

    Parameters
    ----------
    num_features:
        Feature width (2-D input) or channel count (4-D input).
    momentum:
        EWMA weight for the running statistics used at inference time.
    eps:
        Variance floor for numerical stability.
    dtype:
        Parameter and running-statistics dtype (the trainer's compute
        dtype; default float64).
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5,
                 dtype=np.float64):
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(initializers.ones((num_features,), dtype=dtype), "bn.gamma")
        self.beta = Parameter(initializers.zeros((num_features,), dtype=dtype), "bn.beta")
        self.params = [self.gamma, self.beta]
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)
        #: When set to a list, every training-mode forward appends its
        #: batch ``(mean, var)`` here instead of being observable only
        #: through the EWMA.  The data-parallel trainer uses this tap to
        #: record per-shard statistics events and replay them into one
        #: canonical running-stats stream in fixed shard order
        #: (see repro.core.parallel).
        self.stats_tap: list | None = None
        self._cache: tuple | None = None

    def extra_state(self) -> dict[str, np.ndarray]:
        return {
            "running_mean": self.running_mean.copy(),
            "running_var": self.running_var.copy(),
        }

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        mean = np.asarray(state["running_mean"], dtype=self.running_mean.dtype)
        var = np.asarray(state["running_var"], dtype=self.running_var.dtype)
        if mean.shape != self.running_mean.shape or var.shape != self.running_var.shape:
            raise ValueError("running-statistics shape mismatch")
        self.running_mean = mean
        self.running_var = var

    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 3:
            return (0, 2)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm expects 2-D, 3-D or 4-D input, got shape {x.shape}")

    @staticmethod
    def _bcast(stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return stat.reshape(1, -1)
        if ndim == 3:
            return stat.reshape(1, -1, 1)
        return stat.reshape(1, -1, 1, 1)

    def _update_running(self, mean: np.ndarray, var: np.ndarray) -> None:
        if self.stats_tap is not None:
            self.stats_tap.append((mean.copy(), var.copy()))
        self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
        self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        axes = self._axes(x)
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features/channels, got {x.shape[1]}"
            )
        if _USE_REFERENCE:
            return self._reference_forward(x, axes, training)
        return self._fused_forward(x, axes, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if _USE_REFERENCE:
            return self._reference_backward(grad)
        return self._fused_backward(grad)

    # ------------------------------------------------------------------
    # Fused engine.
    # ------------------------------------------------------------------
    def _fused_forward(self, x: np.ndarray, axes: tuple[int, ...],
                       training: bool) -> np.ndarray:
        count = x.size // self.num_features
        scratch: np.ndarray | None = None
        if training:
            # float64 keeps np.mean (its contract is bit-identity with the
            # oracle); float32 may reorder the sum for speed.
            mean = (x.mean(axis=axes) if x.dtype == np.float64
                    else channel_sum(x) / x.dtype.type(count))
            if x.dtype == np.float64:
                # Two-pass over a centered buffer: the subtraction is the
                # one the normalization needs anyway, and summing the
                # squared centered values reproduces np.var bit for bit.
                x_hat = x - self._bcast(mean, x.ndim)
                scratch = np.multiply(x_hat, x_hat)
                var = scratch.sum(axis=axes) / count
            else:
                # Single-pass E[x²] − mean²: one sweep for the squared sum,
                # no centering pass.  Clamped at zero against cancellation.
                # Reductions route through the GEMV-backed channel_sum,
                # which is several times faster than np.sum on the conv
                # layers' contiguous batch-major activations.
                scratch = np.multiply(x, x)
                var = channel_sum(scratch) / count - mean * mean
                np.maximum(var, 0.0, out=var)
                x_hat = np.subtract(x, self._bcast(mean, x.ndim))
            self._update_running(mean, var)
        else:
            mean, var = self.running_mean, self.running_var
            x_hat = np.subtract(x, self._bcast(mean, x.ndim))
        inv_std = 1.0 / np.sqrt(var + self.eps)
        np.multiply(x_hat, self._bcast(inv_std, x.ndim), out=x_hat)
        # The squared-values buffer has served its purpose; reuse it as the
        # output so the scale-and-shift allocates nothing new.
        out = scratch if scratch is not None else np.empty_like(x_hat)
        np.multiply(x_hat, self._bcast(self.gamma.data, x.ndim), out=out)
        np.add(out, self._bcast(self.beta.data, x.ndim), out=out)
        self._cache = (x_hat, inv_std, axes, count, x.ndim, training)
        return out

    def _fused_backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, inv_std, axes, count, ndim, trained = self._cache
        if x_hat.dtype == np.float64:
            return self._fused_backward_exact(grad, x_hat, inv_std, axes, ndim,
                                              trained)
        # float32: fold the two chain-rule re-reductions into the
        # dgamma/dbeta sums.  mean(gamma·grad) == gamma·dbeta/count and
        # mean(gamma·grad·x_hat) == gamma·dgamma/count, so the whole dx is
        # an affine map  c1·grad + c2·x_hat + c0  with per-channel
        # coefficients — two reductions total instead of four.
        prod = np.multiply(grad, x_hat)
        dgamma = channel_sum(prod)
        dbeta = channel_sum(grad)
        self.gamma.grad += dgamma
        self.beta.grad += dbeta
        c1 = self.gamma.data * inv_std
        if not trained:
            # Inference mode: mean/var are constants, gradient is a plain scale.
            return grad * self._bcast(c1, ndim)
        c2 = -c1 * (dgamma / count)
        c0 = -c1 * (dbeta / count)
        dx = np.multiply(grad, self._bcast(c1, ndim))
        np.multiply(x_hat, self._bcast(c2, ndim), out=prod)
        np.add(dx, prod, out=dx)
        np.add(dx, self._bcast(c0, ndim), out=dx)
        return dx

    def _fused_backward_exact(self, grad, x_hat, inv_std, axes, ndim, trained):
        """float64 backward: the reference operation sequence replayed
        through two reused buffers — bit-identical, no further temporaries."""
        t = np.multiply(grad, x_hat)
        self.gamma.grad += t.sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        g = np.multiply(grad, self._bcast(self.gamma.data, ndim))
        if not trained:
            np.multiply(g, self._bcast(inv_std, ndim), out=g)
            return g
        mean_g = g.mean(axis=axes, keepdims=True)
        np.multiply(g, x_hat, out=t)
        mean_gx = t.mean(axis=axes, keepdims=True)
        np.multiply(x_hat, mean_gx, out=t)
        np.subtract(g, mean_g, out=g)
        np.subtract(g, t, out=g)
        np.multiply(g, self._bcast(inv_std, ndim), out=g)
        return g

    # ------------------------------------------------------------------
    # Reference oracle: the original implementations, kept verbatim.  They
    # are the ground truth the fused kernels are property-tested against
    # and the baseline the engine benchmark measures speedups from.
    # ------------------------------------------------------------------
    def _reference_forward(self, x: np.ndarray, axes: tuple[int, ...],
                           training: bool) -> np.ndarray:
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self._update_running(mean, var)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._bcast(mean, x.ndim)) * self._bcast(inv_std, x.ndim)
        out = self._bcast(self.gamma.data, x.ndim) * x_hat + self._bcast(self.beta.data, x.ndim)
        count = x.size // self.num_features
        self._cache = (x_hat, inv_std, axes, count, x.ndim, training)
        return out

    def _reference_backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, inv_std, axes, count, ndim, trained = self._cache
        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        g = grad * self._bcast(self.gamma.data, ndim)
        if not trained:
            # Inference mode: mean/var are constants, gradient is a plain scale.
            return g * self._bcast(inv_std, ndim)
        # Training mode: propagate through the batch statistics.
        mean_g = g.mean(axis=axes, keepdims=True)
        mean_gx = (g * x_hat).mean(axis=axes, keepdims=True)
        return self._bcast(inv_std, ndim) * (g - mean_g - x_hat * mean_gx)
