"""Batch normalization (Ioffe & Szegedy, 2015) for 2-D and 4-D inputs.

DCGAN applies batch norm in both generator and discriminator (except the
generator output and discriminator input layers).  One class handles both
dense (N, F) and convolutional (N, C, H, W) activations, normalizing per
feature / per channel.
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.layers import Layer, Parameter


class BatchNorm(Layer):
    """Batch normalization with learnable scale (gamma) and shift (beta).

    Parameters
    ----------
    num_features:
        Feature width (2-D input) or channel count (4-D input).
    momentum:
        EWMA weight for the running statistics used at inference time.
    eps:
        Variance floor for numerical stability.
    dtype:
        Parameter and running-statistics dtype (the trainer's compute
        dtype; default float64).
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5,
                 dtype=np.float64):
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(initializers.ones((num_features,), dtype=dtype), "bn.gamma")
        self.beta = Parameter(initializers.zeros((num_features,), dtype=dtype), "bn.beta")
        self.params = [self.gamma, self.beta]
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)
        self._cache: tuple | None = None

    def extra_state(self) -> dict[str, np.ndarray]:
        return {
            "running_mean": self.running_mean.copy(),
            "running_var": self.running_var.copy(),
        }

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        mean = np.asarray(state["running_mean"], dtype=self.running_mean.dtype)
        var = np.asarray(state["running_var"], dtype=self.running_var.dtype)
        if mean.shape != self.running_mean.shape or var.shape != self.running_var.shape:
            raise ValueError("running-statistics shape mismatch")
        self.running_mean = mean
        self.running_var = var

    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 3:
            return (0, 2)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm expects 2-D, 3-D or 4-D input, got shape {x.shape}")

    @staticmethod
    def _bcast(stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return stat.reshape(1, -1)
        if ndim == 3:
            return stat.reshape(1, -1, 1)
        return stat.reshape(1, -1, 1, 1)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        axes = self._axes(x)
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features/channels, got {x.shape[1]}"
            )
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._bcast(mean, x.ndim)) * self._bcast(inv_std, x.ndim)
        out = self._bcast(self.gamma.data, x.ndim) * x_hat + self._bcast(self.beta.data, x.ndim)
        count = x.size // self.num_features
        self._cache = (x_hat, inv_std, axes, count, x.ndim, training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, axes, count, ndim, trained = self._cache
        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        g = grad * self._bcast(self.gamma.data, ndim)
        if not trained:
            # Inference mode: mean/var are constants, gradient is a plain scale.
            return g * self._bcast(inv_std, ndim)
        # Training mode: propagate through the batch statistics.
        mean_g = g.mean(axis=axes, keepdims=True)
        mean_gx = (g * x_hat).mean(axis=axes, keepdims=True)
        return self._bcast(inv_std, ndim) * (g - mean_g - x_hat * mean_gx)
