"""Algorithm 2: the table-GAN training loop.

Per mini-batch, in the paper's order:

1. update the discriminator D with the original GAN loss (line 8);
2. update the classifier C with the classification loss on real records
   (line 9);
3. refresh the EWMA feature statistics from post-update D features of the
   real and synthetic batches (lines 10–13);
4. update the generator G with L_orig + L_info + L_class (line 14).

The generator gradient is assembled from three back-propagations through
the (frozen) discriminator/classifier:

* the adversarial gradient enters at D's logit;
* the information-loss gradient is injected directly at D's feature layer
  (the flattened pre-sigmoid activations);
* the classification gradient flows through C — with the label cell of the
  record zeroed on the way in (``remove``) and the direct dependence of the
  synthesized label on the generator output added back separately.

All three Adam optimizers default to the fused flat-buffer path
(:mod:`repro.nn.optim`): each network's parameters are materialized as
views into one contiguous buffer, so every ``step()`` is a handful of
whole-buffer in-place ops and every ``zero_grad()`` is a single memset.
The trainer therefore zeroes gradients through the optimizers rather than
by walking the layer tree.  Under :func:`repro.nn.reference_kernels` the
optimizers fall back to the per-parameter reference loop — that is how the
engine benchmark reconstructs the seed-idiom epoch cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TableGanConfig
from repro.core.losses import (
    FeatureStats,
    classification_loss,
    discriminator_loss,
    generator_adversarial_loss,
    information_loss,
)
from repro.core.networks import FEATURE_LAYER
from repro.core.schedule import UpdateSchedule
from repro.nn import Adam, Sequential
from repro.obs import trace
from repro.obs.profile import PhaseProfile
from repro.utils.rng import ensure_rng


@dataclass
class EpochLosses:
    """Mean per-epoch training losses, for convergence inspection."""

    d_loss: float
    g_adv_loss: float
    g_info_loss: float
    g_class_loss: float
    c_loss: float


@dataclass
class TrainingHistory:
    """Loss trajectory over epochs plus the final feature discrepancies."""

    epochs: list[EpochLosses] = field(default_factory=list)
    final_l_mean: float = 0.0
    final_l_sd: float = 0.0

    def append(self, losses: EpochLosses) -> None:
        self.epochs.append(losses)


class TableGanTrainer:
    """Trains generator/discriminator/classifier on encoded record matrices.

    Parameters
    ----------
    generator, discriminator, classifier:
        The three networks (``classifier`` may be ``None`` when the
        classification loss is disabled).
    config:
        Hyper-parameters; ``config.use_info_loss`` / ``use_classifier``
        gate the two auxiliary losses.
    label_cell:
        Position of the label attribute inside the record tensor — a
        (row, col) tuple for the square layout, an (offset,) tuple for the
        vector layout, or a *list* of such tuples for the §4.2.3
        multi-label extension.  Required when the classifier is enabled.
    schedule:
        The per-batch update interleave (an
        :class:`~repro.core.schedule.UpdateSchedule`).  Defaults to the
        seed interleave derived from ``config`` — one D step, one C step,
        a statistics refresh, then ``config.generator_updates`` G steps —
        which the default executor replays bit-exactly.
    """

    def __init__(self, generator: Sequential, discriminator: Sequential,
                 classifier: Sequential | None, config: TableGanConfig,
                 label_cell=None, schedule: UpdateSchedule | None = None):
        self.generator = generator
        self.discriminator = discriminator
        self.classifier = classifier
        self.config = config
        if label_cell is None:
            self.label_cells: list[tuple] | None = None
        elif isinstance(label_cell, list):
            self.label_cells = [tuple(cell) for cell in label_cell]
        else:
            self.label_cells = [tuple(label_cell)]
        if config.use_classifier and classifier is not None and self.label_cells is None:
            raise ValueError("label_cell is required when the classifier is enabled")
        self.opt_g = Adam(generator.parameters(), lr=config.lr, beta1=config.beta1)
        self.opt_d = Adam(discriminator.parameters(), lr=config.lr, beta1=config.beta1)
        self.opt_c = (
            Adam(classifier.parameters(), lr=config.lr, beta1=config.beta1)
            if (config.use_classifier and classifier is not None)
            else None
        )
        self.schedule = (schedule if schedule is not None
                         else UpdateSchedule.from_config(config))
        self.stats: FeatureStats | None = None
        self._dtype = config.np_dtype
        # Wall-clock spent per schedule op across the whole run; always on
        # (two perf_counter reads per op) and read back by the bench/CLI.
        self.profile = PhaseProfile()

    # ------------------------------------------------------------------
    def sample_latent(self, batch: int, rng) -> np.ndarray:
        """z uniform in the unit hypercube [-1, 1]^latent_dim (paper §4.1.2).

        Drawn in float64 (so the stream is dtype-independent) and cast to
        the compute dtype.
        """
        z = rng.uniform(-1.0, 1.0, size=(batch, self.config.latent_dim))
        return z.astype(self._dtype, copy=False)

    @property
    def _label_indices(self) -> list[tuple]:
        """Numpy indices of the label cells: (row, col) cells for the square
        layout, (offset,) cells for the vector layout, one per label."""
        return [(slice(None), 0, *cell) for cell in self.label_cells]

    def _remove_label(self, matrices: np.ndarray) -> np.ndarray:
        """The paper's remove(.): zero the label cells so C cannot read them."""
        out = matrices.copy()
        for index in self._label_indices:
            out[index] = 0.0
        return out

    def _labels01(self, matrices: np.ndarray) -> np.ndarray:
        """Read label cells, mapped from [-1, 1] onto [0, 1].

        Returns shape ``(batch,)`` for the single-label case and
        ``(batch, n_labels)`` for the multi-label extension, matching the
        classifier head count.
        """
        columns = [
            np.clip((matrices[index] + 1.0) * 0.5, 0.0, 1.0)
            for index in self._label_indices
        ]
        if len(columns) == 1:
            return columns[0]
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------
    def _update_discriminator(self, real: np.ndarray, fake: np.ndarray) -> float:
        """One D step on L_orig^D (Algorithm 2 line 8).

        The real and fake halves are back-propagated one after the other
        (a Sequential holds one forward cache at a time); gradients
        accumulate across both halves and a single Adam step applies them.
        """
        self.opt_d.zero_grad()
        real_logits = self.discriminator.forward(real)
        loss, grad_real, grad_fake_template = discriminator_loss(
            real_logits, np.zeros_like(real_logits)
        )
        # Only the real-half gradient from that call is valid; backprop it,
        # then run the fake half with its own logits.
        self.discriminator.backward(grad_real)
        fake_logits = self.discriminator.forward(fake)
        loss_full, _, grad_fake = discriminator_loss(real_logits, fake_logits)
        self.discriminator.backward(grad_fake)
        self.opt_d.step()
        return loss_full

    def _update_classifier(self, real: np.ndarray) -> float:
        if self.opt_c is None:
            return 0.0
        labels = self._labels01(real)
        logits = self.classifier.forward(self._remove_label(real))
        logits = logits.ravel() if labels.ndim == 1 else logits
        loss, grad_logits, _ = classification_loss(logits, labels)
        self.opt_c.zero_grad()
        self.classifier.backward(grad_logits)
        self.opt_c.step()
        return loss

    def _update_generator(self, fake: np.ndarray, rng,
                          d_forward_cached: bool = False) -> tuple[float, float, float]:
        """Assemble the three-part gradient at the generator output and step G.

        ``fake`` must be the batch produced by the most recent
        ``generator.forward`` so the generator's caches are consistent.
        ``d_forward_cached=True`` promises the discriminator's forward
        caches already hold this exact ``fake`` batch under the current D
        weights (the epoch loop's statistics refresh guarantees it), so
        the adversarial logits are read from the cache instead of paying
        a second identical D forward.
        """
        config = self.config
        # Adversarial part (through D's logit).
        if d_forward_cached:
            fake_logits = self.discriminator.activation(len(self.discriminator) - 1)
        else:
            fake_logits = self.discriminator.forward(fake)
        adv_loss, grad_logits = generator_adversarial_loss(
            fake_logits, saturating=config.saturating_generator_loss
        )
        self.opt_d.zero_grad()

        # Information part (injected at D's feature layer).  Backward rules
        # are linear in the gradient, so the adversarial gradient is carried
        # down to the feature layer, the information-loss gradient added
        # there, and the sum propagated through the (expensive) conv stack
        # once — instead of one full traversal per loss term.
        info_loss_value = 0.0
        grad_at_features = self.discriminator.backward_to(FEATURE_LAYER, grad_logits)
        if config.use_info_loss:
            synthetic_features = self.discriminator.activation(FEATURE_LAYER)
            info_loss_value, grad_features = information_loss(
                self.stats, synthetic_features, config.delta_mean, config.delta_sd
            )
            if np.any(grad_features):
                grad_at_features = grad_at_features + grad_features
        grad_at_fake = self.discriminator.backward_from(
            FEATURE_LAYER, grad_at_features
        )

        # Classification part (through C on label-removed records).
        class_loss_value = 0.0
        if self.opt_c is not None:
            labels = self._labels01(fake)
            c_logits = self.classifier.forward(self._remove_label(fake))
            c_logits = c_logits.ravel() if labels.ndim == 1 else c_logits
            class_loss_value, grad_c_logits, grad_labels = classification_loss(
                c_logits, labels
            )
            self.opt_c.zero_grad()
            grad_via_c = self.classifier.backward(grad_c_logits)
            # The classifier never saw the label cells; no gradient there.
            # Direct dependence of the synthesized labels on G's output:
            # labels01 = (cell + 1) / 2, so d(labels01)/d(cell) = 1/2.
            if labels.ndim == 1:
                grad_via_c[self._label_indices[0]] = grad_labels * 0.5
            else:
                for j, index in enumerate(self._label_indices):
                    grad_via_c[index] = grad_labels[:, j] * 0.5
            grad_at_fake = grad_at_fake + grad_via_c

        self.opt_g.zero_grad()
        self.generator.backward(grad_at_fake)
        self.opt_g.step()
        return adv_loss, info_loss_value, class_loss_value

    # ------------------------------------------------------------------
    def _run_batch(self, real: np.ndarray, z: np.ndarray, rng
                   ) -> tuple[float, float, float, float, float]:
        """Execute one mini-batch following ``self.schedule``.

        Returns the ``(d, g_adv, g_info, g_class, c)`` loss tuple; when a
        schedule holds several ops of one kind, the last op's loss wins
        (matching the seed loop, which reported the final generator
        step's losses).

        The executor tracks two cache-validity flags so the default
        schedule replays the seed loop's forward sequence exactly:

        * ``fake_fresh`` — the generator's forward caches (and ``fake``)
          correspond to the current G weights; any ``g`` step invalidates
          it, and the next consumer pays one ``generator.forward``;
        * ``stats_fresh`` — the discriminator's forward caches hold this
          exact ``fake`` batch under the current D weights (the ``stats``
          refresh just ran), so the first following ``g`` step reuses
          them instead of a second identical D forward.
        """
        fake: np.ndarray | None = None
        fake_fresh = False
        stats_fresh = False
        d_loss = c_loss = 0.0
        adv = info = cls = 0.0
        profile = self.profile
        for op in self.schedule.ops:
            op_t0 = time.perf_counter()
            if op == "d":
                if not fake_fresh:
                    fake = self.generator.forward(z)
                    fake_fresh = True
                d_loss = self._update_discriminator(real, fake)
                stats_fresh = False
                profile.add("d_step", time.perf_counter() - op_t0)
            elif op == "c":
                c_loss = self._update_classifier(real)
                profile.add("c_step", time.perf_counter() - op_t0)
            elif op == "stats":
                if not fake_fresh:
                    fake = self.generator.forward(z)
                    fake_fresh = True
                # EWMA refresh with post-update discriminator features
                # (Algorithm 2 lines 10-13).  The real pass runs first so
                # the cached forward state ends on the fake batch, which
                # the next generator update backpropagates through.
                self.discriminator.forward(real)
                self.stats.update_real(
                    self.discriminator.activation(FEATURE_LAYER)
                )
                self.discriminator.forward(fake)
                self.stats.update_synthetic(
                    self.discriminator.activation(FEATURE_LAYER)
                )
                stats_fresh = True
                profile.add("stats_refresh", time.perf_counter() - op_t0)
            else:  # "g"
                if not fake_fresh:
                    fake = self.generator.forward(z)
                adv, info, cls = self._update_generator(
                    fake, rng, d_forward_cached=stats_fresh
                )
                fake_fresh = False
                stats_fresh = False
                profile.add("g_step", time.perf_counter() - op_t0)
        return d_loss, adv, info, cls, c_loss

    # ------------------------------------------------------------------
    def train(self, matrices: np.ndarray, rng=None,
              on_epoch_end=None, checkpointer=None) -> TrainingHistory:
        """Run Algorithm 2 on encoded record matrices of shape (N, 1, d, d).

        Parameters
        ----------
        matrices:
            Encoded training records.
        rng:
            Seed or generator (falls back to ``config.seed``).
        on_epoch_end:
            Optional callback ``(epoch_index, EpochLosses) -> None``.
        checkpointer:
            Optional :class:`~repro.core.checkpoint.TrainerCheckpointer`.
            When given, the loop first restores the newest snapshot (if
            one exists) and continues from its epoch/batch cursor, then
            saves per its policy after each batch and epoch.  All
            randomness flows through the one restored generator, so a
            resumed run is bit-identical to an uninterrupted one.
        """
        config = self.config
        matrices = np.ascontiguousarray(matrices, dtype=self._dtype)
        if matrices.ndim not in (3, 4) or matrices.shape[1] != 1:
            raise ValueError(
                f"expected (N, 1, d, d) or (N, 1, L) matrices, got {matrices.shape}"
            )
        n = matrices.shape[0]
        if n < 2:
            raise ValueError("need at least 2 training records")
        rng = ensure_rng(rng if rng is not None else config.seed)

        # Probe feature width with a tiny forward pass.
        probe = self.discriminator.forward(matrices[:1], training=False)
        n_features = self.discriminator.activation(FEATURE_LAYER).shape[1]
        self.stats = FeatureStats(n_features, weight=config.ewma_weight)

        history = TrainingHistory()
        batch = min(config.batch_size, n)
        cursor = None
        start_epoch = 0
        if checkpointer is not None:
            cursor = checkpointer.restore(self, rng, history, n_rows=n)
            if cursor is not None:
                start_epoch = cursor.epoch
        for epoch in range(start_epoch, config.epochs):
            if cursor is not None and cursor.perm is not None:
                # Mid-epoch resume: replay this epoch's shuffle and pick
                # up at the saved batch offset with the saved loss sums.
                perm = cursor.perm
                shuffled = matrices[perm]
                sums = cursor.sums
                n_batches = cursor.n_batches
                first_start = cursor.batch_start
            else:
                # One shuffled gather per epoch; every mini-batch below is
                # a zero-copy contiguous view into it.
                perm = rng.permutation(n)
                shuffled = matrices[perm]
                sums = np.zeros(5)
                n_batches = 0
                first_start = 0
            cursor = None
            for start in range(first_start, n - batch + 1, batch):
                real = shuffled[start : start + batch]
                z = self.sample_latent(real.shape[0], rng)
                with trace.span("train.batch", epoch=epoch, rows=real.shape[0]):
                    sums += self._run_batch(real, z, rng)
                n_batches += 1
                if checkpointer is not None:
                    checkpointer.on_batch(
                        self, rng, epoch=epoch, next_start=start + batch,
                        perm=perm, sums=sums, n_batches=n_batches,
                        history=history, n_rows=n,
                    )

            if n_batches == 0:
                raise RuntimeError(
                    f"batch size {batch} too large for {n} records"
                )
            means = sums / n_batches
            losses = EpochLosses(*[float(v) for v in means])
            history.append(losses)
            if on_epoch_end is not None:
                on_epoch_end(epoch, losses)
            if checkpointer is not None:
                checkpointer.on_epoch(self, rng, epoch=epoch,
                                      history=history, n_rows=n)

        history.final_l_mean = self.stats.l_mean
        history.final_l_sd = self.stats.l_sd
        return history
