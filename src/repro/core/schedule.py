"""The Algorithm 2 per-batch update schedule as an explicit, testable object.

The seed trainer hard-coded its D/C/G interleave inside the epoch loop:
one discriminator step, one classifier step, a feature-statistics refresh,
then ``config.generator_updates`` generator steps.  That order is a
*contract* — the information loss reads statistics refreshed from the
post-update discriminator, and the first generator step reuses the
discriminator forward the refresh just paid for — so it deserves a named,
inspectable representation rather than a code shape.

:class:`UpdateSchedule` is that representation: a frozen sequence of named
ops, one entry per optimizer step or statistics refresh within a
mini-batch.  ``UpdateSchedule.from_config`` reproduces the seed interleave
exactly (the contract tests in ``tests/core/test_schedule.py`` pin the
replay down bit-for-bit), and :meth:`UpdateSchedule.rounds` derives the
synchronization-round grouping the data-parallel trainer
(:mod:`repro.core.parallel`) executes between gradient all-reduces.

Ops
---
``d``
    One discriminator Adam step on the original GAN loss (line 8).
``c``
    One classifier Adam step on the classification loss (line 9); a no-op
    when the classifier is disabled.
``stats``
    The EWMA feature-statistics refresh from post-update discriminator
    features of the real and synthetic batches (lines 10–13).
``g``
    One generator Adam step on L_orig + L_info + L_class (line 14).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Every op name an :class:`UpdateSchedule` may contain.
OPS = ("d", "c", "stats", "g")


@dataclass(frozen=True)
class UpdateSchedule:
    """An ordered tuple of per-batch update ops (see module docstring).

    Frozen and hashable: a schedule is configuration, and it participates
    in the checkpoint fingerprint — resuming under a different schedule is
    a different run and is refused.
    """

    ops: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "ops", tuple(self.ops))
        if not self.ops:
            raise ValueError("schedule needs at least one op")
        unknown = sorted({op for op in self.ops if op not in OPS})
        if unknown:
            raise ValueError(
                f"unknown schedule ops {unknown}; valid ops: {', '.join(OPS)}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config) -> "UpdateSchedule":
        """The seed interleave for ``config``: d, c, stats, then
        ``config.generator_updates`` generator steps."""
        return cls.for_counts(g_steps=config.generator_updates)

    @classmethod
    def for_counts(cls, d_steps: int = 1, g_steps: int = 1,
                   classifier: bool = True,
                   refresh_stats: bool = True) -> "UpdateSchedule":
        """A schedule with ``d_steps`` D ops then ``g_steps`` G ops.

        The classifier step and the statistics refresh sit between the two
        blocks, exactly where the seed loop put them.
        """
        if d_steps < 1:
            raise ValueError(f"d_steps must be >= 1, got {d_steps}")
        if g_steps < 1:
            raise ValueError(f"g_steps must be >= 1, got {g_steps}")
        ops: tuple[str, ...] = ("d",) * d_steps
        if classifier:
            ops += ("c",)
        if refresh_stats:
            ops += ("stats",)
        ops += ("g",) * g_steps
        return cls(ops)

    # ------------------------------------------------------------------
    @property
    def d_steps(self) -> int:
        """Discriminator steps per mini-batch."""
        return sum(1 for op in self.ops if op == "d")

    @property
    def g_steps(self) -> int:
        """Generator steps per mini-batch."""
        return sum(1 for op in self.ops if op == "g")

    def rounds(self) -> tuple[tuple[str, ...], ...]:
        """The schedule partitioned into data-parallel synchronization rounds.

        A round is a maximal run of ops whose gradient computations all
        read the *pre-round* weights and statistics, so workers can
        compute them from one weight broadcast and the master can apply
        the reduced steps together before the next round:

        * a ``d`` op immediately followed by ``c`` shares its round (the
          classifier update reads neither D's weights nor D's features);
        * every other op is its own round — ``stats`` reads the D weights
          a preceding ``d`` just wrote, each ``g`` reads the G weights the
          previous ``g`` wrote.
        """
        rounds: list[tuple[str, ...]] = []
        i = 0
        while i < len(self.ops):
            if (self.ops[i] == "d" and i + 1 < len(self.ops)
                    and self.ops[i + 1] == "c"):
                rounds.append(("d", "c"))
                i += 2
            else:
                rounds.append((self.ops[i],))
                i += 1
        return tuple(rounds)
