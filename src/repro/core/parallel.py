"""Data-parallel Algorithm 2 training with a bit-exact, ordered all-reduce.

:class:`ParallelTrainer` shards every mini-batch across worker processes
and applies each optimizer step exactly once on the master — yet its
result is **bit-identical for every worker count**, the same contract
:class:`~repro.serve.sharding.ShardedSampler` proves for sampling.  The
trick is to make the computation a pure function of a *shard
decomposition* that does not mention workers at all:

1.  Every global batch is split into ``grad_shards`` fixed row ranges
    (:func:`shard_bounds`).  Workers own shards round-robin, but nothing
    a worker computes depends on *which* worker owns a shard — each shard
    is always recomputed from the shared weights, never from another
    shard's caches.
2.  Each shard's gradient is published, pre-weighted by its share of the
    global batch, into a per-shard ``multiprocessing.shared_memory``
    buffer.  The master reduces the buffers **in shard-index order**
    (:meth:`~repro.nn.flatbuf.FlatParameterBuffer.reduce_grads`) —
    floating-point addition is not associative, so the fixed order is
    what makes the sum independent of worker arrival order — and steps
    the fused Adam once per schedule op.
3.  Network parameters live in shared-memory segments
    (:meth:`~repro.nn.flatbuf.FlatParameterBuffer.rebind_storage`), so
    the master's optimizer step *is* the weight broadcast: every process
    aliases the same bytes.
4.  Order-dependent EWMA state never updates concurrently.  Workers
    record BatchNorm batch statistics through a per-layer tap
    (``BatchNorm.stats_tap``) and ship feature mean/sd vectors with their
    round results; the master replays all of it into one canonical stream
    in (round, shard, op) order.
5.  All randomness (epoch shuffles, latent draws) happens on the master's
    single generator, exactly as in the serial loop.

The per-batch op sequence is the trainer's
:class:`~repro.core.schedule.UpdateSchedule`, partitioned into
synchronization *rounds* (:meth:`UpdateSchedule.rounds`).  Per round the
master broadcasts one command, every process computes its shards, the
master collects results, reduces, steps, and replays statistics.  A
worker that dies mid-round can therefore never contribute a partial
gradient: the master detects the dead process (or an injected fault at
the ``parallel.reduce`` seam) while *collecting*, before any reduce of
that round completes on its behalf, and fails the epoch loudly with
:class:`ParallelTrainingError`.  Combined with
:class:`~repro.core.checkpoint.TrainerCheckpointer` — whose fingerprint
includes the shard count and schedule but *not* the worker count — a
crashed run resumes bit-exactly under any worker count.

**ParallelTrainer is N-invariant, not serial-identical.**  Sharding
changes the numbers (per-shard BatchNorm statistics, per-shard loss
normalization, the ordered float sum), so a sharded run does not
reproduce the unsharded :class:`~repro.core.trainer.TableGanTrainer`
bit-for-bit — it reproduces *itself* under every worker count.  The
serial trainer remains the default for ``fit()`` without ``--workers``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from multiprocessing import shared_memory
from queue import Empty
from types import SimpleNamespace

import numpy as np

from repro.core.config import TableGanConfig
from repro.core.losses import (
    classification_loss,
    discriminator_loss,
    generator_adversarial_loss,
    information_loss,
)
from repro.core.networks import FEATURE_LAYER
from repro.core.schedule import UpdateSchedule
from repro.core.trainer import EpochLosses, FeatureStats, TableGanTrainer, TrainingHistory
from repro.nn import Sequential
from repro.nn.batchnorm import BatchNorm
from repro.obs import trace
from repro.utils.faults import fault_point
from repro.utils.rng import ensure_rng

#: Fixed net order for gradient areas, BatchNorm replay, and payloads.
_NET_TAGS = ("g", "d", "c")


class ParallelTrainingError(RuntimeError):
    """Data-parallel training failed loudly (dead worker, injected fault,
    round timeout).  No partial gradient has been applied: the master
    aborts a round before reducing on behalf of a missing shard."""


def shard_bounds(rows: int, shards: int) -> list[tuple[int, int]]:
    """Split ``rows`` batch rows into ``shards`` contiguous ranges.

    The first ``rows % shards`` shards get one extra row.  This is the
    *fixed decomposition* every determinism guarantee hangs off: it
    depends only on (rows, shards), never on worker count.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if rows < shards:
        raise ValueError(f"cannot split {rows} rows into {shards} shards")
    base, extra = divmod(rows, shards)
    bounds, start = [], 0
    for s in range(shards):
        stop = start + base + (1 if s < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _bn_layers(net: Sequential | None) -> list[BatchNorm]:
    """The BatchNorm layers of ``net`` in layer order (replay targets)."""
    if net is None:
        return []
    return [layer for layer in net.layers if isinstance(layer, BatchNorm)]


class _ShardExecutor:
    """Computes per-shard gradients and statistics inside one process.

    Both the master (rank 0) and every worker run the same executor over
    their own shard subset; determinism across worker counts follows
    because nothing here reads state another shard wrote — forward caches
    are rebuilt per shard, the latent/real rows come from shared-memory
    views written by the master, and the feature statistics are read from
    the master-published snapshot.
    """

    def __init__(self, trainer: "ParallelTrainer", shard_ids, stats_obj):
        self.t = trainer
        self.shard_ids = sorted(shard_ids)
        self.stats_obj = stats_obj
        self._bn = {tag: _bn_layers(net) for tag, net in (
            ("g", trainer.generator), ("d", trainer.discriminator),
            ("c", trainer.classifier if trainer.opt_c is not None else None),
        )}
        self._fake: dict[int, np.ndarray] = {}

    # -- BatchNorm statistics tap ---------------------------------------
    def _arm_taps(self) -> None:
        for layers in self._bn.values():
            for layer in layers:
                layer.stats_tap = []

    def _collect_taps(self) -> dict[str, list]:
        events = {}
        for tag in _NET_TAGS:
            layers = self._bn.get(tag, [])
            events[tag] = [layer.stats_tap or [] for layer in layers]
            for layer in layers:
                layer.stats_tap = None
        return events

    # -- per-op shard computations --------------------------------------
    def _publish(self, shard: int, tag: str, weight: float) -> None:
        """Write this shard's (pre-weighted) gradient into its shared slot.

        The ``parallel.reduce`` fault seam sits here: an injected fault
        makes a shard fail *before* its gradient is visible, which the
        chaos tests use to prove the epoch dies loudly instead of
        stepping on partial sums.
        """
        fault_point("parallel.reduce")
        self.t._flats[tag].export_grads(self.t._grad_views[shard][tag],
                                        scale=weight)

    def _shard_fake(self, shard: int, z_s: np.ndarray) -> np.ndarray:
        fake = self._fake.get(shard)
        if fake is None:
            fake = self.t.generator.forward(z_s)
            self._fake[shard] = fake
        return fake

    def _op_d(self, shard, real, z_s, weight):
        t = self.t
        fake = self._shard_fake(shard, z_s)
        t._flats["d"].zero_grad()
        real_logits = t.discriminator.forward(real)
        _, grad_real, _ = discriminator_loss(
            real_logits, np.zeros_like(real_logits)
        )
        t.discriminator.backward(grad_real)
        fake_logits = t.discriminator.forward(fake)
        loss_full, _, grad_fake = discriminator_loss(real_logits, fake_logits)
        t.discriminator.backward(grad_fake)
        self._publish(shard, "d", weight)
        return loss_full

    def _op_c(self, shard, real, weight):
        t = self.t
        labels = t._labels01(real)
        logits = t.classifier.forward(t._remove_label(real))
        logits = logits.ravel() if labels.ndim == 1 else logits
        loss, grad_logits, _ = classification_loss(logits, labels)
        t._flats["c"].zero_grad()
        t.classifier.backward(grad_logits)
        self._publish(shard, "c", weight)
        return loss

    def _op_stats(self, shard, real, z_s):
        t = self.t
        fake = self._shard_fake(shard, z_s)
        t.discriminator.forward(real)
        real_features = t.discriminator.activation(FEATURE_LAYER)
        r_mean, r_sd = real_features.mean(axis=0), real_features.std(axis=0)
        t.discriminator.forward(fake)
        fake_features = t.discriminator.activation(FEATURE_LAYER)
        f_mean, f_sd = fake_features.mean(axis=0), fake_features.std(axis=0)
        return (r_mean, r_sd, f_mean, f_sd)

    def _op_g(self, shard, z_s, weight):
        t = self.t
        config = t.config
        # Always a fresh generator forward: G's (and D's) internal caches
        # hold whatever shard ran last, so per-shard recomputation is the
        # only worker-count-independent option — and it is exactly what
        # makes the result a pure function of the shard decomposition.
        fake = t.generator.forward(z_s)
        fake_logits = t.discriminator.forward(fake)
        adv_loss, grad_logits = generator_adversarial_loss(
            fake_logits, saturating=config.saturating_generator_loss
        )
        grad_at_features = t.discriminator.backward_to(FEATURE_LAYER, grad_logits)
        info_loss_value = 0.0
        if config.use_info_loss:
            synthetic_features = t.discriminator.activation(FEATURE_LAYER)
            info_loss_value, grad_features = information_loss(
                self.stats_obj, synthetic_features,
                config.delta_mean, config.delta_sd,
            )
            if np.any(grad_features):
                grad_at_features = grad_at_features + grad_features
        grad_at_fake = t.discriminator.backward_from(FEATURE_LAYER, grad_at_features)

        class_loss_value = 0.0
        if t.opt_c is not None:
            labels = t._labels01(fake)
            c_logits = t.classifier.forward(t._remove_label(fake))
            c_logits = c_logits.ravel() if labels.ndim == 1 else c_logits
            class_loss_value, grad_c_logits, grad_labels = classification_loss(
                c_logits, labels
            )
            grad_via_c = t.classifier.backward(grad_c_logits)
            if labels.ndim == 1:
                grad_via_c[t._label_indices[0]] = grad_labels * 0.5
            else:
                for j, index in enumerate(t._label_indices):
                    grad_via_c[index] = grad_labels[:, j] * 0.5
            grad_at_fake = grad_at_fake + grad_via_c

        t._flats["g"].zero_grad()
        t.generator.backward(grad_at_fake)
        self._publish(shard, "g", weight)
        return adv_loss, info_loss_value, class_loss_value

    # -- one synchronization round --------------------------------------
    def run_round(self, offset: int, rows: int, ops, reuse_fake: bool) -> dict:
        """Compute every owned shard for one round; return the payload.

        ``reuse_fake`` says the cached per-shard synthetic batches are
        still valid (no generator step since they were computed) — a
        schedule-position fact the master broadcasts, so cache behaviour
        is identical for every worker count.
        """
        if not reuse_fake:
            self._fake.clear()
        t = self.t
        bounds = shard_bounds(rows, t.grad_shards)
        payload: dict[int, dict] = {}
        for shard in self.shard_ids:
            start, stop = bounds[shard]
            real = t._epoch_view[offset + start : offset + stop]
            z_s = t._z_view[start:stop]
            weight = (stop - start) / rows
            shard_result: dict[str, dict] = {}
            for op in ops:
                if op == "c" and t.opt_c is None:
                    shard_result[op] = {"loss": 0.0, "bn": {tag: [] for tag in _NET_TAGS}}
                    continue
                self._arm_taps()
                result: dict = {}
                if op == "d":
                    result["loss"] = self._op_d(shard, real, z_s, weight)
                elif op == "c":
                    result["loss"] = self._op_c(shard, real, weight)
                elif op == "stats":
                    result["feat"] = self._op_stats(shard, real, z_s)
                else:  # "g"
                    adv, info, cls = self._op_g(shard, z_s, weight)
                    result["loss"] = (adv, info, cls)
                result["bn"] = self._collect_taps()
                shard_result[op] = result
            payload[shard] = shard_result
        return payload


def _worker_main(trainer: "ParallelTrainer", rank: int, shard_ids,
                 cmd_queue, result_queue) -> None:
    """Worker process body (fork-inherited trainer; params alias shared
    memory, gradients are private copy-on-write scratch)."""
    round_id = -1
    try:
        executor = _ShardExecutor(trainer, shard_ids, trainer._stats_view())
        while True:
            command = cmd_queue.get()
            if command[0] == "stop":
                break
            _, round_id, offset, rows, ops, reuse_fake = command
            payload = executor.run_round(offset, rows, ops, reuse_fake)
            result_queue.put(("ok", rank, round_id, payload))
    except BaseException as exc:  # noqa: BLE001 — report, then die loudly
        try:
            result_queue.put(
                ("error", rank, round_id, f"{type(exc).__name__}: {exc}")
            )
        except Exception:
            pass
    finally:
        # Flush the queue feeder, then skip interpreter teardown: the
        # fork-inherited shared-memory views must not be "cleaned up"
        # by a child (the master owns the segments).
        result_queue.close()
        result_queue.join_thread()
        os._exit(0)


class ParallelTrainer(TableGanTrainer):
    """Algorithm 2 across worker processes, bit-identical for every N.

    Parameters (beyond :class:`~repro.core.trainer.TableGanTrainer`)
    ----------------------------------------------------------------
    workers:
        Processes computing shards (including the master, which is rank
        0).  Capped at ``grad_shards``; ``workers=1`` runs everything
        in-process through the identical code path.
    grad_shards:
        The fixed number of gradient shards per global batch.  This — not
        the worker count — is what changes the numbers; it participates
        in the checkpoint fingerprint, and the global batch must hold at
        least this many rows.
    round_timeout_s:
        How long the master waits for a round's worker results before
        declaring the round hung.  Dead workers are detected within a
        fraction of a second regardless.
    """

    def __init__(self, generator: Sequential, discriminator: Sequential,
                 classifier: Sequential | None, config: TableGanConfig,
                 label_cell=None, schedule: UpdateSchedule | None = None,
                 workers: int = 1, grad_shards: int = 4,
                 round_timeout_s: float = 300.0):
        super().__init__(generator, discriminator, classifier, config,
                         label_cell=label_cell, schedule=schedule)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if grad_shards < 1:
            raise ValueError(f"grad_shards must be >= 1, got {grad_shards}")
        if round_timeout_s <= 0:
            raise ValueError(
                f"round_timeout_s must be positive, got {round_timeout_s}"
            )
        self.workers = workers
        self.grad_shards = grad_shards
        self.round_timeout_s = round_timeout_s
        self._flats = {"g": self.opt_g._flat, "d": self.opt_d._flat}
        if self.opt_c is not None:
            self._flats["c"] = self.opt_c._flat
        if any(flat is None for flat in self._flats.values()):
            raise ParallelTrainingError(
                "data-parallel training requires the fused flat-buffer "
                "optimizers (the per-parameter reference path has no "
                "all-reduce unit)"
            )
        n_procs = min(workers, grad_shards)
        if n_procs > 1 and "fork" not in multiprocessing.get_all_start_methods():
            raise ParallelTrainingError(
                "workers > 1 requires the 'fork' start method (workers "
                "inherit the network object graph; spawn cannot rebuild "
                "the shared-memory aliasing)"
            )
        self._n_procs = n_procs
        self._segment_seq = 0
        self._segments: list[shared_memory.SharedMemory] = []
        self._procs: list = []
        self.worker_pids: list[int] = []

    # ------------------------------------------------------------------
    # Shared-memory plumbing.
    # ------------------------------------------------------------------
    def _alloc_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        # Recognizably named (``rgrad{pid}_{n}``) rather than the stdlib's
        # anonymous ``psm_*`` so the chaos suite can assert, by listing
        # /dev/shm, that training teardown and crash paths leaked nothing.
        for _ in range(64):
            name = f"rgrad{os.getpid()}_{self._segment_seq}"
            self._segment_seq += 1
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, nbytes))
            except FileExistsError:  # a dead run's leftover; pick a new name
                continue
            self._segments.append(segment)
            return segment
        raise ParallelTrainingError(
            "could not allocate a uniquely named shared-memory segment")

    @staticmethod
    def _segment_views(segment, specs) -> list[np.ndarray]:
        views, offset = [], 0
        for dtype, size in specs:
            views.append(np.frombuffer(segment.buf, dtype=dtype, count=size,
                                       offset=offset))
            offset += size * dtype.itemsize
        return views

    def _setup_shared(self, matrices: np.ndarray, batch: int,
                      n_features: int) -> None:
        # Parameters: one segment per network; rebinding makes every
        # optimizer step a zero-copy broadcast to all forked processes.
        for tag, flat in self._flats.items():
            specs = flat.group_specs()
            segment = self._alloc_segment(
                sum(size * dtype.itemsize for dtype, size in specs)
            )
            flat.rebind_storage(data_backing=self._segment_views(segment, specs))
        # Per-shard gradient slots: shard-indexed so the reduction order
        # is positional, independent of worker arrival order.
        self._grad_views = []
        for _ in range(self.grad_shards):
            per_tag = {}
            for tag, flat in self._flats.items():
                specs = flat.group_specs()
                segment = self._alloc_segment(
                    sum(size * dtype.itemsize for dtype, size in specs)
                )
                per_tag[tag] = self._segment_views(segment, specs)
            self._grad_views.append(per_tag)
        # Epoch data (the master's per-epoch shuffled gather), the global
        # batch's latent draws, and the published feature statistics.
        epoch_segment = self._alloc_segment(matrices.nbytes)
        self._epoch_view = np.frombuffer(
            epoch_segment.buf, dtype=matrices.dtype, count=matrices.size
        ).reshape(matrices.shape)
        z_segment = self._alloc_segment(
            batch * self.config.latent_dim * np.dtype(self._dtype).itemsize
        )
        self._z_view = np.frombuffer(
            z_segment.buf, dtype=self._dtype, count=batch * self.config.latent_dim
        ).reshape(batch, self.config.latent_dim)
        stats_segment = self._alloc_segment(4 * n_features * 8)
        self._stats_arrays = self._segment_views(
            stats_segment, [(np.dtype(np.float64), n_features)] * 4
        )
        self._publish_stats()

    def _publish_stats(self) -> None:
        """Snapshot the canonical EWMA statistics into shared memory."""
        for view, name in zip(self._stats_arrays,
                              ("fx_mean", "fx_sd", "fz_mean", "fz_sd")):
            view[...] = getattr(self.stats, name)

    def _stats_view(self):
        """A FeatureStats-shaped read view of the published statistics."""
        fx_mean, fx_sd, fz_mean, fz_sd = self._stats_arrays
        return SimpleNamespace(fx_mean=fx_mean, fx_sd=fx_sd,
                               fz_mean=fz_mean, fz_sd=fz_sd)

    def _teardown_shared(self) -> None:
        # Move the parameters back onto private memory *before* the
        # segments go away — anything still viewing a closed segment
        # would fault on the next access.
        for flat in self._flats.values():
            flat.rebind_storage(data_backing=[
                np.empty(size, dtype=dtype) for dtype, size in flat.group_specs()
            ])
        # Layer forward caches hold views of the last batch — slices of
        # the shared epoch/latent segments.  Drop them so the segments
        # can actually unmap.
        for net in (self.generator, self.discriminator, self.classifier):
            if net is None:
                continue
            net._activations = None
            for layer in net.layers:
                for attr in ("_x", "_cache"):
                    if hasattr(layer, attr):
                        setattr(layer, attr, None)
        for name in ("_grad_views", "_epoch_view", "_z_view", "_stats_arrays"):
            if hasattr(self, name):
                delattr(self, name)
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # a stray view (e.g. in a traceback frame)
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    # Worker lifecycle.
    # ------------------------------------------------------------------
    def _spawn_workers(self) -> None:
        self._cmd_queues = []
        self._procs = []
        if self._n_procs == 1:
            # Single-process mode runs the identical executor/reduce path
            # with zero children — and with zero multiprocessing plumbing,
            # so it works even where the fork start method does not exist.
            self._result_queue = None
            self._my_shards = list(range(self.grad_shards))
            return
        context = multiprocessing.get_context("fork")
        self._result_queue = context.Queue()
        owners = {
            rank: [s for s in range(self.grad_shards)
                   if s % self._n_procs == rank]
            for rank in range(self._n_procs)
        }
        self._my_shards = owners[0]
        for rank in range(1, self._n_procs):
            cmd_queue = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(self, rank, owners[rank], cmd_queue, self._result_queue),
                daemon=True,
            )
            process.start()
            self._cmd_queues.append(cmd_queue)
            self._procs.append(process)
        self.worker_pids = [process.pid for process in self._procs]

    def _shutdown_workers(self) -> None:
        for cmd_queue in getattr(self, "_cmd_queues", []):
            try:
                cmd_queue.put(("stop",))
            except Exception:
                pass
        for process in getattr(self, "_procs", []):
            # Keep draining the result queue while waiting: a worker that
            # aborted mid-flush is blocked until its queued payloads are
            # consumed, so join without drain could deadlock into the
            # terminate fallback.
            deadline = time.monotonic() + 5.0
            while process.is_alive() and time.monotonic() < deadline:
                try:
                    self._result_queue.get(timeout=0.05)
                except Empty:
                    pass
            process.join(timeout=0.1)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._procs = []
        self._cmd_queues = []
        self.worker_pids = []

    def _collect(self, round_id: int) -> dict[int, dict]:
        """Gather one round's worker payloads, failing loudly on loss.

        Polls with a short timeout so a worker death surfaces in well
        under a second; an injected-fault error message from a worker is
        re-raised as :class:`ParallelTrainingError` with the cause."""
        payloads: dict[int, dict] = {}
        deadline = time.monotonic() + self.round_timeout_s
        while len(payloads) < len(self._procs):
            try:
                kind, rank, rid, body = self._result_queue.get(timeout=0.2)
            except Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    # Give an in-flight error report a moment to land so
                    # the exception can say *why* the worker died.
                    try:
                        kind, rank, rid, body = self._result_queue.get(timeout=0.5)
                        if kind == "error":
                            raise ParallelTrainingError(
                                f"worker {rank} failed in round {rid}: {body}; "
                                "epoch aborted before any partial gradient "
                                "was applied"
                            )
                    except Empty:
                        pass
                    raise ParallelTrainingError(
                        f"worker process(es) {[p.pid for p in dead]} died "
                        f"mid-round {round_id}; epoch aborted before any "
                        "partial gradient was applied"
                    )
                if time.monotonic() > deadline:
                    raise ParallelTrainingError(
                        f"round {round_id} timed out after "
                        f"{self.round_timeout_s:.0f}s waiting for "
                        f"{len(self._procs) - len(payloads)} worker result(s)"
                    )
                continue
            if kind == "error":
                raise ParallelTrainingError(
                    f"worker {rank} failed in round {rid}: {body}; epoch "
                    "aborted before any partial gradient was applied"
                )
            if rid != round_id:
                raise ParallelTrainingError(
                    f"protocol desync: worker {rank} answered round {rid} "
                    f"during round {round_id}"
                )
            payloads[rank] = body
        return payloads

    # ------------------------------------------------------------------
    # Canonical statistics replay.
    # ------------------------------------------------------------------
    def _init_bn_canonical(self) -> None:
        self._bn_layer_map = {
            "g": _bn_layers(self.generator),
            "d": _bn_layers(self.discriminator),
            "c": _bn_layers(self.classifier if self.opt_c is not None else None),
        }
        self._bn_canonical = {
            tag: [(layer.running_mean.copy(), layer.running_var.copy())
                  for layer in layers]
            for tag, layers in self._bn_layer_map.items()
        }

    def _replay_bn(self, ops, merged: dict[int, dict]) -> None:
        """Fold every recorded BatchNorm event in (shard, op, layer) order.

        This is the exact EWMA expression of ``BatchNorm._update_running``
        applied to one canonical stream, so the saved running statistics
        are a pure function of the shard decomposition."""
        for shard in range(self.grad_shards):
            shard_result = merged[shard]
            for op in ops:
                events_by_tag = shard_result[op]["bn"]
                for tag in _NET_TAGS:
                    layers = self._bn_layer_map[tag]
                    canonical = self._bn_canonical[tag]
                    for index, events in enumerate(events_by_tag.get(tag, [])):
                        mean_c, var_c = canonical[index]
                        momentum = layers[index].momentum
                        for mean, var in events:
                            mean_c = momentum * mean_c + (1 - momentum) * mean
                            var_c = momentum * var_c + (1 - momentum) * var
                        canonical[index] = (mean_c, var_c)

    def _sync_bn(self) -> None:
        """Write the canonical running statistics back into the layers
        (before checkpoints and at the end of training), replacing the
        scratch values the master's own shard forwards left behind."""
        for tag, layers in self._bn_layer_map.items():
            for layer, (mean, var) in zip(layers, self._bn_canonical[tag]):
                layer.running_mean = mean.copy()
                layer.running_var = var.copy()

    # ------------------------------------------------------------------
    # The training loop.
    # ------------------------------------------------------------------
    def _apply_round(self, ops, merged: dict[int, dict], rows: int,
                     losses: dict[str, float]) -> None:
        bounds = shard_bounds(rows, self.grad_shards)
        weights = [(stop - start) / rows for start, stop in bounds]

        def folded(values) -> float:
            total = 0.0
            for weight, value in zip(weights, values):
                total += weight * value
            return total

        profile = self.profile
        for op in ops:
            if op == "d":
                fault_point("parallel.reduce")
                t0 = time.perf_counter()
                self._flats["d"].reduce_grads(
                    [self._grad_views[s]["d"] for s in range(self.grad_shards)]
                )
                t1 = time.perf_counter()
                self.opt_d.step()
                profile.add("reduce", t1 - t0)
                profile.add("optimizer_step", time.perf_counter() - t1)
                losses["d"] = folded(
                    merged[s][op]["loss"] for s in range(self.grad_shards)
                )
            elif op == "c":
                if self.opt_c is None:
                    losses["c"] = 0.0
                    continue
                fault_point("parallel.reduce")
                t0 = time.perf_counter()
                self._flats["c"].reduce_grads(
                    [self._grad_views[s]["c"] for s in range(self.grad_shards)]
                )
                t1 = time.perf_counter()
                self.opt_c.step()
                profile.add("reduce", t1 - t0)
                profile.add("optimizer_step", time.perf_counter() - t1)
                losses["c"] = folded(
                    merged[s][op]["loss"] for s in range(self.grad_shards)
                )
            elif op == "stats":
                # Canonical fold order: every shard's real statistics in
                # shard order, then every shard's synthetic statistics —
                # mirroring the serial loop's real-then-synthetic shape.
                for shard in range(self.grad_shards):
                    r_mean, r_sd, _, _ = merged[shard][op]["feat"]
                    self.stats.fold_real(r_mean, r_sd)
                for shard in range(self.grad_shards):
                    _, _, f_mean, f_sd = merged[shard][op]["feat"]
                    self.stats.fold_synthetic(f_mean, f_sd)
                self._publish_stats()
            else:  # "g"
                fault_point("parallel.reduce")
                t0 = time.perf_counter()
                self._flats["g"].reduce_grads(
                    [self._grad_views[s]["g"] for s in range(self.grad_shards)]
                )
                t1 = time.perf_counter()
                self.opt_g.step()
                profile.add("reduce", t1 - t0)
                profile.add("optimizer_step", time.perf_counter() - t1)
                losses["adv"] = folded(
                    merged[s][op]["loss"][0] for s in range(self.grad_shards)
                )
                losses["info"] = folded(
                    merged[s][op]["loss"][1] for s in range(self.grad_shards)
                )
                losses["cls"] = folded(
                    merged[s][op]["loss"][2] for s in range(self.grad_shards)
                )
        t0 = time.perf_counter()
        self._replay_bn(ops, merged)
        profile.add("bn_replay", time.perf_counter() - t0)

    def _run_parallel_batch(self, offset: int, rows: int, rng
                            ) -> tuple[float, float, float, float, float]:
        self._z_view[...] = self.sample_latent(rows, rng)
        losses = {"d": 0.0, "adv": 0.0, "info": 0.0, "cls": 0.0, "c": 0.0}
        fake_valid = False
        profile = self.profile
        for ops in self._rounds:
            self._round_id += 1
            command = ("round", self._round_id, offset, rows, ops, fake_valid)
            for cmd_queue in self._cmd_queues:
                cmd_queue.put(command)
            t0 = time.perf_counter()
            merged = self._executor.run_round(offset, rows, ops, fake_valid)
            t1 = time.perf_counter()
            for body in self._collect(self._round_id).values():
                merged.update(body)
            profile.add("shard_compute", t1 - t0)
            profile.add("reduce_wait", time.perf_counter() - t1)
            if sorted(merged) != list(range(self.grad_shards)):
                raise ParallelTrainingError(
                    f"round {self._round_id} covered shards {sorted(merged)}, "
                    f"expected 0..{self.grad_shards - 1}"
                )
            self._apply_round(ops, merged, rows, losses)
            if "g" in ops:
                fake_valid = False
            elif "d" in ops or "stats" in ops:
                fake_valid = True
        return (losses["d"], losses["adv"], losses["info"], losses["cls"],
                losses["c"])

    def train(self, matrices: np.ndarray, rng=None,
              on_epoch_end=None, checkpointer=None) -> TrainingHistory:
        """Run data-parallel Algorithm 2; see the module docstring.

        The loop structure (probe, restore, per-epoch shuffle, cursors,
        checkpointer hooks) deliberately mirrors the serial trainer so
        checkpoints are interchangeable across worker counts."""
        config = self.config
        matrices = np.ascontiguousarray(matrices, dtype=self._dtype)
        if matrices.ndim not in (3, 4) or matrices.shape[1] != 1:
            raise ValueError(
                f"expected (N, 1, d, d) or (N, 1, L) matrices, got {matrices.shape}"
            )
        n = matrices.shape[0]
        if n < 2:
            raise ValueError("need at least 2 training records")
        rng = ensure_rng(rng if rng is not None else config.seed)

        self.discriminator.forward(matrices[:1], training=False)
        n_features = self.discriminator.activation(FEATURE_LAYER).shape[1]
        self.stats = FeatureStats(n_features, weight=config.ewma_weight)

        history = TrainingHistory()
        batch = min(config.batch_size, n)
        if batch < self.grad_shards:
            raise ParallelTrainingError(
                f"global batch of {batch} rows cannot carry "
                f"{self.grad_shards} gradient shards; lower --grad-shards "
                "or raise the batch size"
            )
        cursor = None
        start_epoch = 0
        if checkpointer is not None:
            cursor = checkpointer.restore(self, rng, history, n_rows=n)
            if cursor is not None:
                start_epoch = cursor.epoch

        self._init_bn_canonical()
        self._rounds = self.schedule.rounds()
        self._round_id = 0
        try:
            self._setup_shared(matrices, batch, n_features)
            self._spawn_workers()
            self._executor = _ShardExecutor(self, self._my_shards, self.stats)
            for epoch in range(start_epoch, config.epochs):
                if cursor is not None and cursor.perm is not None:
                    perm = cursor.perm
                    sums = cursor.sums
                    n_batches = cursor.n_batches
                    first_start = cursor.batch_start
                else:
                    perm = rng.permutation(n)
                    sums = np.zeros(5)
                    n_batches = 0
                    first_start = 0
                cursor = None
                # One shuffled gather per epoch, written straight into the
                # shared segment every process reads its shard rows from.
                np.take(matrices, perm, axis=0, out=self._epoch_view)
                for start in range(first_start, n - batch + 1, batch):
                    with trace.span("train.batch", epoch=epoch, rows=batch,
                                    parallel=True):
                        sums += self._run_parallel_batch(start, batch, rng)
                    n_batches += 1
                    if checkpointer is not None:
                        self._sync_bn()
                        checkpointer.on_batch(
                            self, rng, epoch=epoch, next_start=start + batch,
                            perm=perm, sums=sums, n_batches=n_batches,
                            history=history, n_rows=n,
                        )
                if n_batches == 0:
                    raise RuntimeError(
                        f"batch size {batch} too large for {n} records"
                    )
                means = sums / n_batches
                losses = EpochLosses(*[float(v) for v in means])
                history.append(losses)
                if on_epoch_end is not None:
                    on_epoch_end(epoch, losses)
                if checkpointer is not None:
                    self._sync_bn()
                    checkpointer.on_epoch(self, rng, epoch=epoch,
                                          history=history, n_rows=n)
            self._sync_bn()
        except BaseException as exc:
            # The traceback's frames pin the last batch's row/latent views
            # — slices of the shared segments — in their locals.  Release
            # them so the teardown below can actually unmap the segments.
            traceback.clear_frames(exc.__traceback__)
            raise
        finally:
            self._shutdown_workers()
            self._teardown_shared()
            self._executor = None

        history.final_l_mean = self.stats.l_mean
        history.final_l_sd = self.stats.l_sd
        return history
