"""table-GAN core: the paper's primary contribution."""

from repro.core.checkpoint import (
    CheckpointError,
    TrainerCheckpointer,
    TrainingInterrupted,
)
from repro.core.chunking import ChunkedTableGAN
from repro.core.config import (
    TableGanConfig,
    dcgan_baseline,
    high_privacy,
    low_privacy,
    mid_privacy,
)
from repro.core.losses import (
    FeatureStats,
    classification_loss,
    discriminator_loss,
    generator_adversarial_loss,
    information_loss,
)
from repro.core.networks import (
    FEATURE_LAYER,
    build_classifier,
    build_classifier_1d,
    build_discriminator,
    build_discriminator_1d,
    build_generator,
    build_generator_1d,
    feature_width,
)
from repro.core.parallel import ParallelTrainer, ParallelTrainingError, shard_bounds
from repro.core.sampler import RecordSampler
from repro.core.schedule import UpdateSchedule
from repro.core.tablegan import TableGAN
from repro.core.trainer import EpochLosses, TableGanTrainer, TrainingHistory

__all__ = [
    "TableGAN",
    "TableGanConfig",
    "low_privacy",
    "mid_privacy",
    "high_privacy",
    "dcgan_baseline",
    "ChunkedTableGAN",
    "TableGanTrainer",
    "ParallelTrainer",
    "ParallelTrainingError",
    "shard_bounds",
    "UpdateSchedule",
    "TrainerCheckpointer",
    "TrainingInterrupted",
    "CheckpointError",
    "TrainingHistory",
    "EpochLosses",
    "RecordSampler",
    "FeatureStats",
    "discriminator_loss",
    "generator_adversarial_loss",
    "information_loss",
    "classification_loss",
    "build_generator",
    "build_discriminator",
    "build_classifier",
    "build_generator_1d",
    "build_discriminator_1d",
    "build_classifier_1d",
    "feature_width",
    "FEATURE_LAYER",
]
