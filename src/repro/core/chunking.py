"""Chunked table-GAN training for large tables (paper §4.4).

The paper's second scalability strategy: split the table into several
smaller chunks, train an independent table-GAN on each, then sample from
each trained model and merge — runtime drops linearly in the number of
chunks (and chunks are embarrassingly parallel).  The paper uses this for
the million-row Airline table.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TableGanConfig
from repro.core.tablegan import TableGAN
from repro.data.table import Table
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import check_fitted


class ChunkedTableGAN:
    """Train one table-GAN per row chunk and sample from the ensemble.

    Parameters
    ----------
    config:
        Configuration shared by every chunk's model.
    n_chunks:
        Number of (near-)equal row chunks.
    """

    def __init__(self, config: TableGanConfig | None = None, n_chunks: int = 2):
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be at least 1, got {n_chunks}")
        self.config = config or TableGanConfig()
        self.n_chunks = n_chunks
        self.models_: list[TableGAN] | None = None
        self.chunk_sizes_: list[int] | None = None

    def fit(self, table: Table, rng=None) -> "ChunkedTableGAN":
        """Shuffle rows, split into chunks, and train a model per chunk."""
        rng = ensure_rng(rng if rng is not None else self.config.seed)
        if table.n_rows < 2 * self.n_chunks:
            raise ValueError(
                f"{table.n_rows} rows is too few for {self.n_chunks} chunks"
            )
        order = rng.permutation(table.n_rows)
        chunks = np.array_split(order, self.n_chunks)
        child_rngs = spawn_rng(rng, self.n_chunks)

        self.models_ = []
        self.chunk_sizes_ = []
        for chunk_idx, child in zip(chunks, child_rngs):
            model = TableGAN(self.config)
            model.fit(table.take(chunk_idx), rng=child)
            self.models_.append(model)
            self.chunk_sizes_.append(int(chunk_idx.size))
        return self

    def sample(self, n: int, rng=None) -> Table:
        """Draw ``n`` rows, proportionally to chunk sizes, and merge."""
        check_fitted(self, "models_")
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        rng = ensure_rng(rng if rng is not None else self.config.seed)
        total = sum(self.chunk_sizes_)
        counts = [int(round(n * size / total)) for size in self.chunk_sizes_]
        # Fix rounding drift on the largest chunk.
        counts[int(np.argmax(self.chunk_sizes_))] += n - sum(counts)
        parts = [
            model.sample(count, rng=child)
            for model, count, child in zip(
                self.models_, counts, spawn_rng(rng, len(self.models_))
            )
            if count > 0
        ]
        values = np.concatenate([part.values for part in parts], axis=0)
        merged = Table(values, parts[0].schema)
        return merged.take(rng.permutation(merged.n_rows))

    @property
    def train_seconds_(self) -> float:
        """Total training time across chunks (sequential execution)."""
        check_fitted(self, "models_")
        return float(sum(model.train_seconds_ for model in self.models_))
