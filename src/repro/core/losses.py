"""The three table-GAN losses (paper §4.2) and the EWMA feature statistics.

* original loss — the DCGAN adversarial loss (Eq. 1);
* information loss — first/second-order feature-statistic matching behind
  hinge thresholds (Eq. 2–4), computed from exponentially weighted moving
  averages of discriminator features (Algorithm 2 lines 10–13);
* classification loss — label/record consistency through the classifier
  network (Eq. 5).

Each helper returns ``(scalar_loss, gradient)`` pairs with gradients
already normalized per batch, ready to feed into layer ``backward`` calls.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import _as_float, sigmoid


class FeatureStats:
    """EWMA estimates of feature mean/std for real (X) and synthetic (Z) batches.

    Implements Algorithm 2 lines 4 and 10–13: all four statistics start at
    zero and are updated per mini-batch as ``s <- w*s + (1-w)*batch_stat``
    with w close to 1 (the paper uses 0.99).
    """

    def __init__(self, n_features: int, weight: float = 0.99):
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if not 0.0 <= weight < 1.0:
            raise ValueError(f"weight must be in [0, 1), got {weight}")
        self.weight = weight
        self.fx_mean = np.zeros(n_features)
        self.fx_sd = np.zeros(n_features)
        self.fz_mean = np.zeros(n_features)
        self.fz_sd = np.zeros(n_features)

    def update_real(self, features: np.ndarray) -> None:
        """Fold a real mini-batch's feature statistics into the X averages."""
        self.fold_real(features.mean(axis=0), features.std(axis=0))

    def update_synthetic(self, features: np.ndarray) -> None:
        """Fold a synthetic mini-batch's feature statistics into the Z averages."""
        self.fold_synthetic(features.mean(axis=0), features.std(axis=0))

    def fold_real(self, mean: np.ndarray, sd: np.ndarray) -> None:
        """One EWMA fold of precomputed real-batch statistics.

        Split out from :meth:`update_real` so a data-parallel worker can
        ship its shard's (mean, sd) vectors and the master can fold them
        in fixed shard order — the fold itself is bit-identical to the
        in-process update.
        """
        self.fx_mean = self.weight * self.fx_mean + (1 - self.weight) * mean
        self.fx_sd = self.weight * self.fx_sd + (1 - self.weight) * sd

    def fold_synthetic(self, mean: np.ndarray, sd: np.ndarray) -> None:
        """One EWMA fold of precomputed synthetic-batch statistics."""
        self.fz_mean = self.weight * self.fz_mean + (1 - self.weight) * mean
        self.fz_sd = self.weight * self.fz_sd + (1 - self.weight) * sd

    @property
    def l_mean(self) -> float:
        """L_mean = ||E[f_x] - E[f_G(z)]||_2 (Eq. 2)."""
        return float(np.linalg.norm(self.fx_mean - self.fz_mean))

    @property
    def l_sd(self) -> float:
        """L_sd = ||SD[f_x] - SD[f_G(z)]||_2 (Eq. 3)."""
        return float(np.linalg.norm(self.fx_sd - self.fz_sd))


def discriminator_loss(real_logits: np.ndarray, fake_logits: np.ndarray
                       ) -> tuple[float, np.ndarray, np.ndarray]:
    """L_orig^D: maximize log D(x) + log(1 - D(G(z))).

    Returns ``(loss, grad_real_logits, grad_fake_logits)`` for gradient
    *descent* (the maximization is folded into the sign).
    """
    real_logits = _as_float(real_logits)
    fake_logits = _as_float(fake_logits)
    p_real = sigmoid(real_logits)
    p_fake = sigmoid(fake_logits)
    eps = 1e-12
    loss = float(
        -np.mean(np.log(p_real + eps)) - np.mean(np.log(1.0 - p_fake + eps))
    )
    grad_real = (p_real - 1.0) / real_logits.size
    grad_fake = p_fake / fake_logits.size
    return loss, grad_real, grad_fake


def generator_adversarial_loss(fake_logits: np.ndarray, saturating: bool = False
                               ) -> tuple[float, np.ndarray]:
    """L_orig^G on the synthetic batch's discriminator logits.

    ``saturating=False`` (default) is the non-saturating -log D(G(z)) form
    every practical DCGAN uses; ``True`` is the literal minimization of
    log(1 - D(G(z))) from Eq. 1.
    """
    fake_logits = _as_float(fake_logits)
    p = sigmoid(fake_logits)
    eps = 1e-12
    if saturating:
        # d/dlogit log(1 - sigmoid(logit)) = -sigmoid(logit).
        loss = float(np.mean(np.log(1.0 - p + eps)))
        grad = -p / fake_logits.size
        return loss, grad
    loss = float(-np.mean(np.log(p + eps)))
    grad = (p - 1.0) / fake_logits.size
    return loss, grad


def information_loss(stats: FeatureStats, synthetic_features: np.ndarray,
                     delta_mean: float, delta_sd: float
                     ) -> tuple[float, np.ndarray]:
    """L_info^G = max(0, L_mean - δ_mean) + max(0, L_sd - δ_sd) (Eq. 4).

    Returns ``(loss, grad_wrt_synthetic_features)``.

    Loss values and hinge activation are computed from the stable EWMA
    statistics exactly as Algorithm 2 prescribes.  For the gradient, the
    current mini-batch's statistics stand in for the EWMA (they are its
    one-batch unbiased estimate): differentiating through the literal
    (1-w) EWMA contribution would scale gradients by 1-w = 0.01 and leave
    the information loss inert against the adversarial term.  Only hinge
    terms whose EWMA discrepancy exceeds δ contribute — that gating is the
    mechanism that makes δ a privacy knob.
    """
    batch = synthetic_features.shape[0]
    grad = np.zeros_like(synthetic_features)
    loss = 0.0

    diff_mean = stats.fz_mean - stats.fx_mean
    l_mean = float(np.linalg.norm(diff_mean))
    if l_mean > delta_mean:
        loss += l_mean - delta_mean
        if l_mean > 0:
            direction = diff_mean / l_mean
            grad += direction[None, :] / batch

    diff_sd = stats.fz_sd - stats.fx_sd
    l_sd = float(np.linalg.norm(diff_sd))
    if l_sd > delta_sd:
        loss += l_sd - delta_sd
        if l_sd > 0:
            direction_sd = diff_sd / l_sd
            batch_mean = synthetic_features.mean(axis=0)
            batch_sd = synthetic_features.std(axis=0)
            safe_sd = np.where(batch_sd > 1e-12, batch_sd, 1.0)
            dsd_df = (synthetic_features - batch_mean[None, :]) / (batch * safe_sd[None, :])
            grad += direction_sd[None, :] * dsd_df

    return float(loss), grad


def classification_loss(classifier_logits: np.ndarray, labels01: np.ndarray
                        ) -> tuple[float, np.ndarray, np.ndarray]:
    """L_class = E|l - sigmoid(C(record))| (Eq. 5).

    Returns ``(loss, grad_wrt_logits, grad_wrt_labels01)``; the latter is
    needed for the generator update, where the synthesized label itself is
    a function of the generator output.

    Both 1-D inputs (single label) and 2-D ``(batch, n_labels)`` inputs
    (the §4.2.3 multi-task extension, one sigmoid head per label) are
    supported; gradients keep the input shape except that 1-D logits come
    back as a ``(batch, 1)`` column ready for network backward calls.
    """
    classifier_logits = _as_float(classifier_logits)
    labels01 = _as_float(labels01)
    if classifier_logits.shape != labels01.shape:
        raise ValueError(
            f"shape mismatch: logits {classifier_logits.shape} vs labels {labels01.shape}"
        )
    p = sigmoid(classifier_logits)
    diff = labels01 - p
    loss = float(np.mean(np.abs(diff)))
    n = labels01.size
    sign = np.sign(diff)
    grad_logits = -sign * p * (1.0 - p) / n
    if grad_logits.ndim == 1:
        grad_logits = grad_logits.reshape(-1, 1)
    grad_labels = sign / n
    return loss, grad_logits, grad_labels
