"""Synthetic record generation from a trained generator (paper §4.3 end).

Generation is lightweight compared to training: sample latent vectors in
the unit hypercube, one generator forward pass per batch, convert the
output matrices back to records, and decode them into a schema-valid
:class:`~repro.data.table.Table`.
"""

from __future__ import annotations

import numpy as np

from repro.data.encoding import TableCodec
from repro.data.matrixizer import Matrixizer
from repro.data.table import Table
from repro.nn import Sequential
from repro.utils.rng import ensure_rng


class RecordSampler:
    """Draws synthetic records from a trained generator.

    Parameters
    ----------
    generator:
        Trained generator network.
    codec:
        Fitted :class:`TableCodec` (decodes [-1, 1] records to table values).
    matrixizer:
        The record/matrix converter used during training.
    latent_dim:
        Latent dimension the generator was built with.
    """

    def __init__(self, generator: Sequential, codec: TableCodec,
                 matrixizer: Matrixizer, latent_dim: int):
        if latent_dim <= 0:
            raise ValueError(f"latent_dim must be positive, got {latent_dim}")
        self.generator = generator
        self.codec = codec
        self.matrixizer = matrixizer
        self.latent_dim = latent_dim

    def sample_matrices(self, n: int, rng=None, batch_size: int = 256) -> np.ndarray:
        """Generate ``n`` raw record matrices (N, 1, d, d) in [-1, 1]."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        rng = ensure_rng(rng)
        chunks = []
        remaining = n
        while remaining > 0:
            batch = min(batch_size, remaining)
            z = rng.uniform(-1.0, 1.0, size=(batch, self.latent_dim))
            chunks.append(self.generator.forward(z, training=False))
            remaining -= batch
        return np.concatenate(chunks, axis=0)

    def sample_records(self, n: int, rng=None) -> np.ndarray:
        """Generate ``n`` encoded records (N, n_features) in [-1, 1]."""
        return self.matrixizer.to_records(self.sample_matrices(n, rng))

    def sample_table(self, n: int, rng=None) -> Table:
        """Generate ``n`` decoded, schema-valid synthetic rows."""
        return self.codec.decode(self.sample_records(n, rng))
