"""Synthetic record generation from a trained generator (paper §4.3 end).

Generation is lightweight compared to training: sample latent vectors in
the unit hypercube, one generator forward pass per batch, convert the
output matrices back to records, and decode them into a schema-valid
:class:`~repro.data.table.Table`.
"""

from __future__ import annotations

import numpy as np

from repro.data.encoding import TableCodec
from repro.data.matrixizer import Matrixizer
from repro.data.table import Table
from repro.nn import Sequential
from repro.utils.rng import ensure_rng


class RecordSampler:
    """Draws synthetic records from a trained generator.

    Parameters
    ----------
    generator:
        Trained generator network.
    codec:
        Fitted :class:`TableCodec` (decodes [-1, 1] records to table values).
    matrixizer:
        The record/matrix converter used during training.
    latent_dim:
        Latent dimension the generator was built with.
    batch_size:
        Default rows per generator forward pass.  The serving layer raises
        it to amortize per-call convolution overhead over large
        micro-batches; any ``sample_*`` call may override it per call.
    """

    def __init__(self, generator: Sequential, codec: TableCodec,
                 matrixizer: Matrixizer, latent_dim: int, batch_size: int = 256):
        if latent_dim <= 0:
            raise ValueError(f"latent_dim must be positive, got {latent_dim}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.generator = generator
        self.codec = codec
        self.matrixizer = matrixizer
        self.latent_dim = latent_dim
        self.batch_size = batch_size
        params = generator.parameters()
        self._dtype = params[0].data.dtype if params else np.dtype(np.float64)

    def sample_matrices(self, n: int, rng=None,
                        batch_size: int | None = None) -> np.ndarray:
        """Generate ``n`` raw record matrices (N, 1, d, d) in [-1, 1].

        The output is allocated once and filled batch by batch (no
        per-chunk concatenation); latent vectors are drawn in float64 and
        cast to the generator's compute dtype, so the record stream is
        identical across batch sizes and dtypes.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        batch_size = self.batch_size if batch_size is None else batch_size
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        rng = ensure_rng(rng)
        out: np.ndarray | None = None
        filled = 0
        stream = getattr(self.generator, "stream_forward", None)
        while filled < n:
            batch = min(batch_size, n - filled)
            z = rng.uniform(-1.0, 1.0, size=(batch, self.latent_dim))
            z = z.astype(self._dtype, copy=False)
            # Streamed inference keeps inter-layer activations cache-hot
            # on bulk batches; chunking is a pure function of the batch
            # size, so the record stream stays batch-size invariant.
            if stream is not None:
                matrices = stream(z)
            else:
                matrices = self.generator.forward(z, training=False)
            if out is None:
                out = np.empty((n, *matrices.shape[1:]), dtype=matrices.dtype)
            out[filled : filled + batch] = matrices
            filled += batch
        return out

    def matrices_from_latents(self, z: np.ndarray,
                              batch_size: int | None = None) -> np.ndarray:
        """Forward pre-drawn latents ``z`` (N, latent_dim) to record matrices.

        Replicates the :meth:`sample_matrices` chunk loop exactly — per
        chunk: slice, cast to the compute dtype, forward — so the output
        is bit-identical to ``sample_matrices`` fed the same latent draws.
        The multi-process serving tier uses this to keep latent sampling
        centralized (one seeded stream) while generation fans out.
        """
        if z.ndim != 2 or z.shape[1] != self.latent_dim:
            raise ValueError(
                f"z must have shape (n, {self.latent_dim}), got {z.shape}"
            )
        n = z.shape[0]
        if n <= 0:
            raise ValueError(f"z must contain at least one row, got {n}")
        batch_size = self.batch_size if batch_size is None else batch_size
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        out: np.ndarray | None = None
        filled = 0
        stream = getattr(self.generator, "stream_forward", None)
        while filled < n:
            batch = min(batch_size, n - filled)
            chunk = z[filled : filled + batch].astype(self._dtype, copy=False)
            if stream is not None:
                matrices = stream(chunk)
            else:
                matrices = self.generator.forward(chunk, training=False)
            if out is None:
                out = np.empty((n, *matrices.shape[1:]), dtype=matrices.dtype)
            out[filled : filled + batch] = matrices
            filled += batch
        return out

    def records_from_latents(self, z: np.ndarray,
                             batch_size: int | None = None) -> np.ndarray:
        """Encoded records (N, n_features) from pre-drawn latents."""
        return self.matrixizer.to_records(
            self.matrices_from_latents(z, batch_size=batch_size)
        )

    def sample_records(self, n: int, rng=None,
                       batch_size: int | None = None) -> np.ndarray:
        """Generate ``n`` encoded records (N, n_features) in [-1, 1]."""
        return self.matrixizer.to_records(
            self.sample_matrices(n, rng, batch_size=batch_size)
        )

    def sample_table(self, n: int, rng=None,
                     batch_size: int | None = None) -> Table:
        """Generate ``n`` decoded, schema-valid synthetic rows."""
        return self.codec.decode(self.sample_records(n, rng, batch_size=batch_size))
