"""The three table-GAN networks (paper §4.1, Figure 2).

All three follow DCGAN's architecture rules: strided convolutions instead
of pooling, batch normalization, ReLU in the generator, LeakyReLU in the
discriminator/classifier, no fully connected hidden layers except the
latent projection and the final logit.

The spatial ladder adapts to the record-matrix side ``d``:
``d -> d/2 -> ... -> 2`` in the discriminator (channels doubling), and the
mirror image in the generator.  The discriminator's flattened activations
before the final dense+sigmoid are registered as the ``"features"`` layer;
that is the vector the information loss (Eq. 2–3) statistics are computed
from.

Every builder takes the compute ``dtype`` (``TableGanConfig.np_dtype``)
and threads it through all parameters and running statistics, so each
network is dtype-homogeneous.  That is the property the fused optimizers
rely on: :meth:`Sequential.flatten_parameters` can materialize a whole
network as views into a single contiguous buffer and Adam updates it with
whole-buffer in-place ops (see :mod:`repro.nn.flatbuf` and
``docs/architecture.md``).
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm,
    Conv2D,
    ConvTranspose2D,
    Dense,
    Flatten,
    LeakyReLU,
    ReLU,
    Reshape,
    Sequential,
    Tanh,
)
from repro.utils.rng import ensure_rng

#: Name of the discriminator/classifier feature layer used by the info loss.
FEATURE_LAYER = "features"


def _n_stages(side: int) -> int:
    """Number of stride-2 stages taking ``side`` down to 2 (or up from 2)."""
    if side < 4 or side & (side - 1) != 0:
        raise ValueError(f"side must be a power of two >= 4, got {side}")
    stages = int(np.log2(side)) - 1
    return stages


def feature_width(side: int, base_channels: int) -> int:
    """Width of the discriminator's flattened feature vector."""
    stages = _n_stages(side)
    top_channels = base_channels * 2 ** (stages - 1)
    return top_channels * 2 * 2


def build_generator(side: int, latent_dim: int, base_channels: int, rng=None,
                    dtype=np.float64) -> Sequential:
    """DCGAN generator: latent z -> (1, side, side) record matrix in [-1, 1].

    The latent vector is projected to a 2×2 feature map and repeatedly
    doubled by transposed convolutions; the final layer outputs one channel
    through tanh.  ``dtype`` is the compute dtype of every parameter.
    """
    rng = ensure_rng(rng)
    stages = _n_stages(side)
    top_channels = base_channels * 2 ** (stages - 1)
    layers = [
        Dense(latent_dim, top_channels * 2 * 2, rng=rng, dtype=dtype),
        Reshape((top_channels, 2, 2)),
        BatchNorm(top_channels, dtype=dtype),
        ReLU(),
    ]
    channels = top_channels
    for stage in range(stages - 1):
        next_channels = channels // 2
        layers.append(ConvTranspose2D(channels, next_channels, rng=rng, dtype=dtype))
        layers.append(BatchNorm(next_channels, dtype=dtype))
        layers.append(ReLU())
        channels = next_channels
    layers.append(ConvTranspose2D(channels, 1, rng=rng, dtype=dtype))
    layers.append(Tanh())
    return Sequential(layers)


def build_discriminator(side: int, base_channels: int, rng=None,
                        n_outputs: int = 1, dtype=np.float64) -> Sequential:
    """DCGAN discriminator: record matrix -> real/synthetic logit.

    The flattened pre-logit activations are registered under
    :data:`FEATURE_LAYER`; the final dense layer produces a logit (the
    sigmoid of Figure 2 is folded into the loss for numerical stability).
    ``n_outputs > 1`` builds the multi-head variant used by the multi-label
    classifier (§4.2.3): heads share every intermediate layer.
    """
    rng = ensure_rng(rng)
    stages = _n_stages(side)
    layers = [
        Conv2D(1, base_channels, rng=rng, dtype=dtype),
        LeakyReLU(0.2),
    ]
    channels = base_channels
    for stage in range(stages - 1):
        next_channels = channels * 2
        layers.append(Conv2D(channels, next_channels, rng=rng, dtype=dtype))
        layers.append(BatchNorm(next_channels, dtype=dtype))
        layers.append(LeakyReLU(0.2))
        channels = next_channels
    layers.append((FEATURE_LAYER, Flatten()))
    layers.append(Dense(channels * 2 * 2, n_outputs, rng=rng, dtype=dtype))
    return Sequential(layers)


def build_classifier(side: int, base_channels: int, rng=None,
                     n_labels: int = 1, dtype=np.float64) -> Sequential:
    """Classifier network C — the same architecture as the discriminator (§4.1.3).

    With ``n_labels > 1`` this is the §4.2.3 multi-task extension: multiple
    sigmoid heads sharing all intermediate layers, one per label.
    """
    return build_discriminator(side, base_channels, rng=rng, n_outputs=n_labels,
                               dtype=dtype)


def build_generator_1d(length: int, latent_dim: int, base_channels: int,
                       rng=None, dtype=np.float64) -> Sequential:
    """1-D generator for the §3.2 record-layout ablation.

    Same ladder as :func:`build_generator`, but over (N, 1, L) vectors with
    1-D transposed convolutions — the "original vector format" alternative
    the paper found sub-optimal.
    """
    from repro.nn.conv1d import ConvTranspose1D

    rng = ensure_rng(rng)
    stages = _n_stages(length)
    top_channels = base_channels * 2 ** (stages - 1)
    layers = [
        Dense(latent_dim, top_channels * 2, rng=rng, dtype=dtype),
        Reshape((top_channels, 2)),
        BatchNorm(top_channels, dtype=dtype),
        ReLU(),
    ]
    channels = top_channels
    for stage in range(stages - 1):
        next_channels = channels // 2
        layers.append(ConvTranspose1D(channels, next_channels, rng=rng, dtype=dtype))
        layers.append(BatchNorm(next_channels, dtype=dtype))
        layers.append(ReLU())
        channels = next_channels
    layers.append(ConvTranspose1D(channels, 1, rng=rng, dtype=dtype))
    layers.append(Tanh())
    return Sequential(layers)


def build_discriminator_1d(length: int, base_channels: int, rng=None,
                           n_outputs: int = 1, dtype=np.float64) -> Sequential:
    """1-D discriminator for the §3.2 record-layout ablation."""
    from repro.nn.conv1d import Conv1D

    rng = ensure_rng(rng)
    stages = _n_stages(length)
    layers = [
        Conv1D(1, base_channels, rng=rng, dtype=dtype),
        LeakyReLU(0.2),
    ]
    channels = base_channels
    for stage in range(stages - 1):
        next_channels = channels * 2
        layers.append(Conv1D(channels, next_channels, rng=rng, dtype=dtype))
        layers.append(BatchNorm(next_channels, dtype=dtype))
        layers.append(LeakyReLU(0.2))
        channels = next_channels
    layers.append((FEATURE_LAYER, Flatten()))
    layers.append(Dense(channels * 2, n_outputs, rng=rng, dtype=dtype))
    return Sequential(layers)


def build_classifier_1d(length: int, base_channels: int, rng=None,
                        n_labels: int = 1, dtype=np.float64) -> Sequential:
    """1-D classifier — same architecture as the 1-D discriminator."""
    return build_discriminator_1d(length, base_channels, rng=rng, n_outputs=n_labels,
                                  dtype=dtype)
