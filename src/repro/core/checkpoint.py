"""Crash-safe training checkpoints: SIGTERM-and-resume without losing a batch.

Training runs for hours; the process hosting it does not always get to
finish.  This module makes the Algorithm 2 loop resumable to the *batch*:
a :class:`TrainerCheckpointer` periodically snapshots everything the loop
needs — network weights (including batch-norm running stats), the three
fused-Adam moment states, the EWMA feature statistics, the RNG stream,
the loss history, and the epoch/batch cursor (including the current
epoch's shuffle permutation and running loss sums) — into an atomically
written ``.npz`` next to the previous snapshot.

Resuming (:meth:`TrainerCheckpointer.restore`) replays none of the work:
weights, optimizer moments, and the RNG bit-generator state are restored
in place, and the loop continues from the saved cursor.  Because every
source of randomness flows through the one restored generator, a resumed
run is **bit-identical** to the uninterrupted one — the acceptance test
for this module compares final weights byte for byte.

Durability contract:

* every save is atomic (temp file + ``os.replace`` via
  :func:`repro.nn.serialization.atomic_savez`), so a crash mid-save never
  leaves a truncated archive at the checkpoint path;
* the previous checkpoint is rotated to ``checkpoint-prev.npz`` before
  the new one lands, so a *corrupted* latest (torn disk, bad sector)
  falls back to the previous snapshot instead of aborting the resume;
* ``SIGTERM`` handling is cooperative: the CLI's handler calls
  :meth:`~TrainerCheckpointer.request_stop`, the loop finishes its
  current batch, saves, and raises :class:`TrainingInterrupted` — the
  process exits with a resumable checkpoint, never a half-applied
  optimizer step.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from repro.nn.serialization import (
    atomic_savez,
    load_state_dict,
    state_dict,
)


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be used (corrupt pair, wrong run)."""


class TrainingInterrupted(RuntimeError):
    """Training stopped cooperatively at a checkpoint (e.g. on SIGTERM).

    The checkpoint at :attr:`path` resumes the run exactly where it
    stopped.
    """

    def __init__(self, path: str, epoch: int, batch_start: int):
        super().__init__(
            f"training interrupted at epoch {epoch}, batch offset "
            f"{batch_start}; resume from {path}"
        )
        self.path = path
        self.epoch = epoch
        self.batch_start = batch_start


class Cursor:
    """Where a restored run continues: epoch, batch offset, epoch state."""

    __slots__ = ("epoch", "batch_start", "perm", "sums", "n_batches")

    def __init__(self, epoch: int, batch_start: int, perm: np.ndarray | None,
                 sums: np.ndarray, n_batches: int):
        self.epoch = epoch
        self.batch_start = batch_start
        self.perm = perm
        self.sums = sums
        self.n_batches = n_batches


def _rng_state_array(rng) -> np.ndarray:
    """Serialize a numpy Generator's bit-generator state as a JSON scalar."""
    return np.array(json.dumps(rng.bit_generator.state))


def _restore_rng_state(rng, raw) -> None:
    rng.bit_generator.state = json.loads(str(raw[()]))


class TrainerCheckpointer:
    """Periodic, atomic, rotated snapshots of a training run.

    Parameters
    ----------
    directory:
        Where ``checkpoint-latest.npz`` / ``checkpoint-prev.npz`` live
        (created if missing).
    every_batches:
        Save every N mini-batches; 0 saves only at epoch boundaries.
        Epoch-end saves always happen regardless of this setting.
    """

    LATEST = "checkpoint-latest.npz"
    PREV = "checkpoint-prev.npz"

    def __init__(self, directory, every_batches: int = 0):
        if every_batches < 0:
            raise ValueError(
                f"every_batches must be non-negative, got {every_batches}"
            )
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.every_batches = every_batches
        self.saves = 0
        self.total_save_s = 0.0
        self._batches_since = 0
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Paths / stop flag.
    # ------------------------------------------------------------------
    @property
    def latest_path(self) -> str:
        return os.path.join(self.directory, self.LATEST)

    @property
    def prev_path(self) -> str:
        return os.path.join(self.directory, self.PREV)

    def request_stop(self) -> None:
        """Ask the loop to checkpoint and exit after the current batch.

        Safe to call from a signal handler (sets an event, nothing more).
        """
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    # Saving.
    # ------------------------------------------------------------------
    def _fingerprint(self, trainer) -> str:
        config = trainer.config
        # Worker count is deliberately absent: the data-parallel trainer's
        # result is a pure function of (data, config, schedule, shard
        # count), so a checkpoint taken at N=4 workers resumes bit-exactly
        # at N=2.  The shard count and schedule *do* change the numbers
        # and therefore do fingerprint (0 shards = the serial loop).
        return json.dumps({
            "epochs": config.epochs,
            "batch_size": config.batch_size,
            "dtype": np.dtype(trainer._dtype).name,
            "classifier": trainer.opt_c is not None,
            "schedule": list(trainer.schedule.ops),
            "grad_shards": getattr(trainer, "grad_shards", 0),
        }, sort_keys=True)

    def save(self, trainer, rng, *, epoch: int, batch_start: int,
             perm: np.ndarray | None, sums: np.ndarray | None,
             n_batches: int, history, n_rows: int) -> str:
        """Write one snapshot, rotating the previous latest to ``prev``."""
        payload: dict[str, np.ndarray] = {
            "meta.version": np.array([1], dtype=np.int64),
            "meta.config": np.array(self._fingerprint(trainer)),
            "cursor.epoch": np.array([epoch], dtype=np.int64),
            "cursor.batch_start": np.array([batch_start], dtype=np.int64),
            "cursor.n_batches": np.array([n_batches], dtype=np.int64),
            "cursor.n_rows": np.array([n_rows], dtype=np.int64),
            "cursor.sums": (np.zeros(5) if sums is None
                            else np.asarray(sums, dtype=np.float64)),
            "rng.state": _rng_state_array(rng),
            "hist.epochs": np.array(
                [[e.d_loss, e.g_adv_loss, e.g_info_loss, e.g_class_loss,
                  e.c_loss] for e in history.epochs],
                dtype=np.float64,
            ).reshape(len(history.epochs), 5),
        }
        if perm is not None:
            payload["cursor.perm"] = np.asarray(perm, dtype=np.int64)
        stats = trainer.stats
        payload["stats.weight"] = np.array([stats.weight])
        for name in ("fx_mean", "fx_sd", "fz_mean", "fz_sd"):
            payload[f"stats.{name}"] = np.asarray(getattr(stats, name),
                                                  dtype=np.float64)
        for tag, net in (("g", trainer.generator),
                         ("d", trainer.discriminator),
                         ("c", trainer.classifier)):
            if net is None:
                continue
            for key, value in state_dict(net).items():
                payload[f"net.{tag}.{key}"] = value
        for tag, opt in (("g", trainer.opt_g), ("d", trainer.opt_d),
                         ("c", trainer.opt_c)):
            if opt is None:
                continue
            for key, value in opt.state_dict().items():
                payload[f"opt.{tag}.{key}"] = value

        started = time.perf_counter()
        if os.path.exists(self.latest_path):
            # Rotate before the new write: if the process dies mid-save,
            # prev still holds a complete snapshot.
            os.replace(self.latest_path, self.prev_path)
        path = atomic_savez(self.latest_path, **payload)
        self.total_save_s += time.perf_counter() - started
        self.saves += 1
        return path

    # ------------------------------------------------------------------
    # Trainer hooks.
    # ------------------------------------------------------------------
    def on_batch(self, trainer, rng, *, epoch: int, next_start: int,
                 perm: np.ndarray, sums: np.ndarray, n_batches: int,
                 history, n_rows: int) -> None:
        """Called by the loop after every mini-batch."""
        self._batches_since += 1
        due = bool(self.every_batches
                   and self._batches_since >= self.every_batches)
        if due or self._stop.is_set():
            self.save(trainer, rng, epoch=epoch, batch_start=next_start,
                      perm=perm, sums=sums, n_batches=n_batches,
                      history=history, n_rows=n_rows)
            self._batches_since = 0
        if self._stop.is_set():
            raise TrainingInterrupted(self.latest_path, epoch, next_start)

    def on_epoch(self, trainer, rng, *, epoch: int, history,
                 n_rows: int) -> None:
        """Called by the loop after each epoch's bookkeeping completes."""
        # The cursor points at the *next* epoch, with no mid-epoch state.
        self.save(trainer, rng, epoch=epoch + 1, batch_start=0, perm=None,
                  sums=None, n_batches=0, history=history, n_rows=n_rows)
        self._batches_since = 0
        if self._stop.is_set():
            raise TrainingInterrupted(self.latest_path, epoch + 1, 0)

    # ------------------------------------------------------------------
    # Restoring.
    # ------------------------------------------------------------------
    @staticmethod
    def _read_payload(path: str) -> dict | None:
        """Load one archive; None when missing or unreadable (corrupt)."""
        if not os.path.exists(path):
            return None
        try:
            with np.load(path) as archive:
                return {key: archive[key] for key in archive.files}
        except Exception:  # noqa: BLE001 — torn/corrupt file == no file
            return None

    def load_payload(self) -> dict | None:
        """The newest readable snapshot (latest, else prev), or None.

        Raises :class:`CheckpointError` when checkpoint files exist but
        none of them is readable — resuming was requested and silently
        restarting from scratch would discard that intent.
        """
        payload = self._read_payload(self.latest_path)
        if payload is not None:
            return payload
        payload = self._read_payload(self.prev_path)
        if payload is not None:
            return payload
        if os.path.exists(self.latest_path) or os.path.exists(self.prev_path):
            raise CheckpointError(
                f"checkpoints in {self.directory} exist but none is "
                "readable (latest and prev both corrupt)"
            )
        return None

    def restore(self, trainer, rng, history, n_rows: int) -> Cursor | None:
        """Load the newest snapshot into ``trainer``/``rng``/``history``.

        Returns the :class:`Cursor` to continue from, or None when no
        checkpoint exists.  Raises :class:`CheckpointError` when the
        snapshot belongs to a different run (config fingerprint or row
        count mismatch).
        """
        payload = self.load_payload()
        if payload is None:
            return None
        saved_fp = str(payload["meta.config"][()])
        if saved_fp != self._fingerprint(trainer):
            raise CheckpointError(
                "checkpoint belongs to a different training configuration: "
                f"saved {saved_fp}, current {self._fingerprint(trainer)}"
            )
        saved_rows = int(payload["cursor.n_rows"][0])
        if saved_rows != n_rows:
            raise CheckpointError(
                f"checkpoint was taken on {saved_rows} training rows, "
                f"current data has {n_rows}"
            )

        def extract(prefix: str) -> dict[str, np.ndarray]:
            return {key[len(prefix):]: value
                    for key, value in payload.items()
                    if key.startswith(prefix)}

        load_state_dict(trainer.generator, extract("net.g."))
        load_state_dict(trainer.discriminator, extract("net.d."))
        if trainer.classifier is not None:
            load_state_dict(trainer.classifier, extract("net.c."))
        trainer.opt_g.load_state_dict(extract("opt.g."))
        trainer.opt_d.load_state_dict(extract("opt.d."))
        if trainer.opt_c is not None:
            trainer.opt_c.load_state_dict(extract("opt.c."))
        stats = trainer.stats
        for name in ("fx_mean", "fx_sd", "fz_mean", "fz_sd"):
            setattr(stats, name, payload[f"stats.{name}"].copy())
        _restore_rng_state(rng, payload["rng.state"])

        # Rebuild the loss history up to the snapshot.
        from repro.core.trainer import EpochLosses

        history.epochs.clear()
        for row in payload["hist.epochs"]:
            history.append(EpochLosses(*[float(v) for v in row]))

        perm = payload.get("cursor.perm")
        return Cursor(
            epoch=int(payload["cursor.epoch"][0]),
            batch_start=int(payload["cursor.batch_start"][0]),
            perm=None if perm is None else perm.astype(np.intp, copy=False),
            sums=payload["cursor.sums"].astype(np.float64, copy=True),
            n_batches=int(payload["cursor.n_batches"][0]),
        )
