"""table-GAN configuration and the paper's privacy presets.

The two hinge thresholds δ_mean and δ_sd (Eq. 4) are the privacy knob:
δ = 0 trains for maximum fidelity (low privacy), larger δ deliberately
stops the information loss from refining synthesis once the feature-space
discrepancy drops below the threshold (high privacy).  §5.1.5 defines the
presets reproduced by :func:`low_privacy` / :func:`mid_privacy` /
:func:`high_privacy`.

The dtype contract
------------------

``TableGanConfig.dtype`` is the single source of truth for the compute
dtype of a training run.  It is threaded from here through the network
builders (every parameter, bias, and batch-norm running statistic), the
trainer (latent samples, shuffled batches, loss buffers), and the sampler,
so one run never mixes precisions.  ``"float32"`` (the default) halves
memory traffic through the convolution engine and enables the
float32-specialized fused kernels (single-pass batch-norm statistics,
strided col2im accumulation); ``"float64"`` selects the bit-identical
kernel variants and therefore reproduces the seed numerics exactly — that
is the dtype the fast-vs-reference equivalence tests pin down to the last
bit.  See ``docs/architecture.md`` for the full dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class TableGanConfig:
    """Hyper-parameters of table-GAN training.

    Parameters
    ----------
    delta_mean, delta_sd:
        Hinge thresholds of the information loss (the privacy knob).
    epochs:
        Training epochs (paper: 25).
    batch_size:
        Mini-batch size.
    latent_dim:
        Dimension of the uniform latent vector z (paper: 100).
    base_channels:
        Channel count of the first discriminator conv layer; deeper layers
        double it, mirroring DCGAN.
    lr, beta1:
        Adam settings (DCGAN defaults: 2e-4, 0.5).
    ewma_weight:
        Weight w of the moving-average feature statistics (paper: 0.99).
    use_info_loss, use_classifier:
        Ablation switches; disabling both reduces table-GAN to the DCGAN
        baseline of the paper's experiments.
    saturating_generator_loss:
        If True, minimize log(1 - D(G(z))) literally (Eq. 1); the default
        False uses the standard non-saturating -log D(G(z)) form, which is
        what DCGAN implementations (and the paper's TensorFlow code) train
        with in practice.
    generator_updates:
        Generator steps per discriminator step.  DCGAN-family codebases
        (including the original tableGAN release) run the generator twice
        per iteration to stop the discriminator loss collapsing to zero.
    side:
        Optional override of the square-matrix side d (default: smallest
        power of two fitting the attribute count).
    layout:
        ``"square"`` (default, the paper's d×d record matrices) or
        ``"vector"`` — the §3.2 alternative that keeps records in their
        original 1-D form and applies 1-D convolutions, which the paper
        reports as sub-optimal; included for the reproducible ablation.
    label_columns:
        Optional tuple of column names for the §4.2.3 multi-label
        extension: the classifier grows one sigmoid head per named column,
        all sharing intermediate layers.  ``None`` (default) uses the
        schema's single label column.
    dtype:
        Compute dtype of the three networks and the training pipeline:
        ``"float32"`` (default) or ``"float64"``.  float32 halves memory
        traffic through the conv engine with no measurable effect on
        synthesis quality; float64 reproduces the seed numerics exactly.
    seed:
        Seed for weight init, latent sampling, and shuffling.
    """

    delta_mean: float = 0.0
    delta_sd: float = 0.0
    epochs: int = 25
    batch_size: int = 64
    latent_dim: int = 100
    base_channels: int = 32
    lr: float = 2e-4
    beta1: float = 0.5
    ewma_weight: float = 0.99
    use_info_loss: bool = True
    use_classifier: bool = True
    saturating_generator_loss: bool = False
    generator_updates: int = 2
    side: int | None = None
    layout: str = "square"
    label_columns: tuple = None
    dtype: str = "float32"
    seed: int | None = None

    @property
    def np_dtype(self) -> np.dtype:
        """The compute dtype as a ``np.dtype`` object."""
        return np.dtype(self.dtype)

    def __post_init__(self):
        if self.delta_mean < 0 or self.delta_sd < 0:
            raise ValueError("hinge thresholds must be non-negative")
        if self.epochs <= 0 or self.batch_size <= 0 or self.latent_dim <= 0:
            raise ValueError("epochs, batch_size and latent_dim must be positive")
        if self.generator_updates <= 0:
            raise ValueError("generator_updates must be positive")
        if self.layout not in ("square", "vector"):
            raise ValueError(f"layout must be 'square' or 'vector', got {self.layout!r}")
        if self.label_columns is not None:
            object.__setattr__(self, "label_columns", tuple(self.label_columns))
            if not self.label_columns:
                raise ValueError("label_columns must be None or non-empty")
        if not 0.0 <= self.ewma_weight < 1.0:
            raise ValueError(f"ewma_weight must be in [0, 1), got {self.ewma_weight}")
        try:
            name = np.dtype(self.dtype).name
        except TypeError as exc:
            raise ValueError(f"invalid dtype {self.dtype!r}") from exc
        if name not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        object.__setattr__(self, "dtype", name)

    def with_overrides(self, **kwargs) -> "TableGanConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


def low_privacy(**overrides) -> TableGanConfig:
    """δ_mean = δ_sd = 0 — highest fidelity (paper's low-privacy setting)."""
    return TableGanConfig(delta_mean=0.0, delta_sd=0.0, **overrides)


def mid_privacy(**overrides) -> TableGanConfig:
    """δ_mean = δ_sd = 0.1 — the mid-privacy setting of Table 6."""
    return TableGanConfig(delta_mean=0.1, delta_sd=0.1, **overrides)


def high_privacy(**overrides) -> TableGanConfig:
    """δ_mean = δ_sd = 0.2 — the high-privacy setting (§5.1.5)."""
    return TableGanConfig(delta_mean=0.2, delta_sd=0.2, **overrides)


def dcgan_baseline(**overrides) -> TableGanConfig:
    """Information loss and classifier disabled: the DCGAN baseline."""
    return TableGanConfig(use_info_loss=False, use_classifier=False, **overrides)
