"""The TableGAN facade: fit on a Table, sample a synthetic Table.

This is the library's primary public API.  It wires together the encoding
pipeline (TableCodec + Matrixizer), the three networks, the Algorithm 2
trainer, and the record sampler::

    from repro import TableGAN, low_privacy
    from repro.data.datasets import load_dataset

    bundle = load_dataset("lacity", seed=7)
    gan = TableGAN(low_privacy(epochs=5, seed=7))
    gan.fit(bundle.train)
    synthetic = gan.sample(len(bundle.train))
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import TableGanConfig
from repro.core.networks import (
    build_classifier,
    build_classifier_1d,
    build_discriminator,
    build_discriminator_1d,
    build_generator,
    build_generator_1d,
)
from repro.core.sampler import RecordSampler
from repro.core.trainer import TableGanTrainer, TrainingHistory
from repro.data.encoding import TableCodec
from repro.data.matrixizer import (
    Matrixizer,
    Vectorizer,
    length_for_features,
    side_for_features,
)
from repro.data.table import Table
from repro.nn import atomic_savez, load_state_dict, sigmoid, state_dict
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


def build_generator_for(config: TableGanConfig, side: int, rng=None,
                        dtype=None):
    """A fresh generator matching ``config``'s layout at matrix side ``side``.

    ``dtype`` overrides ``config.dtype`` (used when restoring weights that
    were saved in a different precision).  Shared by :meth:`TableGAN.
    load_generator` and the serving-layer model registry, so every path
    that rebuilds a generator from persisted state constructs the same
    architecture.
    """
    dtype = config.np_dtype if dtype is None else np.dtype(dtype)
    rng = ensure_rng(rng if rng is not None else config.seed)
    if config.layout == "vector":
        return build_generator_1d(side, config.latent_dim, config.base_channels,
                                  rng, dtype=dtype)
    return build_generator(side, config.latent_dim, config.base_channels,
                           rng, dtype=dtype)


def matrixizer_for(config: TableGanConfig, n_features: int, side: int):
    """The record/matrix converter matching ``config``'s layout."""
    if config.layout == "vector":
        return Vectorizer(n_features, length=side)
    return Matrixizer(n_features, side=side)


class TableGAN:
    """End-to-end table synthesizer (the paper's contribution).

    Parameters
    ----------
    config:
        Training configuration; see :mod:`repro.core.config` for the
        low/mid/high-privacy presets.
    """

    def __init__(self, config: TableGanConfig | None = None):
        self.config = config or TableGanConfig()
        self.codec_: TableCodec | None = None
        self.matrixizer_: Matrixizer | None = None
        self.generator_ = None
        self.discriminator_ = None
        self.classifier_ = None
        self.history_: TrainingHistory | None = None
        self.train_seconds_: float | None = None
        self._sampler: RecordSampler | None = None

    def fit(self, table: Table, rng=None, on_epoch_end=None,
            checkpointer=None, workers: int | None = None,
            grad_shards: int = 4) -> "TableGAN":
        """Train on ``table`` and return self.

        Parameters
        ----------
        table:
            The original table to learn.
        rng:
            Seed or generator (falls back to ``config.seed``).
        on_epoch_end:
            Optional per-epoch callback forwarded to the trainer.
        checkpointer:
            Optional :class:`~repro.core.checkpoint.TrainerCheckpointer`
            forwarded to the trainer: restores the newest snapshot before
            training and saves periodically (crash-safe ``--resume``).
        workers:
            ``None`` (default) runs the serial trainer.  An integer selects
            the data-parallel trainer (:mod:`repro.core.parallel`) with
            that many processes — whose result is bit-identical for every
            worker count, including 1, but not to the serial loop (the
            shard decomposition, not the worker count, is what changes the
            numbers).
        grad_shards:
            Gradient shards per global batch for the data-parallel
            trainer; ignored when ``workers`` is ``None``.
        """
        config = self.config
        rng = ensure_rng(rng if rng is not None else config.seed)
        started = time.perf_counter()
        self._sampler = None
        dtype = config.np_dtype

        self.codec_ = TableCodec().fit(table)
        encoded = self.codec_.encode(table)
        if config.layout == "vector":
            side = config.side or length_for_features(table.n_columns)
            self.matrixizer_ = Vectorizer(table.n_columns, length=side)
            self.generator_ = build_generator_1d(
                side, config.latent_dim, config.base_channels, rng, dtype=dtype
            )
            self.discriminator_ = build_discriminator_1d(
                side, config.base_channels, rng, dtype=dtype
            )
            build_c = build_classifier_1d
        else:
            side = config.side or side_for_features(table.n_columns)
            self.matrixizer_ = Matrixizer(table.n_columns, side=side)
            self.generator_ = build_generator(
                side, config.latent_dim, config.base_channels, rng, dtype=dtype
            )
            self.discriminator_ = build_discriminator(
                side, config.base_channels, rng, dtype=dtype
            )
            build_c = build_classifier
        matrices = self.matrixizer_.to_matrices(encoded)

        if config.label_columns is not None:
            label_names = list(config.label_columns)
        elif table.schema.label is not None:
            label_names = [table.schema.label]
        else:
            label_names = []
        use_classifier = config.use_classifier and bool(label_names)
        label_cell = None
        if use_classifier:
            self.classifier_ = build_c(
                side, config.base_channels, rng, n_labels=len(label_names),
                dtype=dtype,
            )
            label_cell = [
                self.matrixizer_.feature_position(table.schema.index(name))
                for name in label_names
            ]
        else:
            self.classifier_ = None

        effective = config if use_classifier else config.with_overrides(use_classifier=False)
        if workers is None:
            trainer = TableGanTrainer(
                self.generator_, self.discriminator_, self.classifier_,
                effective, label_cell=label_cell,
            )
        else:
            from repro.core.parallel import ParallelTrainer

            trainer = ParallelTrainer(
                self.generator_, self.discriminator_, self.classifier_,
                effective, label_cell=label_cell, workers=workers,
                grad_shards=grad_shards,
            )
        self.history_ = trainer.train(matrices, rng=rng,
                                      on_epoch_end=on_epoch_end,
                                      checkpointer=checkpointer)
        self.train_seconds_ = time.perf_counter() - started
        return self

    @classmethod
    def from_parts(cls, config: TableGanConfig, codec: TableCodec,
                   matrixizer, generator) -> "TableGAN":
        """Assemble a sample-ready TableGAN from restored components.

        This is the constructor the serving layer's model registry uses: it
        rebuilds codec, matrixizer, and generator from persisted artifacts
        (no training table required) and gets back an object whose
        ``sample``/``sample_encoded`` behave exactly like the originally
        fitted model's.
        """
        gan = cls(config)
        gan.codec_ = codec
        gan.matrixizer_ = matrixizer
        gan.generator_ = generator
        return gan

    def record_sampler(self) -> RecordSampler:
        """The cached :class:`RecordSampler` (public serving-layer surface)."""
        return self._get_sampler()

    def _get_sampler(self) -> RecordSampler:
        """The cached :class:`RecordSampler` for the fitted generator.

        Built lazily on first use and invalidated whenever the generator
        changes (:meth:`fit`, :meth:`load_generator`), so repeated
        ``sample``/``sample_encoded`` calls reuse one sampler instead of
        rebuilding it per call.
        """
        check_fitted(self, "generator_")
        if self._sampler is None or self._sampler.generator is not self.generator_:
            self._sampler = RecordSampler(
                self.generator_, self.codec_, self.matrixizer_,
                self.config.latent_dim,
            )
        return self._sampler

    def sample(self, n: int, rng=None) -> Table:
        """Draw ``n`` synthetic rows as a schema-valid Table."""
        sampler = self._get_sampler()
        rng = ensure_rng(rng if rng is not None else self.config.seed)
        return sampler.sample_table(n, rng)

    def sample_encoded(self, n: int, rng=None) -> np.ndarray:
        """Draw ``n`` synthetic records in the encoded [-1, 1] space."""
        sampler = self._get_sampler()
        rng = ensure_rng(rng if rng is not None else self.config.seed)
        return sampler.sample_records(n, rng)

    def discriminator_scores(self, table: Table) -> np.ndarray:
        """D's probability-of-real for each row of ``table``.

        This is the black-box surface the membership attack queries on
        shadow models (§4.5 step 4).  Scores are computed with the shared
        stable sigmoid (no clipping needed) and returned in float64.
        """
        check_fitted(self, "discriminator_")
        encoded = self.codec_.encode(table)
        matrices = self.matrixizer_.to_matrices(encoded).astype(
            self.config.np_dtype, copy=False
        )
        logits = self.discriminator_.forward(matrices, training=False).ravel()
        return sigmoid(logits.astype(np.float64))

    def save(self, path) -> None:
        """Persist generator weights plus codec state to ``path`` (.npz).

        The write is atomic (temp file + ``os.replace``), so an interrupted
        save never leaves a truncated archive behind.
        """
        check_fitted(self, "generator_")
        payload = {f"gen.{k}": v for k, v in state_dict(self.generator_).items()}
        payload["meta.side"] = np.array([self.matrixizer_.side])
        payload["meta.n_features"] = np.array([self.matrixizer_.n_features])
        mins = np.array([c.data_min_ for c in self.codec_.codecs_])
        maxs = np.array([c.data_max_ for c in self.codec_.codecs_])
        payload["meta.col_min"] = mins
        payload["meta.col_max"] = maxs
        atomic_savez(path, **payload)

    def load_generator(self, path, table: Table) -> "TableGAN":
        """Load generator weights saved by :meth:`save`.

        ``table`` supplies the schema; its values re-fit the codec, then the
        saved column ranges overwrite the fitted ones so decoding matches
        training-time scaling exactly.
        """
        with np.load(path) as archive:
            side = int(archive["meta.side"][0])
            n_features = int(archive["meta.n_features"][0])
            if n_features != table.n_columns:
                raise ValueError(
                    f"saved model has {n_features} features, table has {table.n_columns}"
                )
            self.codec_ = TableCodec().fit(table)
            self._sampler = None
            for codec, lo, hi in zip(
                self.codec_.codecs_, archive["meta.col_min"], archive["meta.col_max"]
            ):
                codec.data_min_ = float(lo)
                codec.data_max_ = float(hi)
            gen_state = {
                k[len("gen."):]: v for k, v in archive.items() if k.startswith("gen.")
            }
            # Rebuild the generator at the dtype the weights were saved in
            # (seed-era archives are float64): loading into the config
            # dtype would silently truncate the persisted model.
            dtypes = {
                v.dtype for v in gen_state.values()
                if np.issubdtype(v.dtype, np.floating)
            }
            saved_dtype = dtypes.pop() if len(dtypes) == 1 else np.dtype(np.float64)
            self.matrixizer_ = matrixizer_for(self.config, n_features, side)
            self.generator_ = build_generator_for(self.config, side,
                                                  dtype=saved_dtype)
            load_state_dict(self.generator_, gen_state)
        return self
