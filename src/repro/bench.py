"""Training-engine benchmark (``python -m repro bench``).

Times the hot paths of the compute substrate — Conv2D forward/backward,
ConvTranspose2D forward, fused BatchNorm forward/backward, one fused Adam
step over a discriminator's parameters, and one full table-GAN training
epoch on a synthetic 16×16 workload — twice each:

* **engine**: the fast kernels (blocked batch-major stride-trick
  im2col/col2im over batch-free memoized plans, fused single-pass
  BatchNorm statistics with GEMV channel reductions, flat-buffer Adam)
  in the default float32 compute dtype;
* **reference**: the retained seed idioms (fancy-index gather +
  ``np.add.at`` scatter in the seed's position-major column layout,
  separate mean/var BatchNorm passes, per-parameter optimizer loops — all
  forced via :func:`repro.nn.reference_kernels`) in float64 — i.e. what
  every training step cost before the engine.

A third section, **synthesis**, measures the serving layer's throughput
(rows/sec) on the same generator three ways: per-request sampling (one
tiny forward per request), the micro-batched :class:`~repro.serve.service.
SynthesisService` (all requests coalesced into one forward), and the
sharded :class:`~repro.serve.sharding.ShardedSampler` across a worker
pool — which also asserts that 1-worker and N-worker outputs are
bit-identical.  A fourth, **large_batch**, sweeps generator-forward
throughput over batch sizes on the streamed serving path — the curve the
blocked engine keeps flat (``flat_beyond_256``).  A fifth, **serving**,
is an end-to-end load test of the long-lived HTTP server
(:mod:`repro.serve.server`): concurrent :class:`~repro.serve.server.
client.SynthesisClient` processes fire small requests at three live
server configurations — the per-request baseline, pure cross-request
coalescing, and the default coalescing+pool server — recording
aggregate rows/sec and p50/p99 latency; ``coalesce_speedup`` (default
config vs baseline) is the headline number,
``pure_coalesce_speedup`` isolates the batcher.  Quick mode *skips* the
serving load generator (it boots real sockets and threads — not smoke
material) and says so in the report's ``serving.log`` field, so the
truncation is explicit rather than silent.  A sixth, **resilience**,
prices the fault-tolerance layer: the disarmed fault-hook traversal
(nanoseconds), worker-crash recovery time under an injected
``batcher.tick`` fault, throughput degraded by crash/restart cycles
versus healthy, and the per-snapshot cost of crash-safe training
checkpoints.  A seventh, **training**, sweeps data-parallel training
(:class:`~repro.core.parallel.ParallelTrainer`) over worker counts,
recording epoch seconds, speedup vs serial, the visible core count, and
whether the final weights stayed bit-identical across worker counts —
the N-invariance contract the determinism test tier guards.  The core
count matters for reading the numbers: on a single-core container the
multi-worker rows price synchronization overhead, not speedup, and the
report says so in ``training.log`` instead of inventing a number.
An eighth, **telemetry**, prices the observability layer
(:mod:`repro.obs`): the disarmed trace-span seam and a bound counter
increment (nanoseconds), the armed span cost, and armed-vs-disarmed
ratios for a serving submit loop and a training epoch — the numbers
behind the "near-zero until armed" claim, gated by ``--check``.

Results are written as ``BENCH_engine.json`` so speedups are trackable
across commits; ``docs/benchmarks.md`` explains how to read the report and
records the trajectory.  The standalone runner lives at
``benchmarks/bench_engine.py``.  ``--quick`` selects a scaled-down
workload with few repeats — a smoke mode the test suite runs so the
benchmark code paths cannot silently rot — and ``--check`` turns the run
into the CI regression tripwire (:func:`check_report`).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

import numpy as np

from repro.core.config import TableGanConfig
from repro.core.networks import build_classifier, build_discriminator, build_generator
from repro.core.parallel import ParallelTrainer
from repro.core.tablegan import TableGAN, build_generator_for, matrixizer_for
from repro.core.trainer import TableGanTrainer
from repro.data.encoding import TableCodec
from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.nn import (
    Adam,
    BatchNorm,
    Conv2D,
    ConvTranspose2D,
    clear_plan_cache,
    reference_kernels,
    state_dict,
)
from repro.nn.batchnorm import reference_batchnorm
from repro.nn.im2col import clear_workspaces, reference_ops
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    ModelRegistry,
    ShardedSampler,
    SynthesisClient,
    SynthesisServer,
    SynthesisService,
)

#: The synthetic 16×16 benchmark workload (≈ the quickstart scale, but with
#: the deeper conv ladder a 16-sided record matrix exercises).
WORKLOAD = {
    "records": 256,
    "side": 16,
    "batch_size": 64,
    "base_channels": 32,
    "conv_batch": 64,
    "conv_in_channels": 16,
    "conv_out_channels": 32,
    "bn_batch": 64,
    "bn_channels": 64,
    "bn_side": 8,
    "synth_requests": 128,
    "synth_request_rows": 8,
    "synth_sharded_rows": 8192,
    "synth_shard_rows": 1024,
    "synth_workers": 2,
    "large_batch_rows": [64, 256, 1024, 4096, 8192],
    "serving_clients": 8,
    "serving_requests_per_client": 64,
    "serving_request_rows": 8,
    "serving_side": 8,
    "serving_base_channels": 64,
    "serving_pool_rows": 512,
    "serving_passes": 3,
    "resilience_requests": 64,
    "resilience_request_rows": 8,
    "resilience_crashes": 4,
    "training_workers": [1, 2, 4],
    "telemetry_requests": 64,
    "telemetry_request_rows": 8,
}

#: Scaled-down workload for ``--quick`` smoke runs (seconds, not minutes).
QUICK_WORKLOAD = {
    "records": 64,
    "side": 8,
    "batch_size": 32,
    "base_channels": 8,
    "conv_batch": 8,
    "conv_in_channels": 4,
    "conv_out_channels": 8,
    "bn_batch": 16,
    "bn_channels": 8,
    "bn_side": 4,
    "synth_requests": 16,
    "synth_request_rows": 4,
    "synth_sharded_rows": 256,
    "synth_shard_rows": 64,
    "synth_workers": 2,
    "large_batch_rows": [16, 64, 256],
    "resilience_requests": 16,
    "resilience_request_rows": 4,
    "resilience_crashes": 2,
    "training_workers": [1, 2],
    "telemetry_requests": 16,
    "telemetry_request_rows": 4,
}


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs (one warmup run discarded)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _conv_timings(workload: dict, dtype, reference: bool,
                  repeats: int) -> dict[str, float]:
    """Forward/backward conv and forward deconv timings for one mode."""
    rng = np.random.default_rng(0)
    batch = workload["conv_batch"]
    c_in = workload["conv_in_channels"]
    c_out = workload["conv_out_channels"]
    side = workload["side"]
    conv = Conv2D(c_in, c_out, rng=1, dtype=dtype)
    deconv = ConvTranspose2D(c_out, c_in, rng=1, dtype=dtype)
    x = rng.standard_normal((batch, c_in, side, side)).astype(dtype, copy=False)
    grad = rng.standard_normal(
        (batch, c_out, side // 2, side // 2)
    ).astype(dtype, copy=False)

    def run(fn):
        if reference:
            with reference_ops():
                return _best_of(fn, repeats)
        return _best_of(fn, repeats)

    # The timed forwards leave conv._cols populated for the backward runs.
    timings = {"conv_forward_s": run(lambda: conv.forward(x))}
    timings["conv_backward_s"] = run(lambda: conv.backward(grad))
    timings["deconv_forward_s"] = run(lambda: deconv.forward(grad))
    return timings


def _batchnorm_timings(workload: dict, dtype, reference: bool,
                       repeats: int) -> dict[str, float]:
    """Training-mode BatchNorm forward/backward timings for one mode."""
    rng = np.random.default_rng(1)
    channels = workload["bn_channels"]
    shape = (workload["bn_batch"], channels, workload["bn_side"],
             workload["bn_side"])
    bn = BatchNorm(channels, dtype=dtype)
    x = (rng.standard_normal(shape) * 2 + 1).astype(dtype, copy=False)
    grad = rng.standard_normal(shape).astype(dtype, copy=False)

    def run(fn):
        if reference:
            with reference_batchnorm():
                return _best_of(fn, repeats)
        return _best_of(fn, repeats)

    # The timed forwards leave the cache populated for the backward runs.
    timings = {"batchnorm_forward_s": run(lambda: bn.forward(x, training=True))}
    timings["batchnorm_backward_s"] = run(lambda: bn.backward(grad))
    return timings


def _adam_timings(workload: dict, dtype, reference: bool,
                  repeats: int) -> dict[str, float]:
    """One Adam step over a discriminator's parameters for one mode."""
    rng = np.random.default_rng(2)
    disc = build_discriminator(workload["side"], workload["base_channels"],
                               rng=1, dtype=dtype)
    params = disc.parameters()
    for p in params:
        p.grad += rng.standard_normal(p.shape).astype(dtype, copy=False)
    opt = Adam(params, fused=not reference)
    return {"adam_step_s": _best_of(opt.step, repeats)}


def _fit_epoch_seconds(workload: dict, dtype_name: str, reference: bool,
                       repeats: int) -> float:
    """One Algorithm 2 epoch on the synthetic workload, best of ``repeats``."""
    side = workload["side"]
    rng = np.random.default_rng(3)
    matrices = rng.uniform(-0.5, 0.5, (workload["records"], 1, side, side))
    matrices[:, 0, 0, 3] = np.sign(matrices[:, 0, 0, 0])

    def one_epoch():
        config = TableGanConfig(
            epochs=1,
            batch_size=workload["batch_size"],
            base_channels=workload["base_channels"],
            seed=0,
            dtype=dtype_name,
        )
        dtype = config.np_dtype
        gen = build_generator(side, config.latent_dim, config.base_channels,
                              rng=0, dtype=dtype)
        disc = build_discriminator(side, config.base_channels, rng=1, dtype=dtype)
        clf = build_classifier(side, config.base_channels, rng=2, dtype=dtype)
        trainer = TableGanTrainer(gen, disc, clf, config, label_cell=(0, 3))
        trainer.train(matrices, rng=np.random.default_rng(0))

    if reference:
        with reference_kernels():
            return _best_of(one_epoch, repeats)
    return _best_of(one_epoch, repeats)


def _training_timings(workload: dict, repeats: int) -> dict:
    """Data-parallel training: epoch seconds by worker count.

    Every run goes through :class:`~repro.core.parallel.ParallelTrainer`
    (``workers=1`` short-circuits the multiprocessing plumbing), so the
    sweep isolates what sharding costs and buys.  Two things are recorded
    besides raw epoch seconds:

    * ``worker_invariant`` — whether the final generator weights are
      bit-identical at every worker count, the contract the determinism
      test tier guards (``tests/core/test_parallel.py``);
    * ``cores`` — the CPU cores actually visible to this process.  Worker
      speedup is bounded by cores: on a single-core box the N-worker runs
      are expected to be *slower* than serial (pure synchronization
      overhead), and the honest number plus the core count is the record,
      not a fabricated speedup.
    """
    side = workload["side"]
    rng = np.random.default_rng(3)
    matrices = rng.uniform(-0.5, 0.5, (workload["records"], 1, side, side))
    matrices[:, 0, 0, 3] = np.sign(matrices[:, 0, 0, 0])
    worker_counts = list(workload["training_workers"])

    def run_epoch(workers):
        config = TableGanConfig(
            epochs=1,
            batch_size=workload["batch_size"],
            base_channels=workload["base_channels"],
            seed=0,
            dtype="float32",
        )
        dtype = config.np_dtype
        gen = build_generator(side, config.latent_dim, config.base_channels,
                              rng=0, dtype=dtype)
        disc = build_discriminator(side, config.base_channels, rng=1,
                                   dtype=dtype)
        clf = build_classifier(side, config.base_channels, rng=2, dtype=dtype)
        trainer = ParallelTrainer(gen, disc, clf, config, label_cell=(0, 3),
                                  workers=workers)
        trainer.train(matrices, rng=np.random.default_rng(0))
        return trainer

    epoch_s: dict[str, float] = {}
    weights: dict[int, dict] = {}
    phases: dict[str, dict] = {}
    for workers in worker_counts:
        # The warmup run doubles as the invariance probe and supplies the
        # per-phase decomposition (shard compute, reduce wait, reduce,
        # optimizer step, BN replay) from the trainer's PhaseProfile.
        trainer = run_epoch(workers)
        weights[workers] = {
            key: value.copy()
            for key, value in state_dict(trainer.generator).items()
        }
        phases[str(workers)] = trainer.profile.snapshot()
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run_epoch(workers)
            best = min(best, time.perf_counter() - start)
        epoch_s[str(workers)] = best

    baseline = weights[worker_counts[0]]
    invariant = all(
        set(weights[n]) == set(baseline)
        and all(np.array_equal(weights[n][key], baseline[key])
                for key in baseline)
        for n in worker_counts[1:]
    )
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    serial = epoch_s[str(worker_counts[0])]
    result = {
        "workers": worker_counts,
        "grad_shards": 4,
        "epoch_s": epoch_s,
        "speedup_vs_serial": {
            key: serial / value for key, value in epoch_s.items()
        },
        "worker_invariant": invariant,
        "cores": cores,
        "phases": phases,
    }
    if cores < max(worker_counts):
        result["log"] = (
            f"only {cores} CPU core(s) visible: multi-worker runs measure "
            "synchronization overhead, not parallel speedup"
        )
    return result


def _serving_model(side: int, base_channels: int, dtype: str = "float32") -> TableGAN:
    """A sample-ready TableGAN (untrained weights; forward cost is identical)."""
    n_features = side * side - 3  # exercise the matrixizer's zero padding
    schema = TableSchema([
        ColumnSpec(f"c{i:03d}", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE)
        for i in range(n_features)
    ])
    config = TableGanConfig(epochs=1, base_channels=base_channels, side=side,
                            seed=0, dtype=dtype)
    codec = TableCodec.from_ranges(schema, [-1.0] * n_features,
                                   [1.0] * n_features)
    return TableGAN.from_parts(
        config, codec, matrixizer_for(config, n_features, side),
        build_generator_for(config, side, rng=0),
    )


def _synthesis_timings(workload: dict, repeats: int) -> dict:
    """Rows/sec: per-request sampling vs micro-batched service vs sharded pool.

    All three paths produce decoded rows from the same generator; only the
    serving strategy differs.  ``sharded_worker_invariant`` records whether
    1-worker and N-worker sharded outputs were bit-identical (they must be:
    the shard plan and per-shard RNGs never depend on the worker count).
    """
    model = _serving_model(workload["side"], workload["base_channels"])
    requests = [workload["synth_request_rows"]] * workload["synth_requests"]
    total = sum(requests)

    def per_request():
        sampler = model.record_sampler()
        rng = np.random.default_rng(7)
        for rows in requests:
            sampler.sample_table(rows, rng=rng, batch_size=rows)

    def micro_batched():
        SynthesisService(model, seed=7).sample_many(requests)

    per_request_s = _best_of(per_request, repeats)
    micro_batched_s = _best_of(micro_batched, repeats)

    sharded_rows = workload["synth_sharded_rows"]
    workers = workload["synth_workers"]
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.register("bench", model)
        sharded = ShardedSampler(registry, "bench",
                                 shard_rows=workload["synth_shard_rows"])
        single = sharded.sample_values(sharded_rows, seed=7, workers=1)
        fanned = sharded.sample_values(sharded_rows, seed=7, workers=workers)
        invariant = bool(np.array_equal(single, fanned))
        sharded_s = _best_of(
            lambda: sharded.sample_values(sharded_rows, seed=7, workers=workers),
            repeats,
        )
    return {
        "requests": len(requests),
        "request_rows": workload["synth_request_rows"],
        "per_request_rows_per_s": total / per_request_s,
        "microbatched_rows_per_s": total / micro_batched_s,
        "microbatch_speedup": per_request_s / micro_batched_s,
        "sharded_rows": sharded_rows,
        "sharded_workers": workers,
        "sharded_rows_per_s": sharded_rows / sharded_s,
        "sharded_worker_invariant": invariant,
    }


def _large_batch_timings(workload: dict, repeats: int) -> dict:
    """Generator-forward throughput sweep over batch sizes (rows/sec).

    This is the curve the blocked/streamed im2col mode exists for: before
    ISSUE 4, monolithic patch-matrix workspaces fell out of cache past a
    few hundred rows and throughput at 4096-row batches was under half the
    256-row peak; the blocked engine holds it flat.
    ``flat_beyond_256`` records whether the largest batch is at least 80%
    of the smallest-batch-above-256 throughput (a cheap regression bit).
    """
    model = _serving_model(workload["side"], workload["base_channels"])
    generator = model.generator_
    latent = model.config.latent_dim
    rng = np.random.default_rng(11)
    rows_per_s = {}
    for rows in workload["large_batch_rows"]:
        z = rng.uniform(-1.0, 1.0, (rows, latent)).astype(np.float32)
        # The serving path: Sequential.stream_forward (row-chunked
        # inference over the blocked conv engine).
        seconds = _best_of(lambda: generator.stream_forward(z), repeats)
        rows_per_s[str(rows)] = rows / seconds
    sizes = [int(s) for s in rows_per_s]
    big = max(sizes)
    anchors = [s for s in sizes if 256 <= s < big] or [min(sizes)]
    anchor = min(anchors)
    return {
        "rows_per_s": rows_per_s,
        "anchor_rows": anchor,
        "flat_beyond_256": bool(
            rows_per_s[str(big)] >= 0.8 * rows_per_s[str(anchor)]
        ),
    }


def _serving_client_worker(args) -> tuple[float, float, list[float]]:
    """One load-generator client process: sequential small requests.

    Module-level so it pickles under both ``fork`` and ``spawn`` start
    methods (same contract as the sharding workers).  The first (untimed)
    request warms the path — model load, first pool replenishment, TCP
    connect — exactly like a load test's warmup phase.  Returns
    wall-clock anchors (``time.time``, comparable across processes) plus
    per-request latencies.
    """
    port, ref, requests, rows = args
    from repro.serve import SynthesisClient

    client = SynthesisClient(port=port, retries=5)
    client.sample(ref, rows)
    latencies = []
    started_at = time.time()
    for _ in range(requests):
        begin = time.perf_counter()
        client.sample(ref, rows)
        latencies.append(time.perf_counter() - begin)
    ended_at = time.time()
    client.close()
    return started_at, ended_at, latencies


def _raw_sample_bodies(port: int, ref: str, sizes: list[int]) -> list[bytes]:
    """The exact response bodies of a sequential sample-request replay.

    Raw bytes, not parsed rows: the worker-invariance bit asserts the
    multi-process tier is *byte*-identical to the threaded server, which
    includes JSON serialization, column order, and float formatting.
    """
    import urllib.request

    bodies = []
    for n in sizes:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/models/{ref}/sample",
            data=json.dumps({"n": n}).encode("utf-8"), method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            bodies.append(response.read())
    return bodies


def _serving_load_timings(workload: dict) -> dict:
    """End-to-end load test of the HTTP server: coalesced vs per-request.

    Boots real :class:`SynthesisServer` instances on loopback (port 0)
    over the same registered model — with cross-request coalescing and
    with the per-request baseline path — and fires ``serving_clients``
    concurrent :class:`SynthesisClient` **processes** at each (the load
    generator must not share the server's GIL), every client issuing
    ``serving_requests_per_client`` requests of ``serving_request_rows``
    rows.  Records aggregate rows/sec and client-observed p50/p99 latency
    per mode (best of ``serving_passes`` runs, like every other section's
    ``_best_of``); ``coalesce_speedup`` is the aggregate-throughput ratio
    — the point of the batcher: N queued clients cost one generator pass
    per drain tick instead of N.

    Three server configurations decompose where the speedup comes from
    (each mode is one real server; nothing is shared between them):

    * ``per_request`` — ``coalesce=False, pool_size=0``: the naive
      baseline, one generator pass and one decode per request;
    * ``coalesce_only`` — ``coalesce=True, pool_size=0``: pure
      cross-request coalescing, queued requests merged per drain tick;
    * ``coalesced`` — the server's **default** configuration
      (coalescing + the replenishment pool): ticks also pre-generate
      across time, so sub-batch requests usually serve from memory.

    ``pure_coalesce_speedup`` (coalesce_only / per_request) isolates the
    batcher; ``coalesce_speedup`` (coalesced / per_request) is the
    headline — the shipped coalescing server versus the
    coalescing-disabled path (`--no-coalesce --pool-size 0`).

    The serving model is deliberately **narrow and deep**
    (``serving_side``/``serving_base_channels``): a table of ~60 columns
    is representative of the paper's datasets (Adult has 15), and a small
    request's cost is then dominated by the per-call generator forward —
    the part coalescing amortizes — rather than by rendering hundreds of
    columns of JSON per row, which no batching strategy can share.
    """
    import multiprocessing

    from repro.serve.sharding import _default_start_method

    clients = workload["serving_clients"]
    requests_per_client = workload["serving_requests_per_client"]
    rows = workload["serving_request_rows"]
    passes = workload["serving_passes"]
    model = _serving_model(workload["serving_side"],
                           workload["serving_base_channels"])
    report = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "request_rows": rows,
        "side": workload["serving_side"],
        "base_channels": workload["serving_base_channels"],
    }
    # Fork where available (the sharding module's choice: cheap, and the
    # workers need no __main__ re-import), spawn otherwise.  The pool is
    # created before any server thread exists, so forking is safe.
    ctx = multiprocessing.get_context(_default_start_method())
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.register("bench", model)
        modes = (
            ("per_request", False, 0),
            ("coalesce_only", True, 0),
            ("coalesced", True, workload["serving_pool_rows"]),
        )
        def run_mode(pool, coalesce, pool_rows, sink=None, server_workers=0,
                     quality=True):
            """One load pass against a fresh server (fresh metrics registry
            so modes cannot bleed counters into each other); ``sink``
            arms the tracer in the server's process for the pass;
            ``server_workers`` boots the multi-process serving tier;
            ``quality=False`` disables the decode-path quality tap."""
            server = SynthesisServer(
                registry, port=0, seed=7, coalesce=coalesce,
                pool_size=pool_rows,
                max_queue_depth=clients * (requests_per_client + 1),
                metrics_registry=MetricsRegistry(),
                server_workers=server_workers, quality=quality,
            )
            server.start()
            args = [(server.port, "bench", requests_per_client, rows)
                    ] * clients
            if sink is None:
                results = pool.map(_serving_client_worker, args)
            else:
                with trace.tracing(sink):
                    results = pool.map(_serving_client_worker, args)
            model_metrics = server.metrics()["models"]["bench"]
            render = server.metrics().get("render")
            server.shutdown()
            wall = (max(r[1] for r in results)
                    - min(r[0] for r in results))
            flat = np.array([t for r in results for t in r[2]])
            total_rows = clients * requests_per_client * rows
            return {
                "rows_per_s": total_rows / wall,
                "p50_ms": float(np.percentile(flat, 50) * 1e3),
                "p99_ms": float(np.percentile(flat, 99) * 1e3),
                "batch_ticks": model_metrics["batch_ticks"],
                "requests": int(flat.size),
                "stages": model_metrics.get("stages"),
                "queue_wait": model_metrics.get("queue_wait"),
                "render": render,
            }

        with ctx.Pool(clients) as pool:
            for key, coalesce, pool_rows in modes:
                best = None
                for _ in range(passes):
                    run = run_mode(pool, coalesce, pool_rows)
                    if best is None or run["rows_per_s"] > best["rows_per_s"]:
                        best = run
                report[key] = best
            # The ISSUE 8 acceptance number: the default (coalesced) config
            # again, but with the tracer armed in the server process, every
            # request emitting handler/batcher/service spans into a list
            # sink.  Overhead is the throughput lost versus the disarmed
            # best-of pass above — it must stay within noise (< 3%).
            armed_best = None
            for _ in range(passes):
                sink: list = []
                run = run_mode(pool, True, workload["serving_pool_rows"],
                               sink=sink)
                run["spans"] = len(sink)
                if (armed_best is None
                        or run["rows_per_s"] > armed_best["rows_per_s"]):
                    armed_best = run
            report["telemetry_armed"] = armed_best

            # The ISSUE 10 acceptance number: the default configuration with
            # the per-model quality sketch tap *disabled*.  Every mode above
            # runs with the tap armed (the shipped default), so the overhead
            # is what the tap-off server gains over the default coalesced
            # best — it must stay under 3% (`quality_tap_overhead_frac`).
            quality_off_best = None
            for _ in range(passes):
                run = run_mode(pool, True, workload["serving_pool_rows"],
                               quality=False)
                if (quality_off_best is None
                        or run["rows_per_s"] > quality_off_best["rows_per_s"]):
                    quality_off_best = run
            report["quality_off"] = quality_off_best

            # ---- worker-process sweep (the multi-process serving tier) ----
            # Same load, but each model served by N dedicated worker
            # processes over the shared-memory pool.  On a single-core box
            # the sweep still runs (the invariance data matters more than
            # the timing) but the scaling tripwire is skipped with a note,
            # exactly like the training section's.
            cores = os.cpu_count() or 1
            sweep_counts = (1, 2, 4)
            sweep_runs: dict = {}
            for count in sweep_counts:
                best = None
                for _ in range(passes):
                    run = run_mode(pool, True, workload["serving_pool_rows"],
                                   server_workers=count)
                    if best is None or run["rows_per_s"] > best["rows_per_s"]:
                        best = run
                sweep_runs[str(count)] = best
            sweep = {
                "cores": cores,
                "clients": clients,
                "worker_counts": list(sweep_counts),
                "runs": sweep_runs,
                "scaling_1_to_2": (sweep_runs["2"]["rows_per_s"]
                                   / sweep_runs["1"]["rows_per_s"]),
            }
            if cores < 2:
                sweep["log"] = (
                    f"only {cores} core visible: worker processes time-slice "
                    "one CPU, so the 1->2 scaling tripwire is skipped; run "
                    "on a multi-core host to measure scaling"
                )
            report["worker_sweep"] = sweep

            # ---- worker invariance (the process-boundary contract) ----
            # The same seeded request sequence, replayed sequentially
            # against a threaded server and against 1- and 2-worker pools:
            # the raw response bytes must be identical — the multi-process
            # tier is a performance mode, never a semantics mode.
            invariance_rows = [13, 200, 64, 7, 100]
            bodies = {}
            for count in (0, 1, 2):
                server = SynthesisServer(
                    registry, port=0, seed=7,
                    pool_size=workload["serving_pool_rows"],
                    metrics_registry=MetricsRegistry(),
                    server_workers=count,
                )
                server.start()
                try:
                    bodies[count] = _raw_sample_bodies(
                        server.port, "bench", invariance_rows)
                finally:
                    server.shutdown()
            report["worker_invariance"] = {
                "request_rows": invariance_rows,
                "server_workers": [0, 1, 2],
                "worker_invariant": bodies[1] == bodies[2],
                "threaded_identical": bodies[0] == bodies[1],
            }
    report["telemetry_overhead_frac"] = (
        1.0 - report["telemetry_armed"]["rows_per_s"]
        / report["coalesced"]["rows_per_s"]
    )
    report["quality_tap_overhead_frac"] = (
        1.0 - report["coalesced"]["rows_per_s"]
        / report["quality_off"]["rows_per_s"]
    )
    report["pure_coalesce_speedup"] = (
        report["coalesce_only"]["rows_per_s"]
        / report["per_request"]["rows_per_s"]
    )
    report["coalesce_speedup"] = (
        report["coalesced"]["rows_per_s"] / report["per_request"]["rows_per_s"]
    )
    return report


def _resilience_timings(workload: dict, repeats: int) -> dict:
    """The cost of fault tolerance: hooks, crash recovery, checkpoints.

    Four numbers back the robustness layer's "zero overhead until it
    fires" claims with measurements instead of assertions:

    * ``fault_hook_disarmed_ns`` — one disarmed :func:`~repro.utils.
      faults.fault_point` traversal (a module-global load plus an
      ``is None`` test; nanoseconds, the price every hot path pays);
    * ``worker_crash_recovery_s`` — extra wall-clock a request pays when
      an injected crash kills the batcher worker mid-tick and the
      supervisor restarts it (production backoff policy) and retries the
      slice transparently;
    * ``degraded_vs_healthy`` — sequential-request throughput with
      ``resilience_crashes`` injected worker crashes spread across the
      run, as a fraction of the crash-free run (each crash costs one
      restart backoff plus one redone tick);
    * ``checkpoint_overhead`` — one training epoch with per-batch
      crash-safe snapshots (:class:`~repro.core.checkpoint.
      TrainerCheckpointer`, the heaviest setting) relative to the same
      epoch without, plus the mean per-snapshot write time.
    """
    from repro.core.checkpoint import TrainerCheckpointer
    from repro.serve.server import CoalescingBatcher
    from repro.utils.faults import FaultPlan, fault_point

    report: dict = {}

    # -- disarmed hook cost ------------------------------------------------
    hook_calls = 100_000

    def hook_loop():
        for _ in range(hook_calls):
            fault_point("batcher.tick")

    report["fault_hook_disarmed_ns"] = (
        _best_of(hook_loop, repeats) / hook_calls * 1e9
    )

    # -- crash recovery and degraded throughput ----------------------------
    model = _serving_model(workload["side"], workload["base_channels"])
    rows = workload["resilience_request_rows"]
    requests = workload["resilience_requests"]
    crashes = workload["resilience_crashes"]
    service = SynthesisService(model, seed=7)  # pool_size=0: every submit ticks
    batcher = CoalescingBatcher(service, name="resilience")
    try:
        batcher.submit(rows)  # warm the path (first generator forward)
        healthy = []
        for _ in range(max(repeats, 3)):
            begin = time.perf_counter()
            batcher.submit(rows)
            healthy.append(time.perf_counter() - begin)
        healthy_submit_s = float(np.median(healthy))

        with FaultPlan().arm("batcher.tick", times=1):
            begin = time.perf_counter()
            batcher.submit(rows)  # crashes once, restarts, retried slice
            crashed_submit_s = time.perf_counter() - begin
        report["healthy_submit_s"] = healthy_submit_s
        report["crashed_submit_s"] = crashed_submit_s
        report["worker_crash_recovery_s"] = max(
            crashed_submit_s - healthy_submit_s, 0.0
        )

        begin = time.perf_counter()
        for _ in range(requests):
            batcher.submit(rows)
        healthy_s = time.perf_counter() - begin

        per_group = max(requests // crashes, 1)
        begin = time.perf_counter()
        for _ in range(crashes):
            with FaultPlan().arm("batcher.tick", times=1):
                for _ in range(per_group):
                    batcher.submit(rows)
        degraded_s = time.perf_counter() - begin
        assert batcher.supervision()["crashes"] >= crashes + 1
    finally:
        batcher.close()
    report["requests"] = requests
    report["request_rows"] = rows
    report["injected_crashes"] = crashes
    report["healthy_rows_per_s"] = requests * rows / healthy_s
    report["degraded_rows_per_s"] = crashes * per_group * rows / degraded_s
    report["degraded_vs_healthy"] = (
        report["degraded_rows_per_s"] / report["healthy_rows_per_s"]
    )

    # -- checkpoint write overhead -----------------------------------------
    side = workload["side"]
    rng = np.random.default_rng(13)
    matrices = rng.uniform(-0.5, 0.5,
                           (workload["records"], 1, side, side))
    config = TableGanConfig(
        epochs=1, batch_size=workload["batch_size"],
        base_channels=workload["base_channels"], seed=0,
        use_classifier=False,
    )

    def one_epoch(checkpointer=None):
        gen = build_generator(side, config.latent_dim, config.base_channels,
                              rng=0, dtype=config.np_dtype)
        disc = build_discriminator(side, config.base_channels, rng=1,
                                   dtype=config.np_dtype)
        trainer = TableGanTrainer(gen, disc, None, config)
        trainer.train(matrices, rng=np.random.default_rng(0),
                      checkpointer=checkpointer)

    plain_s = _best_of(one_epoch, repeats)
    with tempfile.TemporaryDirectory() as tmp:
        checkpointer = TrainerCheckpointer(tmp, every_batches=1)
        begin = time.perf_counter()
        one_epoch(checkpointer)
        checkpointed_s = time.perf_counter() - begin
        report["checkpoint_saves"] = checkpointer.saves
        report["checkpoint_mean_save_ms"] = (
            checkpointer.total_save_s / checkpointer.saves * 1e3
        )
    report["epoch_s"] = plain_s
    report["checkpointed_epoch_s"] = checkpointed_s
    report["checkpoint_overhead"] = checkpointed_s / plain_s
    return report


def _telemetry_timings(workload: dict, repeats: int) -> dict:
    """The cost of observability: disarmed seams, armed spans, overhead.

    The :mod:`repro.obs` layer makes the same promise the fault hooks do
    — near-zero cost until armed — and this section prices it the same
    way the resilience section prices :func:`~repro.utils.faults.
    fault_point`:

    * ``span_disarmed_ns`` — one disarmed ``trace.span`` context-manager
      round trip (a module-global load, an ``is None`` test, and the
      shared no-op span);
    * ``counter_inc_ns`` — one increment of a pre-bound registry counter
      child, the hot-path metrics primitive;
    * ``span_armed_us`` — one armed span round trip into a list sink
      (timestamping, id allocation, record construction);
    * ``serving_overhead`` — a sequential batcher submit loop with the
      tracer armed, as a multiple of the disarmed loop (fresh service,
      batcher, and registry per run so nothing carries over);
    * ``training_overhead`` — one instrumented training epoch armed vs
      disarmed (per-batch ``train.batch`` spans plus the always-on phase
      profile).

    ``--check`` gates ``span_disarmed_ns`` and ``serving_overhead``
    (generous noise margins; a real regression — a span allocating while
    disarmed, a lock on the submit path — shows up as an integer factor).
    """
    from repro.serve.server import CoalescingBatcher

    report: dict = {}
    calls = 100_000

    def span_loop():
        for _ in range(calls):
            with trace.span("bench.noop"):
                pass

    report["span_disarmed_ns"] = _best_of(span_loop, repeats) / calls * 1e9

    registry = MetricsRegistry()
    counter = registry.counter(
        "bench_ops_total", "telemetry bench counter"
    ).labels(mode="bench")

    def counter_loop():
        for _ in range(calls):
            counter.inc()

    report["counter_inc_ns"] = _best_of(counter_loop, repeats) / calls * 1e9

    armed_calls = 10_000

    def armed_loop():
        for _ in range(armed_calls):
            with trace.span("bench.noop"):
                pass

    with trace.tracing([]):
        report["span_armed_us"] = (
            _best_of(armed_loop, repeats) / armed_calls * 1e6
        )

    # -- armed vs disarmed serving submits ---------------------------------
    model = _serving_model(workload["side"], workload["base_channels"])
    requests = workload["telemetry_requests"]
    rows = workload["telemetry_request_rows"]

    def run_submits(armed: bool) -> float:
        service = SynthesisService(model, seed=7)
        batcher = CoalescingBatcher(service, name="telemetry",
                                    registry=MetricsRegistry())
        try:
            batcher.submit(rows)  # warm the path (first generator forward)
            if armed:
                with trace.tracing([]):
                    begin = time.perf_counter()
                    for _ in range(requests):
                        batcher.submit(rows)
                    return time.perf_counter() - begin
            begin = time.perf_counter()
            for _ in range(requests):
                batcher.submit(rows)
            return time.perf_counter() - begin
        finally:
            batcher.close()

    disarmed_s = min(run_submits(False) for _ in range(repeats))
    armed_s = min(run_submits(True) for _ in range(repeats))
    report["serving_requests"] = requests
    report["serving_request_rows"] = rows
    report["serving_disarmed_s"] = disarmed_s
    report["serving_armed_s"] = armed_s
    report["serving_overhead"] = armed_s / disarmed_s

    # -- armed vs disarmed training epoch ----------------------------------
    side = workload["side"]
    rng = np.random.default_rng(3)
    matrices = rng.uniform(-0.5, 0.5, (workload["records"], 1, side, side))
    matrices[:, 0, 0, 3] = np.sign(matrices[:, 0, 0, 0])

    def one_epoch():
        config = TableGanConfig(
            epochs=1, batch_size=workload["batch_size"],
            base_channels=workload["base_channels"], seed=0, dtype="float32",
        )
        dtype = config.np_dtype
        gen = build_generator(side, config.latent_dim, config.base_channels,
                              rng=0, dtype=dtype)
        disc = build_discriminator(side, config.base_channels, rng=1,
                                   dtype=dtype)
        clf = build_classifier(side, config.base_channels, rng=2, dtype=dtype)
        trainer = TableGanTrainer(gen, disc, clf, config, label_cell=(0, 3))
        trainer.train(matrices, rng=np.random.default_rng(0))

    epoch_repeats = min(repeats, 2)
    train_disarmed_s = _best_of(one_epoch, epoch_repeats)
    with trace.tracing([]):
        train_armed_s = _best_of(one_epoch, epoch_repeats)
    report["training_disarmed_s"] = train_disarmed_s
    report["training_armed_s"] = train_armed_s
    report["training_overhead"] = train_armed_s / train_disarmed_s
    return report


def run_benchmarks(repeats: int = 5, fit_repeats: int = 2,
                   quick: bool = False) -> dict:
    """Run the full engine-vs-reference comparison and return the report.

    ``quick=True`` switches to :data:`QUICK_WORKLOAD` and caps repeats at
    one — the smoke mode used by the test suite and ``bench --quick``.
    """
    if repeats < 1 or fit_repeats < 1:
        raise ValueError(
            f"repeats must be >= 1, got repeats={repeats}, fit_repeats={fit_repeats}"
        )
    workload = QUICK_WORKLOAD if quick else WORKLOAD
    if quick:
        # Kernel sections keep a few repeats even in quick mode: they are
        # microsecond-scale and feed the --check tripwire, where a
        # single-shot timing would flake; the epoch is the expensive part
        # and runs once.
        repeats = min(repeats, 5)
        fit_repeats = 1
    # Honest cold start: drop both the memoized index plans and the
    # engine's shared scratch pool before timing.
    clear_plan_cache()
    clear_workspaces()
    report = {"workload": dict(workload), "quick": quick}
    engine = _conv_timings(workload, np.float32, reference=False, repeats=repeats)
    reference = _conv_timings(workload, np.float64, reference=True, repeats=repeats)
    engine.update(_batchnorm_timings(workload, np.float32, False, repeats))
    reference.update(_batchnorm_timings(workload, np.float64, True, repeats))
    engine.update(_adam_timings(workload, np.float32, False, repeats))
    reference.update(_adam_timings(workload, np.float64, True, repeats))
    engine["fit_epoch_s"] = _fit_epoch_seconds(workload, "float32", False,
                                               fit_repeats)
    reference["fit_epoch_s"] = _fit_epoch_seconds(workload, "float64", True,
                                                  fit_repeats)
    report["engine"] = engine
    report["reference"] = reference
    report["speedup"] = {
        key.removesuffix("_s"): reference[key] / engine[key]
        for key in engine
        if engine[key] > 0
    }
    report["synthesis"] = _synthesis_timings(workload, repeats)
    report["large_batch"] = _large_batch_timings(workload, repeats)
    report["resilience"] = _resilience_timings(workload, repeats)
    report["training"] = _training_timings(workload, fit_repeats)
    report["telemetry"] = _telemetry_timings(workload, repeats)
    if quick:
        # Quick mode must stay a smoke test: the serving load generator
        # boots real servers, sockets, and client threads.  Record the
        # omission explicitly so a truncated report cannot masquerade as
        # a full one.
        report["serving"] = {
            "skipped": True,
            "log": "quick mode skips the serving load generator; "
                   "run `repro bench` without --quick for the serving section",
        }
    else:
        report["serving"] = _serving_load_timings(workload)
    return report


#: Per-kernel sections the --check tripwire gates on (fit_epoch is a whole
#: training epoch, not a kernel, and single-repeat quick timings of it are
#: too noisy for a hard gate).
KERNEL_CHECK_KEYS = (
    "conv_forward_s",
    "conv_backward_s",
    "deconv_forward_s",
    "batchnorm_forward_s",
    "batchnorm_backward_s",
    "adam_step_s",
)


def check_report(report: dict, min_speedup: float = 0.8,
                 max_telemetry_overhead: float = 1.5,
                 max_disarmed_span_ns: float = 2000.0,
                 min_worker_scaling: float = 1.3,
                 max_quality_tap_overhead: float = 0.03) -> list[str]:
    """Regression tripwire: the fast engine must never lose to the oracle.

    Returns a list of failure descriptions — one per kernel section where
    the engine timed slower than the reference implementation.  The engine
    is typically 1.5–5× faster per kernel and a real regression (a fast
    path silently falling back, a layout pessimization) shows up as an
    integer-factor slowdown, so ``min_speedup`` keeps a small margin below
    1.0 against scheduler noise on the microsecond-scale quick kernels.
    CI runs ``bench --quick --check`` and fails the workflow on any
    finding.

    The telemetry section (when present) is gated the same way: a
    disarmed ``trace.span`` must stay in the nanosecond range
    (``max_disarmed_span_ns``; a regression here means the disarmed seam
    started allocating) and an armed serving submit loop must stay within
    ``max_telemetry_overhead`` of the disarmed loop — a generous noise
    margin for the quick workload; the full serving bench holds the real
    <3% budget in ``serving.telemetry_overhead_frac``.
    """
    failures = []
    for key in KERNEL_CHECK_KEYS:
        name = key.removesuffix("_s")
        speedup = report.get("speedup", {}).get(name)
        if speedup is not None and speedup < min_speedup:
            failures.append(
                f"{name}: engine {report['engine'][key]:.6f}s slower than "
                f"reference {report['reference'][key]:.6f}s "
                f"(speedup {speedup:.2f}x < {min_speedup:.2f}x)"
            )
    telemetry = report.get("telemetry") or {}
    disarmed_ns = telemetry.get("span_disarmed_ns")
    if disarmed_ns is not None and disarmed_ns > max_disarmed_span_ns:
        failures.append(
            f"telemetry: disarmed span costs {disarmed_ns:.0f} ns/call "
            f"(> {max_disarmed_span_ns:.0f} ns — the disarmed seam is no "
            "longer near-zero)"
        )
    overhead = telemetry.get("serving_overhead")
    if overhead is not None and overhead > max_telemetry_overhead:
        failures.append(
            f"telemetry: armed serving submits run {overhead:.2f}x the "
            f"disarmed loop (> {max_telemetry_overhead:.2f}x noise margin)"
        )
    serving = report.get("serving") or {}
    sweep = serving.get("worker_sweep")
    if sweep:
        scaling = sweep.get("scaling_1_to_2")
        if (sweep.get("cores") or 1) < 2:
            # One visible core: worker processes time-slice the same CPU,
            # so throughput scaling is not measurable — skipped with the
            # note the sweep itself carries (same policy as the training
            # section's single-core log).
            pass
        elif scaling is not None and scaling < min_worker_scaling:
            failures.append(
                f"serving: 2 worker processes yield {scaling:.2f}x the "
                f"single-worker throughput (> {min_worker_scaling:.2f}x "
                f"expected on a {sweep.get('cores')}-core host)"
            )
    invariance = serving.get("worker_invariance")
    if invariance and not (invariance.get("worker_invariant")
                           and invariance.get("threaded_identical")):
        failures.append(
            "serving: multi-process responses diverge from the threaded "
            "server — the worker-invariance contract is broken"
        )
    tap_overhead = report.get("quality_tap_overhead_frac",
                              serving.get("quality_tap_overhead_frac"))
    if tap_overhead is not None and tap_overhead > max_quality_tap_overhead:
        failures.append(
            f"serving: the quality-sketch tap costs "
            f"{tap_overhead * 100:.1f}% of default throughput "
            f"(> {max_quality_tap_overhead * 100:.0f}% budget) — the "
            "decode-path sketch update is no longer cheap"
        )
    return failures


def write_report(report: dict, path: str = "BENCH_engine.json") -> None:
    """Write the benchmark report as JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: Row order of the human-readable summary (and of docs/benchmarks.md).
REPORT_KEYS = (
    "conv_forward_s",
    "conv_backward_s",
    "deconv_forward_s",
    "batchnorm_forward_s",
    "batchnorm_backward_s",
    "adam_step_s",
    "fit_epoch_s",
)


def format_report(report: dict) -> str:
    """Human-readable summary of a benchmark report."""
    lines = ["metric              engine      reference   speedup"]
    for key in REPORT_KEYS:
        if key not in report["engine"]:
            continue
        name = key.removesuffix("_s")
        lines.append(
            f"{name:<18}  {report['engine'][key]:>9.4f}s  "
            f"{report['reference'][key]:>9.4f}s  {report['speedup'][name]:>6.1f}x"
        )
    large_batch = report.get("large_batch")
    if large_batch:
        lines.append("")
        lines.append("generator forward throughput by batch size:")
        for rows, value in large_batch["rows_per_s"].items():
            lines.append(f"  {int(rows):>6,} rows {value:>12,.0f} rows/s")
        lines.append(
            f"  flat beyond 256 rows: {large_batch['flat_beyond_256']}"
        )
    synthesis = report.get("synthesis")
    if synthesis:
        lines.append("")
        lines.append(
            f"synthesis throughput ({synthesis['requests']} requests × "
            f"{synthesis['request_rows']} rows):"
        )
        lines.append(
            f"  per-request   {synthesis['per_request_rows_per_s']:>12,.0f} rows/s"
        )
        lines.append(
            f"  micro-batched {synthesis['microbatched_rows_per_s']:>12,.0f} rows/s"
            f"  ({synthesis['microbatch_speedup']:.1f}x)"
        )
        lines.append(
            f"  sharded (x{synthesis['sharded_workers']})  "
            f"{synthesis['sharded_rows_per_s']:>12,.0f} rows/s"
            f"  (worker-invariant: {synthesis['sharded_worker_invariant']})"
        )
    resilience = report.get("resilience")
    if resilience:
        lines.append("")
        lines.append("resilience (the cost of fault tolerance):")
        lines.append(
            f"  disarmed fault hook      "
            f"{resilience['fault_hook_disarmed_ns']:>8.0f} ns/traversal"
        )
        lines.append(
            f"  worker crash recovery    "
            f"{resilience['worker_crash_recovery_s'] * 1e3:>8.1f} ms/crash"
        )
        lines.append(
            f"  degraded vs healthy      "
            f"{resilience['degraded_vs_healthy'] * 100:>8.1f} % throughput "
            f"({resilience['injected_crashes']} crashes / "
            f"{resilience['requests']} requests)"
        )
        lines.append(
            f"  checkpoint write         "
            f"{resilience['checkpoint_mean_save_ms']:>8.1f} ms/snapshot "
            f"({resilience['checkpoint_overhead']:.2f}x epoch at "
            "every_batches=1)"
        )
    training = report.get("training")
    if training:
        lines.append("")
        lines.append(
            f"data-parallel training (one epoch, grad_shards="
            f"{training['grad_shards']}, {training['cores']} core(s) visible):"
        )
        for workers in training["workers"]:
            key = str(workers)
            lines.append(
                f"  workers={workers}  {training['epoch_s'][key]:>9.3f} s/epoch"
                f"  ({training['speedup_vs_serial'][key]:.2f}x vs serial)"
            )
        lines.append(
            f"  worker-invariant weights: {training['worker_invariant']}"
        )
        phases = training.get("phases") or {}
        for workers in training["workers"]:
            snapshot = phases.get(str(workers))
            if not snapshot:
                continue
            breakdown = ", ".join(
                f"{name} {entry['total_s']:.3f}s"
                for name, entry in snapshot.items()
            )
            lines.append(f"  phases (workers={workers}): {breakdown}")
        if training.get("log"):
            lines.append(f"  note: {training['log']}")
    serving = report.get("serving")
    if serving:
        lines.append("")
        if serving.get("skipped"):
            lines.append(f"serving load test skipped: {serving['log']}")
        else:
            lines.append(
                f"HTTP serving load test ({serving['clients']} clients × "
                f"{serving['requests_per_client']} requests × "
                f"{serving['request_rows']} rows):"
            )
            for key in ("per_request", "coalesce_only", "coalesced"):
                mode = serving.get(key)
                if mode is None:
                    continue
                lines.append(
                    f"  {key.replace('_', '-'):<13} {mode['rows_per_s']:>12,.0f} rows/s"
                    f"  p50 {mode['p50_ms']:7.1f} ms  p99 {mode['p99_ms']:7.1f} ms"
                )
            lines.append(
                f"  pure cross-request coalescing speedup: "
                f"{serving['pure_coalesce_speedup']:.1f}x"
            )
            lines.append(
                f"  coalescing server (default config) speedup: "
                f"{serving['coalesce_speedup']:.1f}x"
            )
            armed = serving.get("telemetry_armed")
            if armed:
                lines.append(
                    f"  telemetry armed (coalesced): "
                    f"{armed['rows_per_s']:>12,.0f} rows/s  "
                    f"({serving['telemetry_overhead_frac'] * 100:+.1f}% "
                    f"overhead, {armed.get('spans', 0):,} spans)"
                )
            quality_off = serving.get("quality_off")
            if quality_off:
                lines.append(
                    f"  quality tap disabled:        "
                    f"{quality_off['rows_per_s']:>12,.0f} rows/s  "
                    f"(tap costs "
                    f"{serving['quality_tap_overhead_frac'] * 100:+.1f}%)"
                )
            sweep = serving.get("worker_sweep")
            if sweep:
                lines.append(
                    f"  worker-process sweep ({sweep['clients']} clients, "
                    f"{sweep['cores']} core(s) visible):"
                )
                for count in sweep["worker_counts"]:
                    run = sweep["runs"].get(str(count))
                    if run is None:
                        continue
                    lines.append(
                        f"    workers={count}  {run['rows_per_s']:>12,.0f} "
                        f"rows/s  p50 {run['p50_ms']:7.1f} ms  "
                        f"p99 {run['p99_ms']:7.1f} ms"
                    )
                lines.append(
                    f"    scaling 1->2 workers: {sweep['scaling_1_to_2']:.2f}x"
                )
                if sweep.get("log"):
                    lines.append(f"    note: {sweep['log']}")
            invariance = serving.get("worker_invariance")
            if invariance:
                lines.append(
                    f"  worker-invariant responses: "
                    f"{invariance['worker_invariant']} "
                    f"(identical to threaded: "
                    f"{invariance['threaded_identical']})"
                )
    telemetry = report.get("telemetry")
    if telemetry:
        lines.append("")
        lines.append("telemetry (the cost of observability):")
        lines.append(
            f"  disarmed span            "
            f"{telemetry['span_disarmed_ns']:>8.0f} ns/call"
        )
        lines.append(
            f"  counter increment        "
            f"{telemetry['counter_inc_ns']:>8.0f} ns/call"
        )
        lines.append(
            f"  armed span               "
            f"{telemetry['span_armed_us']:>8.1f} us/call"
        )
        lines.append(
            f"  armed serving submits    "
            f"{telemetry['serving_overhead']:>8.2f} x disarmed"
        )
        lines.append(
            f"  armed training epoch     "
            f"{telemetry['training_overhead']:>8.2f} x disarmed"
        )
    return "\n".join(lines)


def main(out_path: str = "BENCH_engine.json", repeats: int = 5,
         fit_repeats: int = 2, quick: bool = False, check: bool = False) -> int:
    """Run the benchmark, print the summary, and write the JSON report.

    With ``check=True`` the exit code is non-zero when any kernel section
    reports the fast engine slower than the reference oracle — the cheap
    regression tripwire CI runs on every push.
    """
    try:
        # Fail on an unwritable path now, not after minutes of benchmarking.
        with open(out_path, "a"):
            pass
    except OSError as exc:
        print(f"cannot write report to {out_path}: {exc}")
        return 1
    report = run_benchmarks(repeats=repeats, fit_repeats=fit_repeats, quick=quick)
    print(format_report(report))
    write_report(report, out_path)
    print(f"report written to {out_path}")
    if check:
        failures = check_report(report)
        if failures:
            print("engine-vs-reference check FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print("engine-vs-reference check passed (all kernel sections faster)")
    return 0
