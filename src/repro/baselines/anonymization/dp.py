"""(ε, d)-differentially private data release (SafePub-style).

ARX implements the Bild et al. "SafePub" mechanism: release a random
sample of the table, generalized to k-anonymity, where the sampling rate β
and the class-size floor k are derived from (ε, δ).  Combined with random
sampling, generalization yields (ε, δ)-DP without perturbing sensitive
values — which is why the paper pairs it with δ-disclosure to build
equivalence classes (§5.1.3).

This module reproduces that construction: Bernoulli row sampling with
rate β = 1 - exp(-ε), then Mondrian generalization with
k = ceil(ln(1/δ_dp) / ε) (the SafePub class-size bound up to constants),
then uniform re-expansion to the original row count so downstream
evaluations compare like-for-like table sizes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.anonymization.mondrian import generalize, mondrian_partitions
from repro.data.table import Table
from repro.utils.rng import ensure_rng


def dp_parameters(epsilon: float, dp_delta: float) -> tuple[float, int]:
    """Derive (sampling rate β, class-size floor k) from (ε, δ_dp)."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < dp_delta < 1.0:
        raise ValueError(f"dp_delta must be in (0, 1), got {dp_delta}")
    beta = 1.0 - np.exp(-epsilon)
    k = max(2, int(np.ceil(np.log(1.0 / dp_delta) / epsilon)))
    return float(beta), k


class DifferentiallyPrivateRelease:
    """(ε, δ_dp)-DP table release via sampling + generalization.

    Parameters
    ----------
    epsilon:
        Privacy budget (paper grid: 0.01 … 5).
    dp_delta:
        DP slack δ (paper grid: 1e-6 … 0.1).  Named ``dp_delta`` to avoid
        collision with δ-disclosure's parameter.
    seed:
        Seed for row sampling and re-expansion.
    """

    def __init__(self, epsilon: float = 1.0, dp_delta: float = 1e-3, seed=None):
        self.epsilon = epsilon
        self.dp_delta = dp_delta
        self.seed = seed
        self.beta_, self.k_ = dp_parameters(epsilon, dp_delta)

    def anonymize(self, table: Table) -> Table:
        """Release a DP-generalized table with the original row count."""
        rng = ensure_rng(self.seed)
        keep = np.flatnonzero(rng.random(table.n_rows) < self.beta_)
        # Guarantee enough rows for at least one k-sized class.
        if keep.size < self.k_:
            extra = rng.choice(
                np.setdiff1d(np.arange(table.n_rows), keep),
                size=self.k_ - keep.size,
                replace=False,
            )
            keep = np.concatenate([keep, extra])
        sampled = table.take(keep)
        partitions = mondrian_partitions(sampled, self.k_)
        generalized = generalize(sampled, partitions)
        # Re-expand to the source size by resampling released rows.
        rows = rng.integers(0, generalized.n_rows, size=table.n_rows)
        return generalized.take(rows)
