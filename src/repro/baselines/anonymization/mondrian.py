"""Mondrian multidimensional k-anonymity (LeFevre et al., ICDE 2006).

Mondrian recursively splits the table on the QID attribute with the widest
normalized range, at the median, as long as both halves keep at least k
records.  Leaf partitions become equivalence classes: every record in a
partition receives the same generalized QID values, so any combination of
QIDs matches at least k records — the k-anonymity guarantee (paper §2.1,
Tables 1–2).

This module produces the *partitioning*; the generalization recoding (and
the l-diversity / t-closeness / δ-disclosure refinements layered on top)
live in their own modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table


@dataclass
class Partition:
    """An equivalence class: row indices plus per-QID value ranges."""

    rows: np.ndarray                 # indices into the source table
    ranges: dict[str, tuple[float, float]]  # QID name -> (lo, hi)

    @property
    def size(self) -> int:
        return int(self.rows.size)


def _qid_ranges(values: np.ndarray, qid_names, qid_idx) -> dict[str, tuple[float, float]]:
    return {
        name: (float(values[:, j].min()), float(values[:, j].max()))
        for name, j in zip(qid_names, qid_idx)
    }


def mondrian_partitions(table: Table, k: int) -> list[Partition]:
    """Split ``table`` into equivalence classes of size >= k over its QIDs.

    Raises ``ValueError`` when the table is smaller than k or has no QIDs.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    qid_names = table.schema.qids
    if not qid_names:
        raise ValueError("schema declares no QID columns to anonymize")
    if table.n_rows < k:
        raise ValueError(f"table has {table.n_rows} rows, fewer than k={k}")

    qid_idx = [table.schema.index(name) for name in qid_names]
    values = table.values
    # Global spans normalize the split-attribute choice.
    spans = np.array(
        [values[:, j].max() - values[:, j].min() or 1.0 for j in qid_idx]
    )

    def split(rows: np.ndarray) -> list[np.ndarray]:
        sub = values[rows]
        widths = np.array(
            [(sub[:, j].max() - sub[:, j].min()) for j in qid_idx]
        ) / spans
        for attr in np.argsort(widths)[::-1]:
            if widths[attr] <= 0:
                break
            col = sub[:, qid_idx[attr]]
            median = np.median(col)
            left = rows[col <= median]
            right = rows[col > median]
            if left.size >= k and right.size >= k:
                return split(left) + split(right)
        return [rows]

    leaves = split(np.arange(table.n_rows))
    return [
        Partition(rows=leaf, ranges=_qid_ranges(values[leaf], qid_names, qid_idx))
        for leaf in leaves
    ]


def merge_partitions(a: Partition, b: Partition) -> Partition:
    """Union of two equivalence classes (used by the refinement passes)."""
    ranges = {
        name: (
            min(a.ranges[name][0], b.ranges[name][0]),
            max(a.ranges[name][1], b.ranges[name][1]),
        )
        for name in a.ranges
    }
    return Partition(rows=np.concatenate([a.rows, b.rows]), ranges=ranges)


def generalize(table: Table, partitions: list[Partition]) -> Table:
    """Recode each record's QIDs to its equivalence class representative.

    Numeric recoding uses the partition's attribute-range midpoint — the
    numeric equivalent of publishing the interval, and what the paper's
    pipeline effectively consumes after label-encoding generalized values
    (§5.2.2 footnote 6).  Sensitive attributes are left untouched, which is
    the property the DCR experiment (Table 5) exposes.
    """
    out = table.values.copy()
    for partition in partitions:
        for name, (lo, hi) in partition.ranges.items():
            out[partition.rows, table.schema.index(name)] = 0.5 * (lo + hi)
    return Table(out, table.schema)


def partition_of_each_row(partitions: list[Partition], n_rows: int) -> np.ndarray:
    """Inverse mapping: row index -> partition index."""
    owner = np.full(n_rows, -1, dtype=np.int64)
    for idx, partition in enumerate(partitions):
        owner[partition.rows] = idx
    if np.any(owner < 0):
        raise ValueError("partitions do not cover all rows")
    return owner
