"""t-closeness (Li et al., ICDE 2007) on top of Mondrian partitions.

An equivalence class is t-close when the distribution of the sensitive
attribute within the class is within Earth Mover's Distance t of its
global distribution — defeating attackers who know global marginals
(paper §2.1).  As in ARX, enforcement does not modify sensitive values;
classes violating the bound are merged until every class complies.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.anonymization.mondrian import Partition, merge_partitions
from repro.data.schema import ColumnKind
from repro.data.table import Table


def _value_distribution(column: np.ndarray, support: np.ndarray) -> np.ndarray:
    counts = np.array([(column == v).sum() for v in support], dtype=np.float64)
    total = counts.sum()
    return counts / total if total > 0 else counts


def emd_ordered(p: np.ndarray, q: np.ndarray) -> float:
    """EMD between two distributions over an ordered support.

    With unit ground distance between adjacent values, the EMD reduces to
    the normalized cumulative-difference sum (the formulation the
    t-closeness paper uses for numeric attributes).
    """
    if p.shape != q.shape:
        raise ValueError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    if p.size <= 1:
        return 0.0
    cum_diff = np.cumsum(p - q)
    return float(np.abs(cum_diff[:-1]).sum() / (p.size - 1))


def emd_categorical(p: np.ndarray, q: np.ndarray) -> float:
    """EMD with uniform ground distance (total variation distance)."""
    if p.shape != q.shape:
        raise ValueError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    return float(0.5 * np.abs(p - q).sum())


def partition_emd(table: Table, partition: Partition, sensitive: str,
                  support: np.ndarray | None = None,
                  global_dist: np.ndarray | None = None) -> float:
    """EMD between a class's sensitive distribution and the global one.

    Numeric attributes are binned onto their sorted distinct values
    (ordered EMD); categorical attributes use the uniform ground distance.
    """
    column = table.column(sensitive)
    if support is None:
        support = np.unique(column)
    if global_dist is None:
        global_dist = _value_distribution(column, support)
    local = _value_distribution(column[partition.rows], support)
    spec = table.schema.spec(sensitive)
    if spec.kind is ColumnKind.CATEGORICAL:
        return emd_categorical(local, global_dist)
    return emd_ordered(local, global_dist)


def is_t_close(table: Table, partitions: list[Partition], sensitive: str,
               t: float) -> bool:
    """Whether every equivalence class is within EMD ``t`` of the global."""
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    column = table.column(sensitive)
    support = np.unique(column)
    global_dist = _value_distribution(column, support)
    return all(
        partition_emd(table, p, sensitive, support, global_dist) <= t
        for p in partitions
    )


def enforce_t_closeness(table: Table, partitions: list[Partition],
                        sensitive: str, t: float) -> list[Partition]:
    """Merge violating classes pairwise (largest EMD first) until t-close.

    Merging always converges: the single all-rows class has EMD zero.
    """
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    column = table.column(sensitive)
    support = np.unique(column)
    global_dist = _value_distribution(column, support)

    working = list(partitions)
    while len(working) > 1:
        emds = np.array([
            partition_emd(table, p, sensitive, support, global_dist)
            for p in working
        ])
        if np.all(emds <= t):
            return working
        worst = int(np.argmax(emds))
        order = np.argsort(emds)[::-1]
        partner = int(order[1]) if int(order[0]) == worst else int(order[0])
        merged = merge_partitions(working[worst], working[partner])
        working = [
            p for i, p in enumerate(working) if i not in (worst, partner)
        ] + [merged]
    return working
