"""ARX substitute: partition-based anonymization models."""

from repro.baselines.anonymization.arx import (
    PAPER_BEST_LACITY,
    PAPER_DISCLOSURE_GRID,
    PAPER_DP_DELTA_GRID,
    PAPER_EPSILON_GRID,
    PAPER_K_GRID,
    PAPER_T_GRID,
    ArxAnonymizer,
    arx_parameter_sweep,
)
from repro.baselines.anonymization.closeness import (
    emd_categorical,
    emd_ordered,
    enforce_t_closeness,
    is_t_close,
    partition_emd,
)
from repro.baselines.anonymization.disclosure import (
    disclosure_gap,
    enforce_delta_disclosure,
    is_delta_disclosure_private,
)
from repro.baselines.anonymization.diversity import (
    distinct_sensitive_values,
    enforce_l_diversity,
    is_l_diverse,
)
from repro.baselines.anonymization.dp import (
    DifferentiallyPrivateRelease,
    dp_parameters,
)
from repro.baselines.anonymization.mondrian import (
    Partition,
    generalize,
    merge_partitions,
    mondrian_partitions,
    partition_of_each_row,
)

__all__ = [
    "ArxAnonymizer",
    "arx_parameter_sweep",
    "PAPER_K_GRID",
    "PAPER_T_GRID",
    "PAPER_EPSILON_GRID",
    "PAPER_DP_DELTA_GRID",
    "PAPER_DISCLOSURE_GRID",
    "PAPER_BEST_LACITY",
    "Partition",
    "mondrian_partitions",
    "generalize",
    "merge_partitions",
    "partition_of_each_row",
    "is_l_diverse",
    "enforce_l_diversity",
    "distinct_sensitive_values",
    "is_t_close",
    "enforce_t_closeness",
    "partition_emd",
    "emd_ordered",
    "emd_categorical",
    "is_delta_disclosure_private",
    "enforce_delta_disclosure",
    "disclosure_gap",
    "DifferentiallyPrivateRelease",
    "dp_parameters",
]
