"""ARX-style anonymization facade.

The paper builds two baselines with the ARX tool (§5.1.3):

* k-anonymity + t-closeness (``method="k_t"``), and
* (ε, d)-differential privacy + δ-disclosure (``method="dp_disclosure"``),

sweeping each tool's parameter grid and keeping the configuration with the
best privacy/compatibility balance.  :class:`ArxAnonymizer` reproduces one
configuration; :data:`PAPER_K_GRID` etc. reproduce the grids of §5.1.5.

All ARX-style methods share the defining property the paper stresses:
**sensitive attributes are never modified** — only QIDs are generalized —
so the sensitive-only DCR of Table 5 is exactly zero.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.anonymization.closeness import enforce_t_closeness
from repro.baselines.anonymization.disclosure import enforce_delta_disclosure
from repro.baselines.anonymization.diversity import enforce_l_diversity
from repro.baselines.anonymization.dp import DifferentiallyPrivateRelease
from repro.baselines.anonymization.mondrian import generalize, mondrian_partitions
from repro.data.table import Table

#: Parameter grids from §5.1.5.
PAPER_K_GRID = (2, 5, 15)
PAPER_T_GRID = (0.01, 0.1, 0.5, 0.9)
PAPER_EPSILON_GRID = (0.01, 0.5, 1, 2, 5)
PAPER_DP_DELTA_GRID = (1e-6, 0.001, 0.1)
PAPER_DISCLOSURE_GRID = (1, 2)

#: The configuration the paper reports as ARX's best balance on LACity
#: (5-anonymity, 0.01-closeness; §5.2.2.1).
PAPER_BEST_LACITY = {"method": "k_t", "k": 5, "t": 0.01}


class ArxAnonymizer:
    """One ARX configuration applied to a Table.

    Parameters
    ----------
    method:
        ``"k_t"`` (k-anonymity + t-closeness), ``"k_l"`` (k-anonymity +
        l-diversity) or ``"dp_disclosure"`` ((ε,d)-DP + δ-disclosure).
    k, t, l:
        Parameters of the partition-based methods.
    epsilon, dp_delta, disclosure_delta:
        Parameters of the DP method.
    sensitive:
        Sensitive attribute the distribution constraints protect; defaults
        to the schema's label column.
    seed:
        Seed for the DP sampling step.
    """

    def __init__(self, method: str = "k_t", k: int = 5, t: float = 0.1,
                 l: int = 2, epsilon: float = 1.0, dp_delta: float = 1e-3,
                 disclosure_delta: float = 1.0, sensitive: str | None = None,
                 seed=None):
        if method not in ("k_t", "k_l", "dp_disclosure"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method
        self.k = k
        self.t = t
        self.l = l
        self.epsilon = epsilon
        self.dp_delta = dp_delta
        self.disclosure_delta = disclosure_delta
        self.sensitive = sensitive
        self.seed = seed

    def _sensitive_column(self, table: Table) -> str:
        if self.sensitive is not None:
            if self.sensitive not in table.schema:
                raise KeyError(f"no column named {self.sensitive!r}")
            return self.sensitive
        if table.schema.label is not None:
            return table.schema.label
        sensitive = table.schema.sensitive
        if not sensitive:
            raise ValueError("schema has no sensitive column to protect")
        return sensitive[0]

    def anonymize(self, table: Table) -> Table:
        """Produce the anonymized table for this configuration."""
        sensitive = self._sensitive_column(table)
        if self.method == "dp_disclosure":
            released = DifferentiallyPrivateRelease(
                self.epsilon, self.dp_delta, seed=self.seed
            ).anonymize(table)
            partitions = mondrian_partitions(released, max(self.k, 2))
            partitions = enforce_delta_disclosure(
                released, partitions, sensitive, self.disclosure_delta
            )
            return generalize(released, partitions)

        partitions = mondrian_partitions(table, self.k)
        if self.method == "k_t":
            partitions = enforce_t_closeness(table, partitions, sensitive, self.t)
        else:
            partitions = enforce_l_diversity(table, partitions, sensitive, self.l)
        return generalize(table, partitions)


def arx_parameter_sweep(method: str = "k_t"):
    """Yield ArxAnonymizer kwargs over the paper's §5.1.5 grids."""
    if method == "k_t":
        for k in PAPER_K_GRID:
            for t in PAPER_T_GRID:
                yield {"method": "k_t", "k": k, "t": t}
    elif method == "dp_disclosure":
        for epsilon in PAPER_EPSILON_GRID:
            for dp_delta in PAPER_DP_DELTA_GRID:
                for disclosure_delta in PAPER_DISCLOSURE_GRID:
                    yield {
                        "method": "dp_disclosure",
                        "epsilon": epsilon,
                        "dp_delta": dp_delta,
                        "disclosure_delta": disclosure_delta,
                    }
    else:
        raise ValueError(f"unknown method {method!r}")
