"""l-diversity (Machanavajjhala et al., 2007) on top of Mondrian partitions.

An equivalence class is l-diverse when its sensitive attribute takes at
least l distinct values, blocking the homogeneity attack (paper §2.1).
``enforce_l_diversity`` greedily merges deficient partitions into their
nearest neighbour until every class satisfies the requirement.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.anonymization.mondrian import Partition, merge_partitions
from repro.data.table import Table


def distinct_sensitive_values(table: Table, partition: Partition, sensitive: str) -> int:
    """Number of distinct values the sensitive attribute takes in a class."""
    column = table.column(sensitive)
    return int(np.unique(column[partition.rows]).size)


def is_l_diverse(table: Table, partitions: list[Partition], sensitive: str, l: int) -> bool:
    """Whether every equivalence class is l-diverse for ``sensitive``."""
    if l < 1:
        raise ValueError(f"l must be at least 1, got {l}")
    return all(
        distinct_sensitive_values(table, p, sensitive) >= l for p in partitions
    )


def _partition_centroid(table: Table, partition: Partition) -> np.ndarray:
    qid_idx = [table.schema.index(name) for name in table.schema.qids]
    return table.values[np.ix_(partition.rows, qid_idx)].mean(axis=0)


def enforce_l_diversity(table: Table, partitions: list[Partition],
                        sensitive: str, l: int) -> list[Partition]:
    """Merge deficient classes with their nearest neighbour until l-diverse.

    Raises ``ValueError`` when the whole table cannot satisfy the
    requirement (fewer than l distinct sensitive values overall).
    """
    if l < 1:
        raise ValueError(f"l must be at least 1, got {l}")
    total = int(np.unique(table.column(sensitive)).size)
    if total < l:
        raise ValueError(
            f"table has only {total} distinct values of {sensitive!r}; "
            f"{l}-diversity is unsatisfiable"
        )
    working = list(partitions)
    while True:
        deficient = [
            i for i, p in enumerate(working)
            if distinct_sensitive_values(table, p, sensitive) < l
        ]
        if not deficient:
            return working
        if len(working) == 1:
            return working  # single class; satisfiable by the guard above
        idx = deficient[0]
        centroids = np.array([_partition_centroid(table, p) for p in working])
        distances = np.linalg.norm(centroids - centroids[idx], axis=1)
        distances[idx] = np.inf
        partner = int(np.argmin(distances))
        merged = merge_partitions(working[idx], working[partner])
        working = [
            p for i, p in enumerate(working) if i not in (idx, partner)
        ] + [merged]
