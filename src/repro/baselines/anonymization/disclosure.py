"""δ-disclosure privacy (Brickell & Shmatikov, KDD 2008).

A partitioning is δ-disclosure-private when, for every equivalence class
and every sensitive value s, the within-class frequency p(s|class) stays
multiplicatively close to the global frequency p(s):
``|log(p(s|class) / p(s))| < δ``.  Like t-closeness it constrains how much
an equivalence class reveals about sensitive attributes without modifying
them (paper §2.1).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.anonymization.mondrian import Partition, merge_partitions
from repro.data.table import Table


def disclosure_gap(table: Table, partition: Partition, sensitive: str,
                   support: np.ndarray | None = None,
                   global_dist: np.ndarray | None = None) -> float:
    """max_s |log(p(s|class) / p(s))| for one equivalence class.

    A sensitive value absent from the class contributes log-ratio of
    -inf in the strict definition; following ARX's practical reading we
    score only values present in the class (absence reveals "not s",
    which the multiplicative bound tolerates for small classes).
    """
    column = table.column(sensitive)
    if support is None:
        support = np.unique(column)
    if global_dist is None:
        counts = np.array([(column == v).sum() for v in support], dtype=np.float64)
        global_dist = counts / counts.sum()
    local_col = column[partition.rows]
    local_counts = np.array([(local_col == v).sum() for v in support], dtype=np.float64)
    local_dist = local_counts / local_counts.sum()
    present = local_dist > 0
    ratios = np.log(local_dist[present] / global_dist[present])
    return float(np.abs(ratios).max()) if present.any() else 0.0


def is_delta_disclosure_private(table: Table, partitions: list[Partition],
                                sensitive: str, delta: float) -> bool:
    """Whether all classes satisfy the δ-disclosure bound."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    column = table.column(sensitive)
    support = np.unique(column)
    counts = np.array([(column == v).sum() for v in support], dtype=np.float64)
    global_dist = counts / counts.sum()
    return all(
        disclosure_gap(table, p, sensitive, support, global_dist) < delta
        for p in partitions
    )


def enforce_delta_disclosure(table: Table, partitions: list[Partition],
                             sensitive: str, delta: float) -> list[Partition]:
    """Merge the worst-gap class with the runner-up until the bound holds."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    column = table.column(sensitive)
    support = np.unique(column)
    counts = np.array([(column == v).sum() for v in support], dtype=np.float64)
    global_dist = counts / counts.sum()

    working = list(partitions)
    while len(working) > 1:
        gaps = np.array([
            disclosure_gap(table, p, sensitive, support, global_dist)
            for p in working
        ])
        if np.all(gaps < delta):
            return working
        worst = int(np.argmax(gaps))
        order = np.argsort(gaps)[::-1]
        partner = int(order[1]) if int(order[0]) == worst else int(order[0])
        merged = merge_partitions(working[worst], working[partner])
        working = [
            p for i, p in enumerate(working) if i not in (worst, partner)
        ] + [merged]
    return working
