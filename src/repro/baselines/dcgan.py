"""DCGAN baseline: table-GAN with both auxiliary losses disabled.

The paper compares against plain DCGAN (§5.1.3) — the same convolutional
architecture trained with only the original adversarial loss, no
information loss and no classifier.  In this codebase that is exactly a
:class:`~repro.core.tablegan.TableGAN` run with the
:func:`~repro.core.config.dcgan_baseline` configuration, so the baseline
is a thin, explicitly named wrapper (it is also the ablation study for
both auxiliary losses).
"""

from __future__ import annotations

from repro.core.config import TableGanConfig, dcgan_baseline
from repro.core.tablegan import TableGAN


class DCGANSynthesizer(TableGAN):
    """Plain DCGAN table synthesizer (no information/classification loss).

    Accepts the same keyword overrides as :class:`TableGanConfig`; the
    ``use_info_loss`` / ``use_classifier`` switches are forced off.
    """

    def __init__(self, config: TableGanConfig | None = None, **overrides):
        if config is None:
            config = dcgan_baseline(**overrides)
        else:
            config = config.with_overrides(
                use_info_loss=False, use_classifier=False, **overrides
            )
        super().__init__(config)
