"""MDAV micro-aggregation (Domingo-Ferrer & Mateo-Sanz, 2002).

Micro-aggregation is sdcMicro's numeric perturbation: records are grouped
into clusters of (at least) k similar records and each QID value is
replaced by its cluster centroid.  MDAV ("maximum distance to average
vector") is the canonical fixed-size heuristic:

1. find the record r furthest from the global centroid; build a cluster
   from r and its k-1 nearest neighbours;
2. find the record s furthest from r; build a cluster around s likewise;
3. repeat on the remainder until fewer than 2k records are left, which
   form the final cluster(s).
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.ml.preprocessing import StandardScaler


def mdav_groups(values: np.ndarray, k: int) -> list[np.ndarray]:
    """Partition row indices of ``values`` into MDAV clusters of size >= k."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    n = values.shape[0]
    if n < k:
        raise ValueError(f"{n} rows is fewer than k={k}")
    scaler = StandardScaler().fit(values)
    X = scaler.transform(values)

    remaining = np.arange(n)
    groups: list[np.ndarray] = []
    while remaining.size >= 3 * k:
        centroid = X[remaining].mean(axis=0)
        r = remaining[np.argmax(np.linalg.norm(X[remaining] - centroid, axis=1))]
        s = remaining[np.argmax(np.linalg.norm(X[remaining] - X[r], axis=1))]
        for anchor in (r, s):
            dist = np.linalg.norm(X[remaining] - X[anchor], axis=1)
            members = remaining[np.argsort(dist)[:k]]
            groups.append(members)
            remaining = np.setdiff1d(remaining, members, assume_unique=True)
    if remaining.size >= 2 * k:
        centroid = X[remaining].mean(axis=0)
        r = remaining[np.argmax(np.linalg.norm(X[remaining] - centroid, axis=1))]
        dist = np.linalg.norm(X[remaining] - X[r], axis=1)
        members = remaining[np.argsort(dist)[:k]]
        groups.append(members)
        remaining = np.setdiff1d(remaining, members, assume_unique=True)
    if remaining.size > 0:
        groups.append(remaining)
    return groups


def microaggregate(table: Table, columns, k: int) -> Table:
    """Replace ``columns`` of ``table`` by MDAV cluster centroids.

    Clustering distance uses only the named columns, so unrelated
    attributes do not distort the grouping.
    """
    idx = [table.schema.index(name) for name in columns]
    if not idx:
        raise ValueError("no columns given to microaggregate")
    values = table.values[:, idx]
    out = table.values.copy()
    for members in mdav_groups(values, k):
        out[np.ix_(members, idx)] = values[members].mean(axis=0)
    return Table(out, table.schema)
