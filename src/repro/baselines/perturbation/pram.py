"""Post-RAndomization Method (PRAM) for categorical attributes.

PRAM perturbs a categorical column through a Markov transition matrix:
each value is kept with probability ``pd`` and otherwise re-drawn from the
empirical distribution of the other categories.  It is sdcMicro's
mechanism for sensitive categorical attributes (paper §2.1 notes PRAM
"mainly aims at modifying sensitive attributes").
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind
from repro.data.table import Table
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability


def pram_transition_matrix(frequencies: np.ndarray, pd: float) -> np.ndarray:
    """Build the PRAM transition matrix for retention probability ``pd``.

    Row i: stay at i with probability ``pd``; move to j != i with
    probability proportional to j's empirical frequency.  Each row sums
    to one.
    """
    check_probability(pd, "pd")
    frequencies = np.asarray(frequencies, dtype=np.float64)
    if frequencies.ndim != 1 or frequencies.size < 1:
        raise ValueError("frequencies must be a non-empty vector")
    n = frequencies.size
    if n == 1:
        return np.ones((1, 1))
    matrix = np.empty((n, n))
    for i in range(n):
        others = frequencies.copy()
        others[i] = 0.0
        total = others.sum()
        if total == 0:
            row = np.full(n, (1.0 - pd) / (n - 1))
        else:
            row = (1.0 - pd) * others / total
        row[i] = pd
        matrix[i] = row
    return matrix


def pram_column(column: np.ndarray, pd: float, rng=None) -> np.ndarray:
    """Apply PRAM to one integer-coded categorical column."""
    rng = ensure_rng(rng)
    codes = np.rint(np.asarray(column, dtype=np.float64)).astype(int)
    support, counts = np.unique(codes, return_counts=True)
    matrix = pram_transition_matrix(counts.astype(np.float64), pd)
    index_of = {v: i for i, v in enumerate(support)}
    out = np.empty_like(column, dtype=np.float64)
    for pos, code in enumerate(codes):
        row = matrix[index_of[code]]
        out[pos] = support[rng.choice(support.size, p=row)]
    return out


def pram_table(table: Table, columns, pd: float, rng=None) -> Table:
    """Apply PRAM to the named categorical/discrete columns of ``table``."""
    rng = ensure_rng(rng)
    out = table.values.copy()
    for name in columns:
        spec = table.schema.spec(name)
        if spec.kind is ColumnKind.CONTINUOUS:
            raise ValueError(f"PRAM applies to categorical columns; {name!r} is continuous")
        j = table.schema.index(name)
        out[:, j] = pram_column(out[:, j], pd, rng)
    return Table(out, table.schema)
