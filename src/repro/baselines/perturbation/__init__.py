"""sdcMicro substitute: micro-aggregation and PRAM perturbation."""

from repro.baselines.perturbation.microaggregation import mdav_groups, microaggregate
from repro.baselines.perturbation.pram import (
    pram_column,
    pram_table,
    pram_transition_matrix,
)
from repro.baselines.perturbation.sdcmicro import (
    PAPER_ALPHA_GRID,
    PAPER_PD_GRID,
    SdcMicroPerturber,
    sdcmicro_parameter_sweep,
)

__all__ = [
    "mdav_groups",
    "microaggregate",
    "pram_transition_matrix",
    "pram_column",
    "pram_table",
    "SdcMicroPerturber",
    "sdcmicro_parameter_sweep",
    "PAPER_PD_GRID",
    "PAPER_ALPHA_GRID",
]
