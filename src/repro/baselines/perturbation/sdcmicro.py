"""sdcMicro-style perturbation facade.

The paper's perturbation baseline uses sdcMicro's micro-aggregation for
QIDs and PRAM for sensitive attributes (§5.1.3), sweeping
``pd ∈ {0.01, 0.5, 1}`` and ``alpha ∈ {0.01, 0.5, 1}`` (§5.1.5).

Mapping onto sdcMicro's semantics:

* QIDs are micro-aggregated with MDAV (group size ``k``);
* sensitive categorical/discrete attributes go through PRAM with
  retention probability ``pd``;
* sensitive continuous attributes receive correlated additive noise at
  level ``alpha`` (sdcMicro's ``addNoise`` perturbs sensitive numerics —
  "sdcMicro perturbs sensitive attributes as well").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.perturbation.microaggregation import microaggregate
from repro.baselines.perturbation.pram import pram_table
from repro.data.schema import ColumnKind
from repro.data.table import Table
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability

#: Parameter grids from §5.1.5.
PAPER_PD_GRID = (0.01, 0.5, 1.0)
PAPER_ALPHA_GRID = (0.01, 0.5, 1.0)


class SdcMicroPerturber:
    """One sdcMicro configuration applied to a Table.

    Parameters
    ----------
    pd:
        PRAM retention probability for sensitive categorical attributes
        (1.0 = unchanged, 0.0 = always re-drawn).
    alpha:
        Additive-noise level for sensitive continuous attributes, as a
        fraction of each column's standard deviation.
    k:
        MDAV group size for QID micro-aggregation.
    seed:
        Seed for PRAM draws and noise.
    """

    def __init__(self, pd: float = 0.5, alpha: float = 0.5, k: int = 3, seed=None):
        check_probability(pd, "pd")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.pd = pd
        self.alpha = alpha
        self.k = k
        self.seed = seed

    def perturb(self, table: Table) -> Table:
        """Produce the perturbed table for this configuration."""
        rng = ensure_rng(self.seed)
        schema = table.schema

        out = table
        if schema.qids:
            out = microaggregate(out, schema.qids, self.k)

        categorical_sensitive = [
            name for name in schema.sensitive
            if schema.spec(name).kind in (ColumnKind.CATEGORICAL, ColumnKind.DISCRETE)
            and name != schema.label
        ]
        if categorical_sensitive and self.pd < 1.0:
            out = pram_table(out, categorical_sensitive, self.pd, rng)

        continuous_sensitive = [
            name for name in schema.sensitive
            if schema.spec(name).kind is ColumnKind.CONTINUOUS
        ]
        if continuous_sensitive and self.alpha > 0:
            values = out.values.copy()
            for name in continuous_sensitive:
                j = schema.index(name)
                std = values[:, j].std()
                values[:, j] = values[:, j] + rng.normal(
                    0.0, self.alpha * std, size=values.shape[0]
                )
            out = Table(values, schema)
        return out


def sdcmicro_parameter_sweep():
    """Yield SdcMicroPerturber kwargs over the paper's §5.1.5 grids."""
    for pd in PAPER_PD_GRID:
        for alpha in PAPER_ALPHA_GRID:
            yield {"pd": pd, "alpha": alpha}
