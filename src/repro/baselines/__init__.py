"""Baseline methods the paper compares table-GAN against (§5.1.3).

* :class:`DCGANSynthesizer` — plain DCGAN (no auxiliary losses);
* :class:`CondensationSynthesizer` — group-statistics synthesis [8];
* :mod:`repro.baselines.anonymization` — ARX substitute (k-anonymity,
  l-diversity, t-closeness, δ-disclosure, (ε,d)-DP);
* :mod:`repro.baselines.perturbation` — sdcMicro substitute
  (micro-aggregation + PRAM + additive noise).
"""

from repro.baselines.anonymization import ArxAnonymizer, arx_parameter_sweep
from repro.baselines.condensation import CondensationSynthesizer
from repro.baselines.dcgan import DCGANSynthesizer
from repro.baselines.perturbation import SdcMicroPerturber, sdcmicro_parameter_sweep

__all__ = [
    "DCGANSynthesizer",
    "CondensationSynthesizer",
    "ArxAnonymizer",
    "arx_parameter_sweep",
    "SdcMicroPerturber",
    "sdcmicro_parameter_sweep",
]
