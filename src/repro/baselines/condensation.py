"""The condensation method (Aggarwal & Yu, EDBT 2004) — baseline [8].

Condensation groups records into clusters of a fixed size k, keeps only
per-group first- and second-order statistics (mean vector and covariance),
and synthesizes new records from those statistics under a multivariate
Gaussian assumption.  The paper runs it with group sizes 100 and 50 and
finds its synthesis quality the weakest of all methods — the statistical
assumptions ignore semantic integrity, which is exactly the failure mode
table-GAN's classifier network addresses.

Grouping here follows the original paper's spirit: records are clustered
greedily around random seeds by nearest-neighbour distance in the
normalized attribute space, each cluster absorbing exactly ``group_size``
records.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind
from repro.data.table import Table
from repro.ml.preprocessing import MinMaxScaler
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class CondensationSynthesizer:
    """Group-statistics synthesizer.

    Parameters
    ----------
    group_size:
        Records per condensation group (the paper tests 100 and 50).
    seed:
        Seed for group seeding and sampling.
    """

    def __init__(self, group_size: int = 50, seed=None):
        if group_size < 2:
            raise ValueError(f"group_size must be at least 2, got {group_size}")
        self.group_size = group_size
        self.seed = seed
        self.groups_: list[dict] | None = None
        self.schema_ = None
        self.scaler_: MinMaxScaler | None = None

    def fit(self, table: Table) -> "CondensationSynthesizer":
        """Partition ``table`` into size-k groups and record their statistics."""
        if table.n_rows < self.group_size:
            raise ValueError(
                f"table has {table.n_rows} rows, fewer than group_size "
                f"{self.group_size}"
            )
        rng = ensure_rng(self.seed)
        self.schema_ = table.schema
        self.scaler_ = MinMaxScaler().fit(table.values)
        normalized = self.scaler_.transform(table.values)

        remaining = np.arange(table.n_rows)
        self.groups_ = []
        while remaining.size >= self.group_size:
            seed_pos = int(rng.integers(0, remaining.size))
            seed_row = normalized[remaining[seed_pos]]
            distances = np.linalg.norm(normalized[remaining] - seed_row, axis=1)
            nearest = np.argsort(distances)[: self.group_size]
            members = remaining[nearest]
            self._record_group(table.values[members])
            remaining = np.delete(remaining, nearest)
        if remaining.size > 0:
            # Leftover rows join as a final (smaller) group.
            self._record_group(table.values[remaining])
        return self

    def _record_group(self, rows: np.ndarray) -> None:
        mean = rows.mean(axis=0)
        centered = rows - mean
        cov = centered.T @ centered / max(rows.shape[0] - 1, 1)
        self.groups_.append({"mean": mean, "cov": cov, "count": rows.shape[0]})

    def sample(self, n: int, rng=None) -> Table:
        """Draw ``n`` synthetic rows from the per-group Gaussian models."""
        check_fitted(self, "groups_")
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        rng = ensure_rng(rng if rng is not None else self.seed)
        counts = np.array([g["count"] for g in self.groups_], dtype=np.float64)
        probs = counts / counts.sum()
        choices = rng.choice(len(self.groups_), size=n, p=probs)

        out = np.empty((n, self.schema_.n_columns))
        for group_idx in np.unique(choices):
            rows = np.flatnonzero(choices == group_idx)
            group = self.groups_[group_idx]
            out[rows] = self._sample_group(group, rows.size, rng)
        return self._conform(out)

    def _sample_group(self, group: dict, count: int, rng) -> np.ndarray:
        """Multivariate normal sampling via eigen-decomposition (PSD-safe)."""
        eigvals, eigvecs = np.linalg.eigh(group["cov"])
        eigvals = np.clip(eigvals, 0.0, None)
        transform = eigvecs * np.sqrt(eigvals)[None, :]
        noise = rng.standard_normal((count, eigvals.size))
        return group["mean"][None, :] + noise @ transform.T

    def _conform(self, values: np.ndarray) -> Table:
        """Clip to the training range and restore discrete/categorical types."""
        lo = self.scaler_.min_
        hi = self.scaler_.min_ + self.scaler_.span_
        values = np.clip(values, lo[None, :], hi[None, :])
        for j, spec in enumerate(self.schema_.columns):
            if spec.kind in (ColumnKind.DISCRETE, ColumnKind.CATEGORICAL):
                values[:, j] = np.rint(values[:, j])
            if spec.kind is ColumnKind.CATEGORICAL:
                values[:, j] = np.clip(values[:, j], 0, spec.n_categories - 1)
        return Table(values, self.schema_)
