"""Plain-text rendering of tables and figure series for the benchmarks.

Every benchmark prints the paper's artifact (table rows or figure series)
next to the measured values, so EXPERIMENTS.md can be assembled directly
from bench output.
"""

from __future__ import annotations

import numpy as np


def format_table(headers, rows, title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_cdf_series(comparison, n_rows: int = 11) -> str:
    """Render a CdfComparison as a compact (x, original, released) listing."""
    picks = np.linspace(0, comparison.grid.size - 1, n_rows).astype(int)
    rows = [
        (f"{comparison.grid[i]:.2f}",
         f"{comparison.cdf_original[i]:.3f}",
         f"{comparison.cdf_released[i]:.3f}")
        for i in picks
    ]
    table = format_table(
        ["x (normalized)", "original CDF", "released CDF"],
        rows,
        title=(
            f"attribute={comparison.attribute}  "
            f"KS={comparison.ks_statistic:.3f}  area={comparison.area_distance:.3f}"
        ),
    )
    return table


def format_scatter_summary(report, label: str) -> str:
    """Summarize a CompatibilityReport the way the paper's figures read."""
    rows = []
    for algorithm, points in sorted(report.by_algorithm().items()):
        xs = [p.score_original for p in points]
        ys = [p.score_released for p in points]
        gaps = [p.gap for p in points]
        rows.append((
            algorithm,
            f"{np.mean(xs):.3f}",
            f"{np.mean(ys):.3f}",
            f"{np.mean(gaps):.3f}",
            f"{np.max(gaps):.3f}",
        ))
    rows.append((
        "ALL",
        "", "",
        f"{report.mean_gap:.3f}",
        f"{report.max_gap:.3f}",
    ))
    return format_table(
        ["algorithm", f"mean {report.metric} (orig)",
         f"mean {report.metric} (released)", "mean |gap|", "max |gap|"],
        rows,
        title=label,
    )


def banner(text: str) -> str:
    """Section banner used by the benchmark harness output."""
    bar = "=" * max(len(text), 8)
    return f"\n{bar}\n{text}\n{bar}"
