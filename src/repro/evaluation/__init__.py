"""Evaluation harness: statistical similarity and model compatibility."""

from repro.evaluation.compatibility import (
    CompatibilityPoint,
    CompatibilityReport,
    classification_compatibility,
    classifier_suite,
    regression_compatibility,
    regressor_suite,
)
from repro.evaluation.correlation import (
    correlation_distance,
    correlation_matrix,
    label_correlation_gap,
)
from repro.evaluation.reporting import (
    banner,
    format_cdf_series,
    format_scatter_summary,
    format_table,
)
from repro.evaluation.statistical import (
    CdfComparison,
    compare_all_sensitive,
    compare_cdf,
    empirical_cdf,
    mean_area_distance,
)

__all__ = [
    "compare_cdf",
    "compare_all_sensitive",
    "mean_area_distance",
    "empirical_cdf",
    "CdfComparison",
    "correlation_matrix",
    "correlation_distance",
    "label_correlation_gap",
    "classification_compatibility",
    "regression_compatibility",
    "classifier_suite",
    "regressor_suite",
    "CompatibilityPoint",
    "CompatibilityReport",
    "format_table",
    "format_cdf_series",
    "format_scatter_summary",
    "banner",
]
