"""Model compatibility: the paper's core utility test (Figures 5 and 6).

Protocol (§5.1.2, §5.2.2): fix a learning algorithm and a parameter setup;
train once on the original table and once on the released
(anonymized/perturbed/synthesized) table; score both on the same held-out
test records; plot the (x, y) score pair.  Points on the diagonal mean the
released table trains models exactly like the original — perfect model
compatibility.  Grid search is deliberately excluded.

The suites reproduce the paper's sweep: 4 classifiers × 10 parameter
setups (decision tree, random forest, AdaBoost, multi-layer perceptron)
scored by F-1, and 4 regressors × 10 setups (linear, Lasso,
passive-aggressive, Huber) scored by MRE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.ml.base import clone
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import (
    HuberRegressor,
    Lasso,
    LinearRegression,
    PassiveAggressiveRegressor,
)
from repro.ml.metrics import f1_score, mean_relative_error
from repro.ml.mlp import MLPClassifier
from repro.ml.tree import DecisionTreeClassifier


@dataclass(frozen=True)
class CompatibilityPoint:
    """One (x, y) point of Figure 5/6: same algorithm+params, two tables."""

    algorithm: str
    params: dict
    score_original: float
    score_released: float

    @property
    def gap(self) -> float:
        """Vertical distance to the perfect-compatibility diagonal."""
        return abs(self.score_original - self.score_released)


@dataclass(frozen=True)
class CompatibilityReport:
    """All sweep points plus aggregate diagonal statistics."""

    points: list
    metric: str

    @property
    def mean_gap(self) -> float:
        return float(np.mean([p.gap for p in self.points]))

    @property
    def max_gap(self) -> float:
        return float(np.max([p.gap for p in self.points]))

    def by_algorithm(self) -> dict[str, list]:
        out: dict[str, list] = {}
        for p in self.points:
            out.setdefault(p.algorithm, []).append(p)
        return out


def classifier_suite(seed: int = 0) -> list[tuple[str, object, dict]]:
    """The 4×10 classifier sweep of Figure 5 (40 configurations)."""
    suite = []
    for depth in (2, 3, 4, 5, 6, 8, 10, 12, 16, None):
        suite.append((
            "decision_tree",
            DecisionTreeClassifier(seed=seed),
            {"max_depth": depth},
        ))
    for n_estimators, depth in (
        (5, 4), (10, 4), (20, 4), (5, 8), (10, 8),
        (20, 8), (30, 8), (10, None), (20, None), (30, None),
    ):
        suite.append((
            "random_forest",
            RandomForestClassifier(seed=seed),
            {"n_estimators": n_estimators, "max_depth": depth},
        ))
    for n_estimators, lr in (
        (10, 1.0), (20, 1.0), (30, 1.0), (50, 1.0), (20, 0.5),
        (30, 0.5), (50, 0.5), (20, 0.1), (30, 0.1), (50, 0.1),
    ):
        suite.append((
            "adaboost",
            AdaBoostClassifier(seed=seed),
            {"n_estimators": n_estimators, "learning_rate": lr},
        ))
    for hidden, lr in (
        ((16,), 1e-3), ((32,), 1e-3), ((64,), 1e-3), ((32, 16), 1e-3),
        ((64, 32), 1e-3), ((16,), 1e-2), ((32,), 1e-2), ((32, 16), 1e-2),
        ((64,), 3e-3), ((64, 32), 3e-3),
    ):
        suite.append((
            "mlp",
            MLPClassifier(epochs=30, seed=seed),
            {"hidden_sizes": hidden, "lr": lr},
        ))
    return suite


def regressor_suite(seed: int = 0) -> list[tuple[str, object, dict]]:
    """The 4×10 regressor sweep of Figure 6 (40 configurations)."""
    suite = []
    # Linear regression has no hyper-parameters; the paper's 10 setups vary
    # scikit-learn knobs that do not change the closed-form fit, so we run
    # 10 identical fits for sweep-shape parity.
    for _ in range(10):
        suite.append(("linear", LinearRegression(), {}))
    for alpha in (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0):
        suite.append(("lasso", Lasso(), {"alpha": alpha}))
    for c, eps in (
        (0.01, 0.1), (0.1, 0.1), (1.0, 0.1), (10.0, 0.1), (0.1, 0.01),
        (1.0, 0.01), (10.0, 0.01), (0.1, 0.5), (1.0, 0.5), (10.0, 0.5),
    ):
        suite.append((
            "passive_aggressive",
            PassiveAggressiveRegressor(seed=seed),
            {"C": c, "epsilon": eps},
        ))
    for delta in (0.5, 0.8, 1.0, 1.2, 1.35, 1.5, 2.0, 2.5, 3.0, 5.0):
        suite.append(("huber", HuberRegressor(), {"delta": delta}))
    return suite


def _run_suite(suite, fit_score_fn) -> list[CompatibilityPoint]:
    points = []
    for algorithm, prototype, params in suite:
        score_orig, score_rel = fit_score_fn(prototype, params)
        points.append(CompatibilityPoint(algorithm, params, score_orig, score_rel))
    return points


def classification_compatibility(original: Table, released: Table, test: Table,
                                 suite=None) -> CompatibilityReport:
    """F-1 score pairs for the classification sweep (Figure 5).

    ``original``/``released`` are the two training tables; ``test`` holds
    the unknown records both models are scored on.
    """
    suite = suite if suite is not None else classifier_suite()
    x_orig, y_orig = original.features_and_label()
    x_rel, y_rel = released.features_and_label()
    x_test, y_test = test.features_and_label()

    def fit_score(prototype, params):
        model_o = clone(prototype).set_params(**params)
        model_o.fit(x_orig, y_orig)
        model_r = clone(prototype).set_params(**params)
        model_r.fit(x_rel, y_rel)
        return (
            f1_score(y_test, model_o.predict(x_test)),
            f1_score(y_test, model_r.predict(x_test)),
        )

    return CompatibilityReport(points=_run_suite(suite, fit_score), metric="f1")


def regression_compatibility(original: Table, released: Table, test: Table,
                             suite=None) -> CompatibilityReport:
    """MRE pairs for the regression sweep (Figure 6)."""
    if original.schema.regression_target is None:
        raise ValueError("dataset has no regression target (e.g. Health)")
    suite = suite if suite is not None else regressor_suite()
    x_orig, y_orig = original.features_and_target()
    x_rel, y_rel = released.features_and_target()
    x_test, y_test = test.features_and_target()

    def fit_score(prototype, params):
        model_o = clone(prototype).set_params(**params)
        model_o.fit(x_orig, y_orig)
        model_r = clone(prototype).set_params(**params)
        model_r.fit(x_rel, y_rel)
        return (
            mean_relative_error(y_test, model_o.predict(x_test)),
            mean_relative_error(y_test, model_r.predict(x_test)),
        )

    return CompatibilityReport(points=_run_suite(suite, fit_score), metric="mre")
