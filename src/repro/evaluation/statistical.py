"""Statistical similarity: cumulative-distribution comparison (Figures 4/7/8).

The paper overlays the empirical CDF of each sensitive attribute in the
original table (blue) against the released table (orange) on normalized
axes.  This module computes those series plus scalar discrepancy summaries
(Kolmogorov–Smirnov statistic and area between CDFs) so benches can
compare methods without rendering plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table


@dataclass(frozen=True)
class CdfComparison:
    """CDFs of one attribute evaluated on a shared normalized grid."""

    attribute: str
    grid: np.ndarray        # normalized [0, 1] value grid
    cdf_original: np.ndarray
    cdf_released: np.ndarray
    ks_statistic: float     # max vertical gap
    area_distance: float    # integral of the vertical gap over the grid

    def series(self) -> list[tuple[float, float, float]]:
        """(x, original, released) triples for plotting or reporting."""
        return [
            (float(x), float(o), float(r))
            for x, o, r in zip(self.grid, self.cdf_original, self.cdf_released)
        ]


def empirical_cdf(values: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """P(X <= g) for each grid point g (all zeros for an empty sample)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return np.zeros(np.asarray(grid).shape, dtype=np.float64)
    return np.searchsorted(values, grid, side="right") / values.size


def compare_cdf(original: Table, released: Table, attribute: str,
                n_points: int = 100) -> CdfComparison:
    """Compare one attribute's CDF between two tables on a common grid.

    The grid spans the union of both value ranges and is normalized to
    [0, 1] (the paper normalizes the x-axes of Figure 4).
    """
    if n_points < 2:
        raise ValueError(f"n_points must be at least 2, got {n_points}")
    a = original.column(attribute)
    b = released.column(attribute)
    pooled = np.concatenate([a, b])
    if pooled.size == 0:
        lo, hi = 0.0, 1.0
    else:
        lo = float(pooled.min())
        hi = float(pooled.max())
    if hi == lo:
        hi = lo + 1.0
    raw_grid = np.linspace(lo, hi, n_points)
    cdf_a = empirical_cdf(a, raw_grid)
    cdf_b = empirical_cdf(b, raw_grid)
    gap = np.abs(cdf_a - cdf_b)
    return CdfComparison(
        attribute=attribute,
        grid=(raw_grid - lo) / (hi - lo),
        cdf_original=cdf_a,
        cdf_released=cdf_b,
        ks_statistic=float(gap.max()),
        area_distance=float(np.trapezoid(gap, dx=1.0 / (n_points - 1))),
    )


def compare_binned(attribute: str, counts_original, counts_released) -> CdfComparison:
    """CDF comparison from two aligned histogram count vectors.

    The online drift scorer holds fixed-bin counts rather than raw values;
    this is :func:`compare_cdf` restated on the bin grid.  An empty side
    (zero total count) contributes an all-zero CDF, so the KS statistic
    against a populated side saturates at 1.0 — never NaN.
    """
    a = np.asarray(counts_original, dtype=np.float64)
    b = np.asarray(counts_released, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError(
            f"count vectors must be equal-length 1-D, got {a.shape}/{b.shape}")
    total_a, total_b = a.sum(), b.sum()
    cdf_a = a.cumsum() / total_a if total_a > 0 else np.zeros_like(a)
    cdf_b = b.cumsum() / total_b if total_b > 0 else np.zeros_like(b)
    gap = np.abs(cdf_a - cdf_b)
    n = a.size
    area = float(np.trapezoid(gap, dx=1.0 / (n - 1))) if n > 1 else float(gap[0])
    return CdfComparison(
        attribute=attribute,
        grid=np.linspace(0.0, 1.0, n),
        cdf_original=cdf_a,
        cdf_released=cdf_b,
        ks_statistic=float(gap.max()),
        area_distance=area,
    )


def compare_all_sensitive(original: Table, released: Table,
                          n_points: int = 100) -> dict[str, CdfComparison]:
    """CDF comparisons for every sensitive attribute (Figures 7/8 scope)."""
    return {
        name: compare_cdf(original, released, name, n_points)
        for name in original.schema.sensitive
    }


def mean_area_distance(original: Table, released: Table) -> float:
    """Average CDF area distance over sensitive attributes.

    A single-number proxy for "how close are the orange and blue curves"
    across a whole figure panel; smaller is better.
    """
    comparisons = compare_all_sensitive(original, released)
    if not comparisons:
        return 0.0
    return float(np.mean([c.area_distance for c in comparisons.values()]))
