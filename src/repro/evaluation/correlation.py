"""Correlation-structure similarity between original and released tables.

CDF comparisons (Figures 4/7/8) only check *marginal* distributions; the
semantic-integrity argument of §4.1.3 is about *joint* structure (e.g.
cholesterol level vs. diabetes label).  This module scores how well a
released table preserves the original's pairwise Pearson correlation
matrix — the signal condensation's group-Gaussian model keeps only within
groups and plain DCGAN frequently loses, and the table-GAN classifier
network explicitly reinforces for the label column.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table


def correlation_matrix(table: Table) -> np.ndarray:
    """Pearson correlation matrix of a table's columns.

    Constant columns (zero variance) get zero correlation against
    everything and unit self-correlation, keeping the matrix finite where
    ``numpy.corrcoef`` would emit NaNs.
    """
    values = table.values
    std = values.std(axis=0)
    safe = std.copy()
    safe[safe == 0] = 1.0
    centered = (values - values.mean(axis=0)) / safe
    corr = centered.T @ centered / values.shape[0]
    constant = std == 0
    corr[constant, :] = 0.0
    corr[:, constant] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def correlation_distance(original: Table, released: Table) -> float:
    """Mean absolute difference of off-diagonal correlations.

    0 means the released table preserves the original's pairwise linear
    structure exactly; values approach ~0.5+ for structure-free noise.
    """
    if original.schema != released.schema:
        raise ValueError("original and released tables must share a schema")
    a = correlation_matrix(original)
    b = correlation_matrix(released)
    mask = ~np.eye(a.shape[0], dtype=bool)
    return float(np.mean(np.abs(a - b)[mask]))


def label_correlation_gap(original: Table, released: Table) -> float:
    """Mean absolute difference of each feature's correlation with the label.

    The focused version of :func:`correlation_distance` for the
    semantic-integrity claim: did the released table keep the
    feature-label relationships the classifier network is supposed to
    protect?
    """
    if original.schema != released.schema:
        raise ValueError("original and released tables must share a schema")
    label = original.schema.label
    if label is None:
        raise ValueError("schema has no label column")
    idx = original.schema.index(label)
    a = correlation_matrix(original)[idx]
    b = correlation_matrix(released)[idx]
    mask = np.ones(a.size, dtype=bool)
    mask[idx] = False
    return float(np.mean(np.abs(a - b)[mask]))
