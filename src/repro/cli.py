"""Command-line interface: train, sample, evaluate, and attack from a shell.

Examples
--------
::

    python -m repro datasets
    python -m repro train --dataset adult --rows 1000 --epochs 15 \
        --privacy low --model /tmp/adult.npz --register adult-low
    python -m repro sample --dataset adult --rows 1000 --model /tmp/adult.npz \
        -n 500 --out /tmp/synthetic.csv
    python -m repro evaluate --dataset lacity --rows 800 --epochs 15
    python -m repro attack --dataset adult --rows 800 --epochs 10
    python -m repro serve-registry
    python -m repro synth --model-name adult-low -n 1000000 --workers 4 \
        --out /tmp/rows.csv
    python -m repro serve --registry model-registry --port 8000
    python -m repro serve --port 8000 --trace-log /tmp/spans.jsonl
    python -m repro trace /tmp/spans.jsonl
    python -m repro quality adult-low --url http://127.0.0.1:8000

``train``/``sample``/``evaluate``/``attack`` regenerate the dataset
deterministically from ``--dataset``, ``--rows`` and ``--seed``, so a saved
generator can be reloaded against the exact table it was trained on.  The
serving verbs (``serve-registry``, ``synth``, ``serve``) need no dataset at
all: the model registry persists schema and codec state alongside the
weights.  ``serve`` runs the long-lived HTTP server until SIGTERM/SIGINT,
then drains in-flight requests before exiting.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time

import numpy as np

from repro import TableGAN, TableGanConfig, high_privacy, low_privacy, mid_privacy
from repro.core.checkpoint import TrainerCheckpointer, TrainingInterrupted
from repro.data.datasets import DATASET_NAMES, DEFAULT_ROWS, PAPER_ROWS, load_dataset
from repro.data.io import write_csv
from repro.evaluation import classification_compatibility, mean_area_distance
from repro.evaluation.compatibility import classifier_suite
from repro.evaluation.reporting import format_table
from repro.obs import trace
from repro.privacy import MembershipAttack, dcr, dcr_sensitive_only
from repro.serve import (
    CsvSink,
    ModelRegistry,
    NpzSink,
    ShardedSampler,
    SynthesisServer,
    split_ref,
)

_PRIVACY_PRESETS = {"low": low_privacy, "mid": mid_privacy, "high": high_privacy}

#: Default registry root for the serving verbs.
DEFAULT_REGISTRY = "model-registry"


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASET_NAMES, default="adult",
                        help="dataset to generate (default: adult)")
    parser.add_argument("--rows", type=int, default=None,
                        help="rows to generate before the 80/20 split")
    parser.add_argument("--seed", type=int, default=7, help="global seed")


def _add_training_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--privacy", choices=sorted(_PRIVACY_PRESETS), default="low",
                        help="privacy preset: delta thresholds of Eq. 4")
    parser.add_argument("--epochs", type=int, default=15)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--base-channels", type=int, default=16)
    parser.add_argument("--layout", choices=("square", "vector"), default="square",
                        help="record layout (§3.2); 'vector' is the 1-D ablation")


def _config_from_args(args) -> TableGanConfig:
    return _PRIVACY_PRESETS[args.privacy](
        epochs=args.epochs,
        batch_size=args.batch_size,
        base_channels=args.base_channels,
        layout=args.layout,
        seed=args.seed,
    )


def _load_bundle(args):
    return load_dataset(args.dataset, rows=args.rows, seed=args.seed)


def cmd_datasets(args) -> int:
    """List datasets with their paper-scale and default row counts."""
    rows = [
        (name, str(PAPER_ROWS[name]), str(DEFAULT_ROWS[name]))
        for name in DATASET_NAMES
    ]
    print(format_table(["dataset", "paper rows", "default rows"], rows))
    return 0


def cmd_train(args) -> int:
    """Train a table-GAN, save the generator, and/or register it for serving."""
    registry = ModelRegistry(args.registry) if args.register else None
    if registry is not None:
        # Validate the reference now: a bad --register must fail in
        # milliseconds, not after the whole training run.
        register_name, register_version = split_ref(args.register)
        if (register_version is not None
                and registry.path_for(args.register).exists()):
            print(f"model {args.register!r} is already registered in "
                  f"{registry.root}; versions are immutable — pick a new "
                  "version or `serve-registry --delete` the old one first")
            return 1
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir (where the snapshots live)")
        return 1
    bundle = _load_bundle(args)
    print(f"training table-GAN on {args.dataset} ({bundle.train.n_rows} rows, "
          f"{args.privacy} privacy, layout={args.layout}) ...")
    gan = TableGAN(_config_from_args(args))

    checkpointer = None
    previous_handlers: dict[int, object] = {}
    if args.checkpoint_dir:
        checkpointer = TrainerCheckpointer(args.checkpoint_dir,
                                           every_batches=args.checkpoint_every)
        if not args.resume:
            # A fresh run must not silently continue a stale snapshot left
            # by an earlier run in the same directory.
            for path in (checkpointer.latest_path, checkpointer.prev_path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        if threading.current_thread() is threading.main_thread():
            # SIGTERM/SIGINT become checkpoint-and-exit: the loop finishes
            # its current batch, saves, and raises TrainingInterrupted.
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers[signum] = signal.signal(
                    signum, lambda *_: checkpointer.request_stop()
                )
    try:
        gan.fit(bundle.train, on_epoch_end=lambda i, l: print(
            f"  epoch {i + 1:3d}: D={l.d_loss:.3f} G_adv={l.g_adv_loss:.3f} "
            f"G_info={l.g_info_loss:.3f} G_class={l.g_class_loss:.3f}"
        ), checkpointer=checkpointer, workers=args.workers,
            grad_shards=args.grad_shards)
    except TrainingInterrupted as stop:
        print(f"interrupted: checkpoint saved to {stop.path} "
              f"(epoch {stop.epoch}, batch offset {stop.batch_start}); "
              "rerun with --resume to continue", flush=True)
        return 0
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    print(f"trained in {gan.train_seconds_:.1f}s")
    if args.model:
        gan.save(args.model)
        print(f"generator saved to {args.model}")
    if registry is not None:
        # Unversioned names behave like a mutable "current model" slot;
        # explicit versions are immutable — re-registering one is refused
        # (the registry raises) so a pinned rollback can never be
        # silently clobbered by a re-run.
        # The training table's per-column statistics are frozen into the
        # manifest here: they are the reference every serving-time drift
        # score compares against (`GET /models/{ref}/quality`).
        from repro.obs.quality import reference_stats

        registry.register(register_name, gan,
                          overwrite=register_version is None,
                          version=register_version,
                          reference_stats=reference_stats(bundle.train))
        print(f"registered as {args.register!r} in {registry.root} "
              "(reference stats frozen for drift scoring)")
    return 0


def cmd_sample(args) -> int:
    """Load a saved generator and write synthetic rows to CSV."""
    bundle = _load_bundle(args)
    gan = TableGAN(_config_from_args(args))
    gan.load_generator(args.model, bundle.train)
    synthetic = gan.sample(args.n, rng=np.random.default_rng(args.seed))
    write_csv(synthetic, args.out)
    print(f"wrote {synthetic.n_rows} synthetic rows to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    """Train, sample, and print the three-axis evaluation summary."""
    bundle = _load_bundle(args)
    gan = TableGAN(_config_from_args(args))
    print(f"training on {args.dataset} ...")
    gan.fit(bundle.train)
    synthetic = gan.sample(bundle.train.n_rows, rng=np.random.default_rng(args.seed))

    suite = [classifier_suite()[i] for i in (2, 12, 22, 32)]
    compat = classification_compatibility(
        bundle.train, synthetic, bundle.test, suite=suite
    )
    rows = [
        ("statistical similarity (mean CDF area, low=good)",
         f"{mean_area_distance(bundle.train, synthetic):.3f}"),
        ("model compatibility (mean F-1 gap, low=good)",
         f"{compat.mean_gap:.3f}"),
        ("privacy, all attributes (DCR avg ± std)",
         dcr(bundle.train, synthetic).formatted()),
        ("privacy, sensitive only (DCR avg ± std)",
         dcr_sensitive_only(bundle.train, synthetic).formatted()),
        ("training seconds", f"{gan.train_seconds_:.1f}"),
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.dataset} / {args.privacy} privacy"))
    return 0


def cmd_attack(args) -> int:
    """Train a target and run the §4.5 membership attack against it."""
    bundle = _load_bundle(args)
    config = _config_from_args(args)
    print(f"training target table-GAN on {args.dataset} ...")
    target = TableGAN(config)
    target.fit(bundle.train)
    print(f"running membership attack ({args.shadows} shadow model(s)) ...")
    attack = MembershipAttack(n_shadows=args.shadows, shadow_config=config,
                              seed=args.seed)
    result = attack.run(target, bundle.train, bundle.test)
    rows = [
        ("attack F-1", f"{result.f1:.3f}"),
        ("attack AUCROC", f"{result.auc:.3f}"),
        ("evaluation records", str(result.n_eval)),
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"membership attack vs {args.privacy}-privacy target"))
    print("AUC near 0.5 means the attacker cannot distinguish members.")
    return 0


def cmd_serve_registry(args) -> int:
    """List, inspect, or delete models in the serving registry."""
    registry = ModelRegistry(args.registry)
    if args.delete:
        registry.delete(args.delete)
        print(f"deleted {args.delete!r} from {registry.root}")
        return 0
    if args.show:
        manifest = registry.manifest(args.show)
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    entries = registry.describe()
    if not entries:
        print(f"registry {registry.root} is empty "
              "(train with --register NAME to add a model)")
        return 0
    rows = [
        (
            entry["name"], entry["kind"], str(entry["models"]),
            f"{entry['n_features']}", f"{entry['side']}",
            entry["layout"], entry["dtype"],
            time.strftime("%Y-%m-%d %H:%M",
                          time.localtime(entry["created_at"]))
            if entry["created_at"] else "?",
        )
        for entry in entries
    ]
    print(format_table(
        ["model", "kind", "models", "features", "side", "layout", "dtype",
         "created"],
        rows, title=f"registry {registry.root}",
    ))
    return 0


def cmd_synth(args) -> int:
    """Stream synthetic rows from a registered model to CSV or NPZ."""
    sampler = ShardedSampler(args.registry, args.model_name,
                             shard_rows=args.shard_rows)
    schema = sampler.schema
    if args.out.endswith(".npz"):
        sink = NpzSink(args.out, columns=schema.names)
    else:
        sink = CsvSink(args.out, schema)
    started = time.perf_counter()
    with sink:
        rows = sampler.sample_to_sink(args.n, sink, seed=args.seed,
                                      workers=args.workers)
    elapsed = time.perf_counter() - started
    print(f"wrote {rows} synthetic rows to {args.out} in {elapsed:.2f}s "
          f"({rows / elapsed:,.0f} rows/s, {args.workers} worker(s))")
    return 0


def cmd_serve(args) -> int:
    """Run the long-lived synthesis HTTP server until SIGTERM/SIGINT."""
    registry = ModelRegistry(args.registry)
    names = registry.names()
    budget = (args.memory_budget_mb * (1 << 20)
              if args.memory_budget_mb else None)
    weights = None
    if args.worker_weights:
        weights = {}
        for spec in args.worker_weights:
            name, sep, count = spec.partition("=")
            if not sep or not name:
                raise SystemExit(
                    f"--worker-weight expects NAME=K, got {spec!r}")
            try:
                weights[name] = int(count)
            except ValueError:
                raise SystemExit(
                    f"--worker-weight count must be an integer, got {spec!r}"
                ) from None
    server = SynthesisServer(
        registry, host=args.host, port=args.port,
        pool_size=args.pool_size, batch_rows=args.batch_rows, seed=args.seed,
        coalesce=not args.no_coalesce, max_queue_depth=args.max_queue,
        max_request_rows=args.max_request_rows,
        stream_threshold_rows=args.stream_threshold,
        stream_chunk_rows=args.stream_rows, max_models=args.max_models,
        memory_budget_bytes=budget, quiet=not args.verbose,
        server_workers=args.server_workers, worker_weights=weights,
        worker_start_method=args.worker_start_method,
        client_quota=args.client_quota, trace_log=args.trace_log,
        quality=not args.no_quality,
    )
    if args.trace_log:
        # Arm the process-wide tracer: every sampled request appends its
        # handler/batcher/service span records to the JSONL file, readable
        # live with `repro trace PATH`.  --trace-log-max-mb caps the file:
        # full files rotate to PATH.1..PATH.N between whole-line writes.
        max_bytes = (args.trace_log_max_mb * (1 << 20)
                     if args.trace_log_max_mb else None)
        trace.arm(args.trace_log, max_bytes=max_bytes,
                  keep=args.trace_log_keep)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    # The port line is load-bearing: with --port 0 it is how scripts (CI
    # smoke, the benchmark) learn the bound address.
    print(f"serving {len(names)} model(s) from {registry.root} "
          f"at http://{server.host}:{server.port}", flush=True)
    try:
        stop.wait()
    finally:
        print("draining in-flight requests ...", flush=True)
        server.shutdown()
        if args.trace_log:
            trace.disarm()
            print(f"trace spans written to {args.trace_log}", flush=True)
        responses = server.metrics()["responses"]
        print(f"server stopped after {sum(responses.values())} response(s)",
              flush=True)
    return 0


def cmd_quality(args) -> int:
    """Show a model's data-quality / drift report.

    With ``--url`` the report comes from a running server's
    ``GET /models/{ref}/quality`` (live sketch vs frozen reference);
    without it, the registry manifest's frozen reference statistics are
    printed — what serving-time drift will be scored against.
    """
    if args.url:
        import urllib.error
        import urllib.parse
        import urllib.request

        endpoint = (f"{args.url.rstrip('/')}/models/"
                    f"{urllib.parse.quote(args.ref, safe='')}/quality")
        try:
            with urllib.request.urlopen(endpoint, timeout=10) as response:
                report = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            print(f"server returned {exc.code} for {endpoint}: {detail}")
            return 1
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot reach {endpoint}: {exc}")
            return 1
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        status = report.get("status", "?")
        print(f"model {report.get('model', args.ref)!r}: status={status} "
              f"rows_sketched={report.get('rows_sketched', 0)} "
              f"reference={report.get('reference', False)} "
              f"tap_errors={report.get('tap_errors', 0)}")
        drift = report.get("drift")
        if not drift:
            if status == "off":
                print("quality tap disabled on this server (--no-quality)")
            elif not report.get("reference"):
                print("no reference stats in the manifest; re-register via "
                      "`repro train --register` to enable drift scoring")
            else:
                print("no drift scores yet (fewer rows sketched than the "
                      "minimum); sample more rows first")
            return 0
        rows = [
            (name, f"{col['statistic']:.4f}", f"{col['area']:.4f}",
             col["status"])
            for name, col in sorted(drift["columns"].items(),
                                    key=lambda kv: -kv[1]["statistic"])
        ]
        thresholds = drift.get("thresholds", {})
        print(format_table(
            ["column", "ks statistic", "cdf area", "status"], rows,
            title=(f"drift vs reference (warn>={thresholds.get('warn')}, "
                   f"drift>={thresholds.get('drift')})"),
        ))
        return 0

    registry = ModelRegistry(args.registry)
    manifest = registry.manifest(args.ref)
    reference = manifest.get("reference_stats")
    if not reference:
        print(f"{args.ref!r} has no frozen reference statistics; "
              "re-register via `repro train --register` to enable "
              "serving-time drift scoring")
        return 1
    if args.json:
        print(json.dumps(reference, indent=2, sort_keys=True))
        return 0
    rows = []
    for name, col in reference["columns"].items():
        if col.get("kind") == "categorical" and "categories" in col:
            top = col["categories"]["top_k"]
            detail = ", ".join(f"{cat}:{count}" for cat, count in top[:3])
            rows.append((name, col["kind"], "-", "-", detail))
        else:
            rows.append((name, col["kind"], f"{col['mean']:.4g}",
                         f"{col['std']:.4g}",
                         f"[{col['lo']:.4g}, {col['hi']:.4g}]"))
    print(format_table(
        ["column", "kind", "mean", "std", "range / top categories"], rows,
        title=(f"reference stats for {args.ref!r} "
               f"({reference['rows']} training rows, "
               f"{reference['bins']} bins)"),
    ))
    return 0


def _print_trace_tree(spans, events, trace_id: str) -> int:
    """Indented parent→child view of one trace's spans (ts order)."""
    mine = sorted((s for s in spans if s.get("trace") == trace_id),
                  key=lambda s: s.get("ts", 0))
    if not mine:
        print(f"no spans recorded for trace {trace_id}")
        return 1
    ids = {s.get("span") for s in mine}
    children: dict = {}
    roots = []
    for span in mine:
        parent = span.get("parent")
        if parent in ids:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def walk(span, depth):
        attrs = span.get("attrs") or {}
        extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        line = (f"{'  ' * depth}{span['name']}  "
                f"{span.get('dur_ms', 0.0):.3f} ms")
        print(line + (f"  [{extra}]" if extra else ""))
        for child in children.get(span.get("span"), []):
            walk(child, depth + 1)

    print(f"trace {trace_id}:")
    for root in roots:
        walk(root, 1)
    for event in events:
        if event.get("trace") == trace_id:
            print(f"  event {event['name']}  {event.get('attrs') or {}}")
    return 0


def cmd_trace(args) -> int:
    """Summarize a span JSONL log (written by ``serve --trace-log``)."""
    records = []
    try:
        with open(args.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # a torn concurrent write; skip, don't die
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}")
        return 1
    if args.tail:
        for record in records[-args.tail:]:
            print(json.dumps(record, sort_keys=True))
        return 0
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    if args.trace:
        return _print_trace_tree(spans, events, args.trace)
    if not spans and not events:
        print(f"{args.path}: no trace records")
        return 0
    by_name: dict[str, list[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(
            float(span.get("dur_ms", 0.0)))
    rows = []
    for name in sorted(by_name):
        durations = sorted(by_name[name])
        total = sum(durations)
        rows.append((
            name, str(len(durations)), f"{total:.1f}",
            f"{total / len(durations):.3f}",
            f"{durations[len(durations) // 2]:.3f}", f"{durations[-1]:.3f}",
        ))
    traces = {s.get("trace") for s in spans}
    print(format_table(
        ["span", "count", "total ms", "mean ms", "p50 ms", "max ms"], rows,
        title=(f"{len(spans)} span(s) across {len(traces)} trace(s), "
               f"{len(events)} event(s)"),
    ))
    return 0


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def cmd_bench(args) -> int:
    """Run the training-engine benchmark and write BENCH_engine.json."""
    from repro.bench import main as bench_main

    return bench_main(args.out, repeats=args.repeats, fit_repeats=args.fit_repeats,
                      quick=args.quick, check=args.check)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="table-GAN (VLDB 2018) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available datasets").set_defaults(
        func=cmd_datasets
    )

    p_train = sub.add_parser("train", help="train a table-GAN")
    _add_common_args(p_train)
    _add_training_args(p_train)
    p_train.add_argument("--model", default=None, help="path to save the generator (.npz)")
    p_train.add_argument("--register", default=None, metavar="NAME[@VERSION]",
                         help="register the trained model for serving under "
                              "NAME (optionally as one immutable VERSION; "
                              "prior versions stay loadable)")
    p_train.add_argument("--registry", default=DEFAULT_REGISTRY,
                         help=f"registry directory (default: {DEFAULT_REGISTRY})")
    p_train.add_argument("--checkpoint-dir", default=None,
                         help="directory for crash-safe training checkpoints; "
                              "SIGTERM saves one and exits cleanly")
    p_train.add_argument("--checkpoint-every", type=int, default=0,
                         metavar="BATCHES",
                         help="also checkpoint every N mini-batches "
                              "(default: 0 = epoch boundaries only)")
    p_train.add_argument("--workers", type=_positive_int, default=None,
                         metavar="N",
                         help="train data-parallel across N processes; the "
                              "result is bit-identical for every N (a pure "
                              "function of --grad-shards, never of N). "
                              "Default: the serial trainer")
    p_train.add_argument("--grad-shards", type=_positive_int, default=4,
                         metavar="S",
                         help="gradient shards per global batch for "
                              "--workers runs (default 4); part of the "
                              "checkpoint fingerprint, unlike the worker "
                              "count")
    p_train.add_argument("--resume", action="store_true",
                         help="continue from the newest checkpoint in "
                              "--checkpoint-dir (bit-identical to an "
                              "uninterrupted run)")
    p_train.set_defaults(func=cmd_train)

    p_sample = sub.add_parser("sample", help="sample synthetic rows from a saved model")
    _add_common_args(p_sample)
    _add_training_args(p_sample)
    p_sample.add_argument("--model", required=True, help="generator saved by train")
    p_sample.add_argument("-n", type=int, default=100, help="rows to sample")
    p_sample.add_argument("--out", required=True, help="output CSV path")
    p_sample.set_defaults(func=cmd_sample)

    p_eval = sub.add_parser("evaluate", help="train + sample + three-axis report")
    _add_common_args(p_eval)
    _add_training_args(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_attack = sub.add_parser("attack", help="run the §4.5 membership attack")
    _add_common_args(p_attack)
    _add_training_args(p_attack)
    p_attack.add_argument("--shadows", type=int, default=1,
                          help="number of shadow table-GANs")
    p_attack.set_defaults(func=cmd_attack)

    p_registry = sub.add_parser(
        "serve-registry", help="list/inspect/delete models in the serving registry"
    )
    p_registry.add_argument("--registry", default=DEFAULT_REGISTRY,
                            help=f"registry directory (default: {DEFAULT_REGISTRY})")
    p_registry.add_argument("--show", default=None, metavar="NAME[@VERSION]",
                            help="print one model's manifest as JSON (a bare "
                                 "NAME resolves to its newest registration)")
    p_registry.add_argument("--delete", default=None, metavar="NAME[@VERSION]",
                            help="remove one exact registration")
    p_registry.set_defaults(func=cmd_serve_registry)

    p_synth = sub.add_parser(
        "synth", help="stream synthetic rows from a registered model"
    )
    p_synth.add_argument("--registry", default=DEFAULT_REGISTRY,
                         help=f"registry directory (default: {DEFAULT_REGISTRY})")
    p_synth.add_argument("--model-name", required=True,
                         help="model name in the registry")
    p_synth.add_argument("-n", type=_positive_int, default=1000,
                         help="rows to synthesize (default: 1000)")
    p_synth.add_argument("--out", required=True,
                         help="output path; .npz streams arrays, anything else CSV")
    p_synth.add_argument("--seed", type=int, default=7,
                         help="generation seed (output is a pure function of "
                              "seed, n, and --shard-rows; never of --workers)")
    p_synth.add_argument("--workers", type=_positive_int, default=1,
                         help="parallel sampling processes (default: 1)")
    p_synth.add_argument("--shard-rows", type=_positive_int, default=8192,
                         help="rows per shard / per streamed write (default: 8192)")
    p_synth.set_defaults(func=cmd_synth)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived synthesis HTTP server"
    )
    p_serve.add_argument("--registry", default=DEFAULT_REGISTRY,
                         help=f"registry directory (default: {DEFAULT_REGISTRY})")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="bind port; 0 picks a free one and prints it "
                              "(default: 8000)")
    p_serve.add_argument("--seed", type=int, default=7,
                         help="per-model record-stream seed (default: 7)")
    p_serve.add_argument("--pool-size", type=int, default=1024,
                         help="rows pre-generated per model replenishment "
                              "(sub-batch requests serve from memory); 0 "
                              "generates per drain tick only (default: 1024)")
    p_serve.add_argument("--batch-rows", type=_positive_int, default=2048,
                         help="rows per generator forward pass (default: 2048)")
    p_serve.add_argument("--max-queue", type=_positive_int, default=64,
                         help="per-model admission bound; saturated requests "
                              "get 429 + Retry-After (default: 64)")
    p_serve.add_argument("--max-models", type=_positive_int, default=8,
                         help="resident-model cap; LRU eviction beyond it "
                              "(default: 8)")
    p_serve.add_argument("--memory-budget-mb", type=_positive_int, default=None,
                         help="estimated resident-model memory budget in MiB "
                              "(default: unlimited; LRU evicts idle models "
                              "over budget)")
    p_serve.add_argument("--max-request-rows", type=_positive_int,
                         default=1_000_000,
                         help="absolute per-request row cap; beyond it the "
                              "server answers 413 (default: 1000000)")
    p_serve.add_argument("--stream-threshold", type=_positive_int,
                         default=10_000,
                         help="rows above which a response streams as chunked "
                              "CSV/NDJSON (default: 10000)")
    p_serve.add_argument("--stream-rows", type=_positive_int, default=2048,
                         help="rows per streamed chunk (default: 2048)")
    p_serve.add_argument("--server-workers", type=int, default=0,
                         metavar="N",
                         help="serve each model from N dedicated worker "
                              "processes over a shared-memory sample pool "
                              "(responses stay bit-identical to the threaded "
                              "service); 0 keeps the in-process service "
                              "(default: 0)")
    p_serve.add_argument("--worker-weight", action="append", default=None,
                         metavar="NAME=K", dest="worker_weights",
                         help="per-model worker-count override (repeatable); "
                              "K=0 pins NAME to the in-process service")
    p_serve.add_argument("--worker-start-method", default=None,
                         choices=("fork", "spawn", "forkserver"),
                         help="multiprocessing start method for pool workers "
                              "(default: fork)")
    p_serve.add_argument("--client-quota", type=_positive_int, default=None,
                         metavar="N",
                         help="per-client admission cap: a client (X-Client-Id)"
                              " with N requests queued or in flight gets 429 + "
                              "Retry-After (default: unlimited)")
    p_serve.add_argument("--no-coalesce", action="store_true",
                         help="disable cross-request batch coalescing (one "
                              "generator pass per request; the benchmark "
                              "baseline)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="per-request access log on stderr")
    p_serve.add_argument("--trace-log", default=None, metavar="PATH",
                         help="arm request tracing: append one JSON span "
                              "record per handler/batcher/service stage to "
                              "PATH (inspect with `repro trace PATH`); "
                              "default: tracing disarmed")
    p_serve.add_argument("--trace-log-max-mb", type=_positive_int,
                         default=None, metavar="MB",
                         help="rotate the trace log before it exceeds MB "
                              "MiB: PATH shifts to PATH.1..PATH.N between "
                              "whole-line writes, so no record is ever torn "
                              "(default: unbounded)")
    p_serve.add_argument("--trace-log-keep", type=_positive_int, default=3,
                         metavar="N",
                         help="rotated trace files to keep (PATH.1..PATH.N; "
                              "default: 3)")
    p_serve.add_argument("--no-quality", action="store_true",
                         help="disable the per-model quality sketch / drift "
                              "scoring tap (responses are byte-identical "
                              "either way)")
    p_serve.set_defaults(func=cmd_serve)

    p_quality = sub.add_parser(
        "quality", help="show a model's data-quality / drift report"
    )
    p_quality.add_argument("ref", metavar="NAME[@VERSION]",
                           help="model reference")
    p_quality.add_argument("--url", default=None, metavar="URL",
                           help="running server base URL; queries "
                                "GET /models/REF/quality (live drift). "
                                "Without it, prints the registry manifest's "
                                "frozen reference stats")
    p_quality.add_argument("--registry", default=DEFAULT_REGISTRY,
                           help=f"registry directory (default: {DEFAULT_REGISTRY})")
    p_quality.add_argument("--json", action="store_true",
                           help="print the raw JSON report")
    p_quality.set_defaults(func=cmd_quality)

    p_trace = sub.add_parser(
        "trace", help="summarize a span log written by serve --trace-log"
    )
    p_trace.add_argument("path", help="span JSONL file")
    p_trace.add_argument("--tail", type=_positive_int, default=None,
                         metavar="N", help="print the last N raw records")
    p_trace.add_argument("--trace", default=None, metavar="ID",
                         help="print one trace's span tree (the X-Trace-Id "
                              "a response echoed)")
    p_trace.set_defaults(func=cmd_trace)

    p_bench = sub.add_parser(
        "bench", help="benchmark the conv engine vs the reference implementation"
    )
    p_bench.add_argument("--out", default="BENCH_engine.json",
                         help="output JSON path (default: BENCH_engine.json)")
    p_bench.add_argument("--repeats", type=_positive_int, default=5,
                         help="timing repeats for conv micro-benchmarks")
    p_bench.add_argument("--fit-repeats", type=_positive_int, default=2,
                         help="timing repeats for the one-epoch fit benchmark")
    p_bench.add_argument("--quick", action="store_true",
                         help="smoke mode: scaled-down workload, few repeats")
    p_bench.add_argument("--check", action="store_true",
                         help="exit non-zero if any kernel section reports the "
                              "fast engine slower than the reference oracle")
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
