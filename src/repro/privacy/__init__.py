"""Privacy evaluation: DCR, classical risk models, and the membership attack."""

from repro.privacy.dcr import (
    DcrResult,
    closest_record_distances,
    closest_synthetic_rows,
    dcr,
    dcr_sensitive_only,
)
from repro.privacy.membership import (
    ATTACK_MODEL_FAMILIES,
    MembershipAttack,
    MembershipAttackResult,
    paper_attack_model,
)
from repro.privacy.risk import (
    RiskReport,
    assert_applicable_to,
    equivalence_class_sizes,
    equivalence_classes,
    risk_report,
)

__all__ = [
    "dcr",
    "dcr_sensitive_only",
    "DcrResult",
    "closest_record_distances",
    "closest_synthetic_rows",
    "MembershipAttack",
    "MembershipAttackResult",
    "paper_attack_model",
    "ATTACK_MODEL_FAMILIES",
    "RiskReport",
    "risk_report",
    "equivalence_classes",
    "equivalence_class_sizes",
    "assert_applicable_to",
]
