"""Shadow-model membership attack against table-GAN (paper §4.5, Figure 3).

The attacker model, adapted from Shokri et al. [33]:

1. black-box access to the *generator* of the target table-GAN T (the two
   other networks are blocked — they are not part of a released model);
2. the attacker samples synthetic "shadow training tables" from T and
   trains shadow table-GANs — replicas of T's architecture — on them;
3. each shadow's own discriminator is then queried to build attack
   training samples ``(class of r, D_shadow(r), in)`` for shadow training
   records and ``(class of g, D_shadow(g), out)`` for real records that
   were *not* used to train T (the paper reuses the model-compatibility
   test set);
4. one attack classifier per class label is trained on those samples;
5. the attack is evaluated on a balanced set of true-in (T's real training
   records) and true-out records, scored by F-1 and ROC AUC (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TableGanConfig
from repro.core.tablegan import TableGAN
from repro.data.table import Table
from repro.ml.base import clone
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import f1_score, roc_auc
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import GridSearchCV
from repro.ml.svm import LinearSVC
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MembershipAttackResult:
    """Attack performance, averaged over per-class attack models (Table 6)."""

    f1: float
    auc: float
    per_class_f1: dict = field(default_factory=dict)
    per_class_auc: dict = field(default_factory=dict)
    n_eval: int = 0


#: The five attack-model families of §5.3.2.
ATTACK_MODEL_FAMILIES = (
    "mlp", "decision_tree", "adaboost", "random_forest", "svm",
)


def paper_attack_model(family: str, cv: int = 10, seed=None) -> GridSearchCV:
    """One of the paper's five attack models, tuned as in §5.3.2.

    "We use Multilayer Perceptron, DecisionTree, AdaBoost, RandomForest,
    and SVM classifiers to build attack models and their best parameters
    are found through the grid search with 10-fold cross validation."

    Returns a :class:`GridSearchCV` wrapping the family's estimator with a
    compact hyper-parameter grid; it exposes fit/predict/predict_proba, so
    it can be passed directly as ``MembershipAttack(attack_model=...)``.
    """
    grids = {
        "mlp": (
            MLPClassifier(epochs=40, seed=0),
            {"hidden_sizes": [(8,), (16,), (16, 8)], "lr": [1e-3, 1e-2]},
        ),
        "decision_tree": (
            DecisionTreeClassifier(seed=0),
            {"max_depth": [2, 4, 8, None]},
        ),
        "adaboost": (
            AdaBoostClassifier(seed=0),
            {"n_estimators": [10, 30], "learning_rate": [0.5, 1.0]},
        ),
        "random_forest": (
            RandomForestClassifier(seed=0),
            {"n_estimators": [10, 25], "max_depth": [4, None]},
        ),
        "svm": (
            LinearSVC(seed=0),
            {"C": [0.1, 1.0, 10.0]},
        ),
    }
    if family not in grids:
        raise KeyError(f"unknown family {family!r}; choose from {ATTACK_MODEL_FAMILIES}")
    estimator, grid = grids[family]
    return GridSearchCV(estimator, grid, cv=cv, seed=seed)


def _attack_features(scores: np.ndarray) -> np.ndarray:
    """Feature vector per record for the attack model.

    The discriminator emits a single probability; following Shokri et al.
    we hand the attack model the score plus simple monotone transforms so
    linear attack models can exploit margins near 0/1.
    """
    scores = np.clip(scores, 1e-6, 1.0 - 1e-6)
    return np.column_stack([scores, np.log(scores), np.log1p(-scores)])


class MembershipAttack:
    """Run the §4.5 attack pipeline against a trained table-GAN.

    Parameters
    ----------
    n_shadows:
        Number of shadow table-GANs (more shadows, better attack estimate).
    shadow_config:
        Training configuration for shadow models; defaults to a copy of the
        target's config (the attacker knows the architecture).
    attack_model:
        Estimator prototype for the per-class attack models (cloned per
        class).  Default: a small MLP.
    seed:
        Seed controlling shadow sampling, training and splits.
    """

    def __init__(self, n_shadows: int = 2, shadow_config: TableGanConfig | None = None,
                 attack_model=None, seed=None):
        check_positive(n_shadows, "n_shadows")
        self.n_shadows = n_shadows
        self.shadow_config = shadow_config
        self.attack_model = attack_model or MLPClassifier(
            hidden_sizes=(16,), epochs=40, seed=0
        )
        self.seed = seed

    def run(self, target: TableGAN, train_table: Table, out_table: Table,
            eval_size: int | None = None) -> MembershipAttackResult:
        """Attack ``target`` and score the attacker.

        Parameters
        ----------
        target:
            The trained table-GAN under attack.
        train_table:
            T's real training table (the true "in" population).
        out_table:
            Real records never shown to T (true "out"); half builds the
            shadow out-samples, half is reserved for evaluation, matching
            the paper's protocol.
        eval_size:
            Records per side of the balanced evaluation set (default:
            as many as both sides allow).
        """
        if train_table.schema != out_table.schema:
            raise ValueError("train and out tables must share a schema")
        label_name = train_table.schema.label
        if label_name is None:
            raise ValueError("membership attack needs a labelled dataset")
        rng = ensure_rng(self.seed)
        config = self.shadow_config or target.config

        # Split the out population: shadow-side vs reserved evaluation.
        out_order = rng.permutation(out_table.n_rows)
        half = out_table.n_rows // 2
        shadow_out = out_table.take(out_order[:half])
        eval_out = out_table.take(out_order[half:])

        # Build attack training data from shadow models.
        features, labels, classes = [], [], []
        for shadow_rng in spawn_rng(rng, self.n_shadows):
            shadow_train = target.sample(train_table.n_rows, rng=shadow_rng)
            shadow = TableGAN(config)
            shadow.fit(shadow_train, rng=shadow_rng)

            in_scores = shadow.discriminator_scores(shadow_train)
            features.append(_attack_features(in_scores))
            labels.append(np.ones(shadow_train.n_rows))
            classes.append(shadow_train.column(label_name))

            out_scores = shadow.discriminator_scores(shadow_out)
            features.append(_attack_features(out_scores))
            labels.append(np.zeros(shadow_out.n_rows))
            classes.append(shadow_out.column(label_name))

        features = np.concatenate(features)
        labels = np.concatenate(labels)
        classes = np.concatenate(classes)

        # One attack model per class (paper §4.5 step 6).
        attack_models = {}
        for cls in np.unique(classes):
            mask = classes == cls
            if np.unique(labels[mask]).size < 2:
                continue
            model = clone(self.attack_model)
            model.fit(features[mask], labels[mask])
            attack_models[float(cls)] = model
        if not attack_models:
            raise RuntimeError("no class had both in and out attack samples")

        # Balanced evaluation set scored through the target discriminator.
        n_eval = min(
            train_table.n_rows, eval_out.n_rows,
            eval_size if eval_size is not None else train_table.n_rows,
        )
        eval_in = train_table.take(rng.permutation(train_table.n_rows)[:n_eval])
        eval_out = eval_out.take(rng.permutation(eval_out.n_rows)[:n_eval])

        per_class_f1, per_class_auc = {}, {}
        for cls, model in attack_models.items():
            rows_in = eval_in.column(label_name) == cls
            rows_out = eval_out.column(label_name) == cls
            if not rows_in.any() or not rows_out.any():
                continue
            tables = [eval_in.take(np.flatnonzero(rows_in)),
                      eval_out.take(np.flatnonzero(rows_out))]
            truth = np.concatenate([
                np.ones(int(rows_in.sum())), np.zeros(int(rows_out.sum()))
            ])
            scores = np.concatenate([
                target.discriminator_scores(tables[0]),
                target.discriminator_scores(tables[1]),
            ])
            feats = _attack_features(scores)
            pred = model.predict(feats)
            proba = model.predict_proba(feats)[:, -1]
            per_class_f1[cls] = f1_score(truth, pred)
            per_class_auc[cls] = roc_auc(truth, proba)

        if not per_class_f1:
            raise RuntimeError("evaluation produced no class with both populations")
        return MembershipAttackResult(
            f1=float(np.mean(list(per_class_f1.values()))),
            auc=float(np.mean(list(per_class_auc.values()))),
            per_class_f1=per_class_f1,
            per_class_auc=per_class_auc,
            n_eval=2 * n_eval,
        )
