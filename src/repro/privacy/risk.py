"""Classical re-identification risk models (paper §2.2).

The prosecutor, journalist and marketer models score anonymized tables by
equivalence-class sizes.  They require a one-to-one correspondence between
original and released records, so — as the paper stresses — they apply to
the anonymization/perturbation baselines but *cannot* score table-GAN
output (no such correspondence exists); the library raises when asked to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table


@dataclass(frozen=True)
class RiskReport:
    """Re-identification risk summary over equivalence classes."""

    prosecutor_max: float       # worst-case: 1 / min class size
    prosecutor_mean: float      # expected success over records
    journalist_risk: float      # 1 / size of the smallest class
    marketer_risk: float        # expected fraction of re-identified records
    n_classes: int


def equivalence_classes(table: Table) -> tuple[np.ndarray, np.ndarray]:
    """(per-record class size, per-class size) of a generalized table's QIDs."""
    qids = table.schema.qids
    if not qids:
        raise ValueError("schema declares no QID columns")
    qid_values = table.columns(qids)
    _, inverse, counts = np.unique(
        qid_values, axis=0, return_inverse=True, return_counts=True
    )
    return counts[inverse], counts


def equivalence_class_sizes(table: Table) -> np.ndarray:
    """Per-record equivalence-class size of a (generalized) table."""
    per_record, _ = equivalence_classes(table)
    return per_record


def risk_report(table: Table) -> RiskReport:
    """Prosecutor/journalist/marketer risks of a generalized table.

    ``risk(p) = 1 / |equivalence class of p|`` per the prosecutor model;
    the marketer risk is its average, the journalist risk the worst class.
    """
    per_record, class_sizes = equivalence_classes(table)
    per_record_risk = 1.0 / per_record
    return RiskReport(
        prosecutor_max=float(per_record_risk.max()),
        prosecutor_mean=float(per_record_risk.mean()),
        journalist_risk=float(1.0 / class_sizes.min()),
        marketer_risk=float(per_record_risk.mean()),
        n_classes=int(class_sizes.size),
    )


def assert_applicable_to(method_name: str) -> None:
    """Raise for synthesis methods, mirroring the paper's §2.2 argument.

    Risk evaluation needs equivalence classes and record correspondence;
    fully synthetic tables have neither.
    """
    synthetic = {"table-gan", "tablegan", "dcgan", "condensation"}
    if method_name.lower().replace("_", "-") in synthetic:
        raise ValueError(
            f"classical risk models do not apply to {method_name}: synthetic "
            "tables have no one-to-one record correspondence (paper §2.2)"
        )
