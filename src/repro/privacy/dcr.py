"""Distance to the closest record (DCR) — the paper's Table 5 metric.

For each record r of the original table, DCR is the Euclidean distance to
the nearest record of the anonymized/perturbed/synthesized table, computed
after attribute-wise min–max normalization "so each attribute contributes
to the distance equally" (§5.1.2).  A released record at DCR 0 leaks a
real record verbatim; large mean DCR with small standard deviation is the
safe regime (§5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.ml.preprocessing import MinMaxScaler


@dataclass(frozen=True)
class DcrResult:
    """DCR summary: the paper reports ``mean ± std`` per cell of Table 5."""

    mean: float
    std: float
    min: float
    distances: np.ndarray

    def formatted(self) -> str:
        """Render as the paper's ``avg ± std`` cell format."""
        return f"{self.mean:.2f} ± {self.std:.2f}"


def closest_record_distances(original: Table, released: Table,
                             columns=None, block_size: int = 512) -> np.ndarray:
    """Per-original-row distance to the nearest released row.

    Parameters
    ----------
    original, released:
        Tables sharing a schema.
    columns:
        Column subset to compare (default: all columns).  Table 5 uses
        both "QIDs + sensitive" (all) and "only sensitive".
    block_size:
        Rows per distance block, bounding memory at
        ``block_size * len(released)`` floats.
    """
    if original.schema != released.schema:
        raise ValueError("original and released tables must share a schema")
    names = list(columns) if columns is not None else list(original.schema.names)
    if not names:
        raise ValueError("no columns selected for the distance computation")
    a = original.columns(names)
    b = released.columns(names)
    scaler = MinMaxScaler().fit(a)
    a = scaler.transform(a)
    b = scaler.transform(b)

    out = np.empty(a.shape[0])
    b_sq = (b**2).sum(axis=1)
    for start in range(0, a.shape[0], block_size):
        block = a[start : start + block_size]
        # Squared distances via the expansion ||x-y||^2 = x^2 - 2xy + y^2.
        d2 = (block**2).sum(axis=1)[:, None] - 2.0 * block @ b.T + b_sq[None, :]
        nearest = np.maximum(d2.min(axis=1), 0.0)
        # The expansion leaves ~1e-16 residue on exact matches; snap it so a
        # verbatim leak reports the paper's DCR = 0 exactly.
        nearest[nearest < 1e-12] = 0.0
        out[start : start + block.shape[0]] = np.sqrt(nearest)
    return out


def dcr(original: Table, released: Table, columns=None) -> DcrResult:
    """DCR summary statistics between ``original`` and ``released``."""
    distances = closest_record_distances(original, released, columns)
    return DcrResult(
        mean=float(distances.mean()),
        std=float(distances.std()),
        min=float(distances.min()),
        distances=distances,
    )


def dcr_sensitive_only(original: Table, released: Table) -> DcrResult:
    """DCR over sensitive attributes only (bottom half of Table 5)."""
    return dcr(original, released, columns=original.schema.sensitive)


def closest_synthetic_rows(original: Table, released: Table) -> np.ndarray:
    """Index of the nearest released row for each original row.

    Used by the paper's generation examples (Tables 7–8): for each real
    record, show the closest synthetic record.
    """
    if original.schema != released.schema:
        raise ValueError("original and released tables must share a schema")
    a = MinMaxScaler().fit_transform(original.values)
    scaler = MinMaxScaler().fit(original.values)
    b = scaler.transform(released.values)
    b_sq = (b**2).sum(axis=1)
    out = np.empty(a.shape[0], dtype=np.int64)
    for start in range(0, a.shape[0], 512):
        block = a[start : start + 512]
        d2 = (block**2).sum(axis=1)[:, None] - 2.0 * block @ b.T + b_sq[None, :]
        out[start : start + block.shape[0]] = d2.argmin(axis=1)
    return out
