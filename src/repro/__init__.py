"""repro — a reproduction of "Data Synthesis based on Generative Adversarial
Networks" (Park et al., VLDB 2018).

Public entry points::

    from repro import TableGAN, TableGanConfig, low_privacy, high_privacy
    from repro.data.datasets import load_dataset

Subpackages:

* :mod:`repro.core` — table-GAN (generator/discriminator/classifier, the
  three losses, Algorithm 2, chunked training);
* :mod:`repro.nn` — the numpy deep-learning substrate;
* :mod:`repro.data` — schemas, tables, encoders and the four datasets;
* :mod:`repro.ml` — the scikit-learn substitute used by the evaluation;
* :mod:`repro.baselines` — ARX/sdcMicro substitutes, condensation, DCGAN;
* :mod:`repro.privacy` — DCR, risk models, the membership attack;
* :mod:`repro.evaluation` — statistical similarity and model compatibility;
* :mod:`repro.serve` — the synthesis serving subsystem (model registry,
  micro-batched service, sharded parallel sampling, streaming sinks).
"""

from repro.core import (
    ChunkedTableGAN,
    TableGAN,
    TableGanConfig,
    dcgan_baseline,
    high_privacy,
    low_privacy,
    mid_privacy,
)
from repro.serve import (
    CsvSink,
    ModelRegistry,
    NpzSink,
    ShardedSampler,
    SynthesisService,
)

__version__ = "1.0.0"

__all__ = [
    "TableGAN",
    "TableGanConfig",
    "ChunkedTableGAN",
    "low_privacy",
    "mid_privacy",
    "high_privacy",
    "dcgan_baseline",
    "ModelRegistry",
    "SynthesisService",
    "ShardedSampler",
    "CsvSink",
    "NpzSink",
    "__version__",
]
