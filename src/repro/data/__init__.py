"""Data substrate: schemas, tables, GAN-space encoding, and datasets."""

from repro.data.encoding import MinMaxCodec, TableCodec
from repro.data.io import read_csv, write_csv
from repro.data.matrixizer import (
    Matrixizer,
    Vectorizer,
    length_for_features,
    side_for_features,
)
from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.splits import train_test_split
from repro.data.table import Table

__all__ = [
    "ColumnKind",
    "ColumnRole",
    "ColumnSpec",
    "TableSchema",
    "Table",
    "MinMaxCodec",
    "TableCodec",
    "Matrixizer",
    "Vectorizer",
    "side_for_features",
    "length_for_features",
    "train_test_split",
    "read_csv",
    "write_csv",
]
