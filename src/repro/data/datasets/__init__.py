"""Synthetic stand-ins for the paper's four evaluation datasets."""

from repro.data.datasets.adult import adult_schema, generate_adult, load_adult
from repro.data.datasets.airline import airline_schema, generate_airline, load_airline
from repro.data.datasets.base import DatasetBundle
from repro.data.datasets.health import generate_health, health_schema, load_health
from repro.data.datasets.lacity import generate_lacity, lacity_schema, load_lacity
from repro.data.datasets.registry import (
    DATASET_NAMES,
    DEFAULT_ROWS,
    PAPER_ROWS,
    load_dataset,
)

__all__ = [
    "DatasetBundle",
    "load_dataset",
    "DATASET_NAMES",
    "DEFAULT_ROWS",
    "PAPER_ROWS",
    "generate_lacity",
    "lacity_schema",
    "load_lacity",
    "generate_adult",
    "adult_schema",
    "load_adult",
    "generate_health",
    "health_schema",
    "load_health",
    "generate_airline",
    "airline_schema",
    "load_airline",
]
