"""Synthetic Adult (census income) dataset.

Mirrors the UCI Adult table: 5 QIDs (age, sex, race, marital status,
native region) and 9 sensitive attributes including work class, education,
occupation, zero-inflated capital gains/losses, and weekly work hours.

Classification label: ``long_hours`` (weekly hours above the median),
matching the paper's construction.  Regression target: ``hours_per_week``.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets.base import (
    DatasetBundle,
    bundle_from_table,
    categorical_codes,
    threshold_label,
    zero_inflated,
)
from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.utils.rng import ensure_rng

#: Paper-scale row count (Table 3); the default is laptop-scale.
PAPER_ROWS = 32561
DEFAULT_ROWS = 2000

_SEX = ("female", "male")
_RACE = ("white", "black", "asian_pacific", "amer_indian", "other")
_MARITAL = (
    "never_married", "married_civ", "divorced", "separated",
    "widowed", "married_absent", "married_af",
)
_REGION = ("north_america", "latin_america", "europe", "asia", "other")
_WORKCLASS = (
    "private", "self_emp", "self_emp_inc", "federal_gov",
    "local_gov", "state_gov", "without_pay", "never_worked",
)
_OCCUPATION = tuple(f"occ_{i:02d}" for i in range(14))
_RELATIONSHIP = ("husband", "wife", "own_child", "unmarried", "not_in_family", "other")


def adult_schema() -> TableSchema:
    """Schema of the synthetic Adult table: 5 QIDs + 9 sensitive columns."""
    cont, disc, cat = ColumnKind.CONTINUOUS, ColumnKind.DISCRETE, ColumnKind.CATEGORICAL
    qid, sens, label = ColumnRole.QID, ColumnRole.SENSITIVE, ColumnRole.LABEL
    columns = [
        ColumnSpec("age", disc, qid),
        ColumnSpec("sex", cat, qid, _SEX),
        ColumnSpec("race", cat, qid, _RACE),
        ColumnSpec("marital_status", cat, qid, _MARITAL),
        ColumnSpec("native_region", cat, qid, _REGION),
        ColumnSpec("workclass", cat, sens, _WORKCLASS),
        ColumnSpec("education_num", disc, sens),
        ColumnSpec("occupation", cat, sens, _OCCUPATION),
        ColumnSpec("relationship", cat, sens, _RELATIONSHIP),
        ColumnSpec("capital_gain", cont, sens),
        ColumnSpec("capital_loss", cont, sens),
        ColumnSpec("hours_per_week", disc, sens),
        ColumnSpec("income_index", cont, sens),
        ColumnSpec("long_hours", disc, label),
    ]
    return TableSchema(columns, regression_target="hours_per_week")


def generate_adult(rows: int = DEFAULT_ROWS, seed=None) -> Table:
    """Generate a synthetic Adult census table with ``rows`` records."""
    if rows < 10:
        raise ValueError(f"rows must be at least 10, got {rows}")
    rng = ensure_rng(seed)
    schema = adult_schema()

    age = np.clip(np.rint(rng.gamma(6.0, 6.5, rows) + 17.0), 17, 90)
    sex = categorical_codes(rng, (0.48, 0.52), rows)
    race = categorical_codes(rng, (0.78, 0.10, 0.05, 0.02, 0.05), rows)
    marital = categorical_codes(rng, (0.33, 0.45, 0.13, 0.03, 0.03, 0.02, 0.01), rows)
    region = categorical_codes(rng, (0.90, 0.05, 0.02, 0.02, 0.01), rows)

    # Education correlates with age cohort and drives occupation/income.
    education_num = np.clip(
        np.rint(rng.normal(10.0, 2.5, rows) + 0.01 * (age - 38)), 1, 16
    )
    # Higher-education records skew toward low-index (professional) codes.
    occ_shift = (16 - education_num) / 16.0
    occupation = np.clip(
        np.rint(occ_shift * 10 + rng.normal(0.0, 3.0, rows)), 0, len(_OCCUPATION) - 1
    )
    workclass = categorical_codes(
        rng, (0.70, 0.08, 0.04, 0.03, 0.07, 0.05, 0.02, 0.01), rows
    )
    relationship = categorical_codes(rng, (0.40, 0.15, 0.16, 0.10, 0.16, 0.03), rows)

    capital_gain = zero_inflated(rng, 0.085, 8.5, 1.0, rows)
    capital_loss = zero_inflated(rng, 0.045, 7.4, 0.5, rows)

    # Hours: prime-age, educated, married workers put in longer weeks.
    hours_mean = (
        38.0
        + 1.2 * (education_num - 10.0)
        + 4.0 * np.exp(-(((age - 42.0) / 15.0) ** 2))
        - 6.0 * (workclass >= 6)  # without_pay / never_worked
    )
    hours_per_week = np.clip(np.rint(hours_mean + rng.normal(0.0, 6.0, rows)), 1, 99)

    income_index = (
        20.0 * education_num
        + 3.0 * hours_per_week
        + 0.002 * capital_gain
        + rng.normal(0.0, 40.0, rows)
    )
    long_hours = threshold_label(hours_per_week)

    values = np.column_stack([
        age, sex, race, marital, region, workclass, education_num, occupation,
        relationship, capital_gain, capital_loss, hours_per_week, income_index,
        long_hours,
    ])
    return Table(values, schema)


def load_adult(rows: int = DEFAULT_ROWS, test_fraction: float = 0.2, seed=None) -> DatasetBundle:
    """Generate and split the Adult dataset into train/test tables."""
    rng = ensure_rng(seed)
    table = generate_adult(rows, seed=rng)
    return bundle_from_table("adult", table, test_fraction, rng)
