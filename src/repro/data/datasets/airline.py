"""Synthetic Airline (BTS DB1B-style) ticket market dataset.

Mirrors the Bureau of Transportation Statistics 10% ticket sample the
paper uses: 2 QIDs (origin and destination airport) and 30 sensitive
attributes around itinerary, fare composition, and market conditions.
Ticket price is a structural function of distance, fare class, demand and
booking lead time, so regression model compatibility is learnable.

Classification label: ``high_price`` (ticket price above the median).
Regression target: ``ticket_price``.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets.base import (
    DatasetBundle,
    bundle_from_table,
    categorical_codes,
    threshold_label,
)
from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.utils.rng import ensure_rng

#: Paper-scale row count (Table 3); the default is laptop-scale.
PAPER_ROWS = 1_000_000
DEFAULT_ROWS = 4000

_AIRPORTS = tuple(f"apt_{i:02d}" for i in range(30))
_CARRIERS = tuple(f"carrier_{i}" for i in range(10))
_FARE_CLASSES = ("basic", "economy", "premium", "business", "first")
_FF_TIERS = ("none", "silver", "gold", "platinum")


def airline_schema() -> TableSchema:
    """Schema of the synthetic Airline table: 2 QIDs + 30 sensitive columns."""
    cont, disc, cat = ColumnKind.CONTINUOUS, ColumnKind.DISCRETE, ColumnKind.CATEGORICAL
    qid, sens, label = ColumnRole.QID, ColumnRole.SENSITIVE, ColumnRole.LABEL
    columns = [
        ColumnSpec("origin_airport", cat, qid, _AIRPORTS),
        ColumnSpec("dest_airport", cat, qid, _AIRPORTS),
        ColumnSpec("quarter", disc, sens),
        ColumnSpec("year", disc, sens),
        ColumnSpec("ticket_price", cont, sens),
        ColumnSpec("distance_miles", cont, sens),
        ColumnSpec("coupons", disc, sens),
        ColumnSpec("passengers", disc, sens),
        ColumnSpec("carrier", cat, sens, _CARRIERS),
        ColumnSpec("fare_class", cat, sens, _FARE_CLASSES),
        ColumnSpec("roundtrip", disc, sens),
        ColumnSpec("online_booking", disc, sens),
        ColumnSpec("miles_flown", cont, sens),
        ColumnSpec("taxes", cont, sens),
        ColumnSpec("fuel_surcharge", cont, sens),
        ColumnSpec("booking_lead_days", disc, sens),
        ColumnSpec("layovers", disc, sens),
        ColumnSpec("bag_fees", cont, sens),
        ColumnSpec("seat_fee", cont, sens),
        ColumnSpec("meal_fee", cont, sens),
        ColumnSpec("wifi_fee", cont, sens),
        ColumnSpec("upgrade_fee", cont, sens),
        ColumnSpec("ff_tier", cat, sens, _FF_TIERS),
        ColumnSpec("price_per_mile", cont, sens),
        ColumnSpec("market_share", cont, sens),
        ColumnSpec("competition_index", cont, sens),
        ColumnSpec("demand_index", cont, sens),
        ColumnSpec("season_factor", cont, sens),
        ColumnSpec("advance_purchase", disc, sens),
        ColumnSpec("refundable", disc, sens),
        ColumnSpec("saturday_stay", disc, sens),
        ColumnSpec("high_price", disc, label),
    ]
    return TableSchema(columns, regression_target="ticket_price")


def generate_airline(rows: int = DEFAULT_ROWS, seed=None) -> Table:
    """Generate a synthetic airline ticket table with ``rows`` records."""
    if rows < 10:
        raise ValueError(f"rows must be at least 10, got {rows}")
    rng = ensure_rng(seed)
    schema = airline_schema()

    hub_weights = np.linspace(4.0, 1.0, len(_AIRPORTS))
    origin = categorical_codes(rng, hub_weights, rows)
    dest = categorical_codes(rng, hub_weights, rows)
    # Avoid origin == dest itineraries.
    same = origin == dest
    dest[same] = np.mod(dest[same] + 1 + rng.integers(0, 28, int(same.sum())), 30)

    quarter = rng.integers(1, 5, rows).astype(np.float64)
    year = rng.integers(2015, 2018, rows).astype(np.float64)
    distance_miles = np.clip(rng.gamma(2.2, 420.0, rows) + 100.0, 100.0, 5000.0)
    coupons = np.clip(np.rint(rng.exponential(1.2, rows) + 1.0), 1, 8)
    passengers = np.clip(np.rint(rng.exponential(1.1, rows) + 1.0), 1, 9)
    carrier = categorical_codes(rng, np.linspace(3.0, 1.0, len(_CARRIERS)), rows)
    fare_class = categorical_codes(rng, (0.25, 0.45, 0.15, 0.10, 0.05), rows)
    roundtrip = (rng.random(rows) < 0.7).astype(np.float64)
    online_booking = (rng.random(rows) < 0.8).astype(np.float64)
    booking_lead_days = np.clip(np.rint(rng.exponential(25.0, rows)), 0, 330)
    layovers = np.clip(coupons - 1 - roundtrip, 0, 5)
    demand_index = np.clip(rng.normal(1.0, 0.2, rows) + 0.1 * np.isin(quarter, (2, 3)), 0.4, 2.0)
    season_factor = 1.0 + 0.15 * np.sin(2 * np.pi * quarter / 4.0) + rng.normal(0.0, 0.05, rows)
    competition_index = np.clip(rng.beta(2.0, 2.0, rows), 0.05, 0.95)
    market_share = np.clip(rng.beta(2.0, 5.0, rows) + 0.1 * (carrier < 3), 0.01, 0.9)

    class_multiplier = np.array([0.8, 1.0, 1.45, 2.4, 3.8])[fare_class.astype(int)]
    lead_discount = 1.0 - 0.35 * np.minimum(booking_lead_days, 60.0) / 60.0
    base_fare = (
        (60.0 + 0.11 * distance_miles)
        * class_multiplier
        * demand_index
        * season_factor
        * lead_discount
        * (1.0 - 0.25 * competition_index)
    )
    ticket_price = np.clip(base_fare * rng.lognormal(0.0, 0.18, rows), 39.0, 6000.0)

    miles_flown = distance_miles * (1.0 + roundtrip) * rng.normal(1.0, 0.03, rows)
    taxes = 0.075 * ticket_price + 5.6 * coupons
    fuel_surcharge = np.clip(0.018 * distance_miles + rng.normal(0.0, 4.0, rows), 0.0, 200.0)
    bag_fees = np.where(rng.random(rows) < 0.45, rng.choice([30.0, 40.0, 60.0], rows), 0.0)
    seat_fee = np.where(rng.random(rows) < 0.3, rng.uniform(10.0, 70.0, rows), 0.0)
    meal_fee = np.where(rng.random(rows) < 0.2, rng.uniform(8.0, 30.0, rows), 0.0)
    wifi_fee = np.where(rng.random(rows) < 0.25, rng.uniform(5.0, 25.0, rows), 0.0)
    upgrade_fee = np.where(rng.random(rows) < 0.1, rng.uniform(50.0, 400.0, rows), 0.0)
    ff_tier = categorical_codes(rng, (0.7, 0.15, 0.1, 0.05), rows)
    price_per_mile = ticket_price / np.maximum(miles_flown, 1.0)
    advance_purchase = (booking_lead_days >= 14).astype(np.float64)
    refundable = (fare_class >= 3).astype(np.float64) * (rng.random(rows) < 0.8)
    saturday_stay = (rng.random(rows) < 0.5).astype(np.float64)
    high_price = threshold_label(ticket_price)

    values = np.column_stack([
        origin, dest, quarter, year, ticket_price, distance_miles, coupons,
        passengers, carrier, fare_class, roundtrip, online_booking, miles_flown,
        taxes, fuel_surcharge, booking_lead_days, layovers, bag_fees, seat_fee,
        meal_fee, wifi_fee, upgrade_fee, ff_tier, price_per_mile, market_share,
        competition_index, demand_index, season_factor, advance_purchase,
        refundable, saturday_stay, high_price,
    ])
    return Table(values, schema)


def load_airline(rows: int = DEFAULT_ROWS, test_fraction: float = 0.2, seed=None) -> DatasetBundle:
    """Generate and split the Airline dataset into train/test tables."""
    rng = ensure_rng(seed)
    table = generate_airline(rows, seed=rng)
    return bundle_from_table("airline", table, test_fraction, rng)
