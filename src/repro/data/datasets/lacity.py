"""Synthetic LACity payroll dataset.

Mirrors the Los Angeles City Employee Payroll table the paper uses: 2 QIDs
(department, job class) and 21 sensitive attributes dominated by pay
components.  Pay columns are driven by latent seniority/skill factors so
quarterly payments, overtime, and benefits are strongly correlated with
base salary — the correlation structure Tables 7/8 of the paper display.

Classification label: ``high_salary`` (base salary above the median).
Regression target: ``base_salary``.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets.base import (
    DatasetBundle,
    bundle_from_table,
    categorical_codes,
    lognormal,
    threshold_label,
)
from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.utils.rng import ensure_rng

#: Paper-scale row count (Table 3); the default is laptop-scale.
PAPER_ROWS = 15000
DEFAULT_ROWS = 2000

_DEPARTMENTS = tuple(f"dept_{i:02d}" for i in range(12))
_JOB_CLASSES = tuple(f"job_{i:03d}" for i in range(20))


def lacity_schema() -> TableSchema:
    """Schema of the synthetic LACity table: 2 QIDs + 21 sensitive columns."""
    cont, disc, cat = ColumnKind.CONTINUOUS, ColumnKind.DISCRETE, ColumnKind.CATEGORICAL
    qid, sens, label = ColumnRole.QID, ColumnRole.SENSITIVE, ColumnRole.LABEL
    columns = [
        ColumnSpec("department", cat, qid, _DEPARTMENTS),
        ColumnSpec("job_class", cat, qid, _JOB_CLASSES),
        ColumnSpec("year", disc, sens),
        ColumnSpec("base_salary", cont, sens),
        ColumnSpec("q1_payments", cont, sens),
        ColumnSpec("q2_payments", cont, sens),
        ColumnSpec("q3_payments", cont, sens),
        ColumnSpec("q4_payments", cont, sens),
        ColumnSpec("overtime_pay", cont, sens),
        ColumnSpec("bonus_pay", cont, sens),
        ColumnSpec("benefits_cost", cont, sens),
        ColumnSpec("retirement_contrib", cont, sens),
        ColumnSpec("health_cost", cont, sens),
        ColumnSpec("dental_cost", cont, sens),
        ColumnSpec("life_insurance", cont, sens),
        ColumnSpec("sick_hours", cont, sens),
        ColumnSpec("vacation_hours", cont, sens),
        ColumnSpec("years_employed", disc, sens),
        ColumnSpec("fte_ratio", cont, sens),
        ColumnSpec("union_member", disc, sens),
        ColumnSpec("salary_grade", disc, sens),
        ColumnSpec("payroll_deductions", cont, sens),
        ColumnSpec("high_salary", disc, label),
    ]
    return TableSchema(columns, regression_target="base_salary")


def generate_lacity(rows: int = DEFAULT_ROWS, seed=None) -> Table:
    """Generate a synthetic LACity payroll table with ``rows`` records."""
    if rows < 10:
        raise ValueError(f"rows must be at least 10, got {rows}")
    rng = ensure_rng(seed)
    schema = lacity_schema()

    seniority = rng.uniform(0.0, 1.0, rows)
    skill = rng.normal(0.0, 1.0, rows)

    department = categorical_codes(rng, np.linspace(3.0, 1.0, len(_DEPARTMENTS)), rows)
    job_class = categorical_codes(rng, np.linspace(2.0, 1.0, len(_JOB_CLASSES)), rows)
    year = rng.integers(2013, 2018, rows).astype(np.float64)

    # Salary driven by seniority, skill, and a mild department premium.
    dept_premium = 0.02 * department
    log_salary = 10.55 + 0.55 * seniority + 0.18 * skill + dept_premium
    base_salary = np.exp(log_salary + rng.normal(0.0, 0.08, rows))
    base_salary = np.clip(base_salary, 24000.0, 350000.0)

    quarters = []
    for _ in range(4):
        quarters.append(base_salary / 4.0 * rng.normal(1.0, 0.06, rows))
    overtime_pay = rng.exponential(2500.0, rows) * (0.5 + seniority)
    bonus_pay = np.where(rng.random(rows) < 0.3, base_salary * rng.uniform(0.01, 0.06, rows), 0.0)
    benefits_cost = 4000.0 + 0.08 * base_salary + rng.normal(0.0, 500.0, rows)
    retirement_contrib = 0.11 * base_salary * rng.normal(1.0, 0.05, rows)
    health_cost = lognormal(rng, 8.6, 0.25, rows, 2000.0, 20000.0)
    dental_cost = health_cost * rng.uniform(0.05, 0.12, rows)
    life_insurance = 120.0 + 0.001 * base_salary + rng.normal(0.0, 20.0, rows)
    sick_hours = np.clip(rng.normal(64.0, 24.0, rows) + 30.0 * seniority, 0.0, 200.0)
    vacation_hours = np.clip(rng.normal(80.0, 30.0, rows) + 60.0 * seniority, 0.0, 300.0)
    years_employed = np.clip(np.rint(seniority * 30.0 + rng.normal(0.0, 2.0, rows)), 0, 40)
    fte_ratio = np.where(rng.random(rows) < 0.9, 1.0, rng.uniform(0.5, 0.9, rows))
    union_member = (rng.random(rows) < 0.65).astype(np.float64)
    salary_grade = np.clip(np.rint((np.log(base_salary) - 10.0) * 6.0), 1, 15)
    payroll_deductions = 0.22 * base_salary * rng.normal(1.0, 0.08, rows)
    high_salary = threshold_label(base_salary)

    values = np.column_stack([
        department, job_class, year, base_salary,
        quarters[0], quarters[1], quarters[2], quarters[3],
        overtime_pay, bonus_pay, benefits_cost, retirement_contrib,
        health_cost, dental_cost, life_insurance, sick_hours, vacation_hours,
        years_employed, fte_ratio, union_member, salary_grade,
        payroll_deductions, high_salary,
    ])
    return Table(values, schema)


def load_lacity(rows: int = DEFAULT_ROWS, test_fraction: float = 0.2, seed=None) -> DatasetBundle:
    """Generate and split the LACity dataset into train/test tables."""
    rng = ensure_rng(seed)
    table = generate_lacity(rows, seed=rng)
    return bundle_from_table("lacity", table, test_fraction, rng)
