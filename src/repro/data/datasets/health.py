"""Synthetic Health (NHANES-style) dataset.

Mirrors the CDC NHANES table the paper uses: 4 QIDs (age, gender, race,
education) and 28 sensitive attributes — blood-test biomarkers,
vitals, and questionnaire answers.  The ``diabetes`` label depends on
glucose, HbA1c, BMI, age and family history through a logistic model, so a
classifier can genuinely learn the semantics the paper's classifier network
enforces (e.g. "low cholesterol + diabetes=1 is implausible").

Classification label: ``diabetes``.  No regression target (binary labels
only, as in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets.base import (
    DatasetBundle,
    binary_from_logit,
    bundle_from_table,
    categorical_codes,
)
from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.utils.rng import ensure_rng

#: Paper-scale row count (Table 3); the default is laptop-scale.
PAPER_ROWS = 9813
DEFAULT_ROWS = 2000

_GENDER = ("female", "male")
_RACE = ("white", "black", "hispanic", "asian", "other")
_EDUCATION = ("less_than_hs", "high_school", "some_college", "college", "graduate")
_SMOKING = ("never", "former", "current")


def health_schema() -> TableSchema:
    """Schema of the synthetic Health table: 4 QIDs + 28 sensitive columns."""
    cont, disc, cat = ColumnKind.CONTINUOUS, ColumnKind.DISCRETE, ColumnKind.CATEGORICAL
    qid, sens, label = ColumnRole.QID, ColumnRole.SENSITIVE, ColumnRole.LABEL
    columns = [
        ColumnSpec("age", disc, qid),
        ColumnSpec("gender", cat, qid, _GENDER),
        ColumnSpec("race", cat, qid, _RACE),
        ColumnSpec("education", cat, qid, _EDUCATION),
        ColumnSpec("bmi", cont, sens),
        ColumnSpec("waist_cm", cont, sens),
        ColumnSpec("glucose", cont, sens),
        ColumnSpec("hba1c", cont, sens),
        ColumnSpec("insulin", cont, sens),
        ColumnSpec("cholesterol", cont, sens),
        ColumnSpec("hdl", cont, sens),
        ColumnSpec("ldl", cont, sens),
        ColumnSpec("triglycerides", cont, sens),
        ColumnSpec("systolic_bp", cont, sens),
        ColumnSpec("diastolic_bp", cont, sens),
        ColumnSpec("pulse", cont, sens),
        ColumnSpec("creatinine", cont, sens),
        ColumnSpec("uric_acid", cont, sens),
        ColumnSpec("albumin", cont, sens),
        ColumnSpec("alt_enzyme", cont, sens),
        ColumnSpec("ast_enzyme", cont, sens),
        ColumnSpec("smoking", cat, sens, _SMOKING),
        ColumnSpec("alcohol_per_week", cont, sens),
        ColumnSpec("activity_minutes", cont, sens),
        ColumnSpec("sleep_hours", cont, sens),
        ColumnSpec("fruit_servings", cont, sens),
        ColumnSpec("fast_food_per_week", disc, sens),
        ColumnSpec("family_history", disc, sens),
        ColumnSpec("med_count", disc, sens),
        ColumnSpec("doctor_visits", disc, sens),
        ColumnSpec("sedentary_hours", cont, sens),
        ColumnSpec("diabetes", disc, label),
    ]
    return TableSchema(columns, regression_target=None)


def generate_health(rows: int = DEFAULT_ROWS, seed=None) -> Table:
    """Generate a synthetic NHANES-style health table with ``rows`` records."""
    if rows < 10:
        raise ValueError(f"rows must be at least 10, got {rows}")
    rng = ensure_rng(seed)
    schema = health_schema()

    age = np.clip(np.rint(rng.normal(48.0, 17.0, rows)), 18, 85)
    gender = categorical_codes(rng, (0.51, 0.49), rows)
    race = categorical_codes(rng, (0.62, 0.12, 0.15, 0.06, 0.05), rows)
    education = categorical_codes(rng, (0.13, 0.25, 0.30, 0.22, 0.10), rows)

    # Metabolic latent drives BMI, glucose, lipids together.
    metabolic = rng.normal(0.0, 1.0, rows) + 0.015 * (age - 48.0)
    bmi = np.clip(27.0 + 4.5 * metabolic + rng.normal(0.0, 2.0, rows), 16.0, 60.0)
    waist_cm = 42.0 + 2.1 * bmi + rng.normal(0.0, 5.0, rows)
    glucose = np.clip(95.0 + 18.0 * metabolic + rng.normal(0.0, 8.0, rows), 60.0, 350.0)
    hba1c = np.clip(5.3 + 0.018 * (glucose - 95.0) + rng.normal(0.0, 0.25, rows), 4.0, 14.0)
    insulin = np.clip(8.0 + 5.0 * np.maximum(metabolic, 0.0) + rng.exponential(3.0, rows), 1.0, 80.0)
    cholesterol = np.clip(185.0 + 14.0 * metabolic + rng.normal(0.0, 25.0, rows), 90.0, 360.0)
    hdl = np.clip(55.0 - 6.0 * metabolic + rng.normal(0.0, 9.0, rows), 18.0, 110.0)
    ldl = np.clip(cholesterol - hdl - rng.normal(30.0, 10.0, rows), 30.0, 280.0)
    triglycerides = np.clip(120.0 + 45.0 * metabolic + rng.exponential(30.0, rows), 30.0, 800.0)
    systolic_bp = np.clip(112.0 + 0.45 * (age - 48.0) + 6.0 * metabolic + rng.normal(0.0, 9.0, rows), 85.0, 220.0)
    diastolic_bp = np.clip(0.62 * systolic_bp + rng.normal(2.0, 6.0, rows), 45.0, 130.0)
    pulse = np.clip(rng.normal(72.0, 10.0, rows) + 2.0 * metabolic, 40.0, 130.0)
    creatinine = np.clip(rng.normal(0.95, 0.2, rows) + 0.1 * (gender == 1), 0.4, 4.0)
    uric_acid = np.clip(rng.normal(5.4, 1.2, rows) + 0.4 * metabolic, 2.0, 12.0)
    albumin = np.clip(rng.normal(4.3, 0.3, rows) - 0.05 * metabolic, 2.5, 5.5)
    alt_enzyme = np.clip(rng.lognormal(3.1, 0.35, rows) + 2.0 * np.maximum(metabolic, 0.0), 5.0, 250.0)
    ast_enzyme = np.clip(0.8 * alt_enzyme + rng.normal(5.0, 6.0, rows), 5.0, 250.0)
    smoking = categorical_codes(rng, (0.55, 0.25, 0.20), rows)
    alcohol_per_week = np.clip(rng.exponential(3.0, rows), 0.0, 40.0)
    activity_minutes = np.clip(rng.exponential(120.0, rows) - 20.0 * metabolic, 0.0, 900.0)
    sleep_hours = np.clip(rng.normal(7.0, 1.1, rows), 3.0, 12.0)
    fruit_servings = np.clip(rng.exponential(1.5, rows), 0.0, 10.0)
    fast_food_per_week = np.clip(np.rint(rng.exponential(2.0, rows) + metabolic), 0, 15)
    family_history = (rng.random(rows) < 0.28).astype(np.float64)
    med_count = np.clip(np.rint(rng.exponential(1.5, rows) + 0.04 * (age - 48.0) + metabolic), 0, 15)
    doctor_visits = np.clip(np.rint(rng.exponential(2.5, rows) + 0.8 * med_count), 0, 30)
    sedentary_hours = np.clip(rng.normal(6.0, 2.0, rows) + 0.8 * metabolic, 0.0, 16.0)

    # Diabetes ground truth: logistic in glucose/HbA1c/BMI/age/family history.
    logit = (
        0.09 * (glucose - 112.0)
        + 0.8 * (hba1c - 6.2)
        + 0.09 * (bmi - 30.0)
        + 0.025 * (age - 50.0)
        + 1.1 * family_history
        - 1.2
    )
    diabetes = binary_from_logit(rng, logit)

    values = np.column_stack([
        age, gender, race, education, bmi, waist_cm, glucose, hba1c, insulin,
        cholesterol, hdl, ldl, triglycerides, systolic_bp, diastolic_bp, pulse,
        creatinine, uric_acid, albumin, alt_enzyme, ast_enzyme, smoking,
        alcohol_per_week, activity_minutes, sleep_hours, fruit_servings,
        fast_food_per_week, family_history, med_count, doctor_visits,
        sedentary_hours, diabetes,
    ])
    return Table(values, schema)


def load_health(rows: int = DEFAULT_ROWS, test_fraction: float = 0.2, seed=None) -> DatasetBundle:
    """Generate and split the Health dataset into train/test tables."""
    rng = ensure_rng(seed)
    table = generate_health(rows, seed=rng)
    return bundle_from_table("health", table, test_fraction, rng)
