"""Shared helpers for the synthetic dataset generators.

The paper evaluates on four real public tables (LACity payroll, UCI Adult,
CDC NHANES health, BTS airline tickets).  Those downloads are unavailable
offline, so each generator in this package synthesizes a table with the
same schema shape (QID/sensitive counts of the paper's Table 3), realistic
marginal distributions, and — critically — learnable label-feature
correlations, which is what the classifier network and model-compatibility
experiments actually exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.splits import train_test_split
from repro.data.table import Table
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class DatasetBundle:
    """A generated dataset: training table, held-out test table, and name.

    ``test`` plays two roles from the paper: unknown records for the model
    compatibility tests (§5.1.1) and the "out" population of the membership
    attack (§5.3.2).
    """

    name: str
    train: Table
    test: Table

    @property
    def n_train(self) -> int:
        return self.train.n_rows

    @property
    def n_test(self) -> int:
        return self.test.n_rows


def bundle_from_table(name: str, table: Table, test_fraction: float, seed) -> DatasetBundle:
    """Split a full generated table into the train/test bundle."""
    train, test = train_test_split(table, test_fraction=test_fraction, seed=seed)
    return DatasetBundle(name=name, train=train, test=test)


def lognormal(rng: np.random.Generator, mean_log: float, sigma_log: float,
              size: int, lo: float | None = None, hi: float | None = None) -> np.ndarray:
    """Lognormal draw with optional clipping (salaries, fares)."""
    values = rng.lognormal(mean_log, sigma_log, size)
    if lo is not None or hi is not None:
        values = np.clip(values, lo, hi)
    return values


def zero_inflated(rng: np.random.Generator, p_nonzero: float, mean_log: float,
                  sigma_log: float, size: int) -> np.ndarray:
    """Mostly-zero heavy-tailed column (capital gain/loss style)."""
    mask = rng.random(size) < p_nonzero
    values = np.zeros(size)
    values[mask] = rng.lognormal(mean_log, sigma_log, int(mask.sum()))
    return values


def categorical_codes(rng: np.random.Generator, weights, size: int) -> np.ndarray:
    """Sample integer category codes with the given (unnormalized) weights."""
    weights = np.asarray(weights, dtype=np.float64)
    probs = weights / weights.sum()
    return rng.choice(len(probs), size=size, p=probs).astype(np.float64)


def binary_from_logit(rng: np.random.Generator, logit: np.ndarray) -> np.ndarray:
    """Sample Bernoulli(sigmoid(logit)) — noisy labels with real structure."""
    prob = 1.0 / (1.0 + np.exp(-logit))
    return (rng.random(logit.shape[0]) < prob).astype(np.float64)


def threshold_label(values: np.ndarray) -> np.ndarray:
    """The paper's median-threshold label: 1 where value exceeds the median."""
    return (values > np.median(values)).astype(np.float64)
