"""Dataset registry: load any of the paper's four datasets by name."""

from __future__ import annotations

from repro.data.datasets.adult import DEFAULT_ROWS as ADULT_ROWS
from repro.data.datasets.adult import PAPER_ROWS as ADULT_PAPER_ROWS
from repro.data.datasets.adult import load_adult
from repro.data.datasets.airline import DEFAULT_ROWS as AIRLINE_ROWS
from repro.data.datasets.airline import PAPER_ROWS as AIRLINE_PAPER_ROWS
from repro.data.datasets.airline import load_airline
from repro.data.datasets.base import DatasetBundle
from repro.data.datasets.health import DEFAULT_ROWS as HEALTH_ROWS
from repro.data.datasets.health import PAPER_ROWS as HEALTH_PAPER_ROWS
from repro.data.datasets.health import load_health
from repro.data.datasets.lacity import DEFAULT_ROWS as LACITY_ROWS
from repro.data.datasets.lacity import PAPER_ROWS as LACITY_PAPER_ROWS
from repro.data.datasets.lacity import load_lacity

_LOADERS = {
    "lacity": load_lacity,
    "adult": load_adult,
    "health": load_health,
    "airline": load_airline,
}

#: Default (laptop-scale) row counts per dataset.
DEFAULT_ROWS = {
    "lacity": LACITY_ROWS,
    "adult": ADULT_ROWS,
    "health": HEALTH_ROWS,
    "airline": AIRLINE_ROWS,
}

#: Row counts the paper reports in Table 3.
PAPER_ROWS = {
    "lacity": LACITY_PAPER_ROWS,
    "adult": ADULT_PAPER_ROWS,
    "health": HEALTH_PAPER_ROWS,
    "airline": AIRLINE_PAPER_ROWS,
}

#: All dataset names, in the paper's presentation order.
DATASET_NAMES = ("lacity", "adult", "health", "airline")


def load_dataset(name: str, rows: int | None = None, test_fraction: float = 0.2,
                 seed=None) -> DatasetBundle:
    """Load a dataset bundle by name.

    Parameters
    ----------
    name:
        One of ``"lacity"``, ``"adult"``, ``"health"``, ``"airline"``.
    rows:
        Total rows to generate before splitting (defaults to the
        laptop-scale count for the dataset; pass ``PAPER_ROWS[name]`` for
        paper scale).
    test_fraction, seed:
        Forwarded to the generator and splitter.
    """
    key = name.lower()
    if key not in _LOADERS:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    count = DEFAULT_ROWS[key] if rows is None else rows
    return _LOADERS[key](rows=count, test_fraction=test_fraction, seed=seed)
