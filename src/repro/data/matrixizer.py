"""Record vector <-> d×d square matrix conversion (paper §3.2 step 1).

A record of ``n`` attributes is zero-padded to ``d*d`` values and reshaped
into a ``d×d`` single-channel image so DCGAN-style 2-D convolutions apply.
``d`` is chosen as the smallest power of two whose square holds all
attributes (powers of two keep the stride-2 conv stack geometry exact);
the paper's own architecture (Figure 2) uses the same halving/doubling
ladder.
"""

from __future__ import annotations

import numpy as np


def side_for_features(n_features: int, minimum: int = 4) -> int:
    """Smallest power-of-two side ``d`` with ``d*d >= n_features``."""
    if n_features <= 0:
        raise ValueError(f"n_features must be positive, got {n_features}")
    d = minimum
    while d * d < n_features:
        d *= 2
    return d


class Matrixizer:
    """Stateless converter between record batches and square matrices.

    Parameters
    ----------
    n_features:
        Number of attributes per record.
    side:
        Matrix side length; defaults to :func:`side_for_features`.
    """

    def __init__(self, n_features: int, side: int | None = None):
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.n_features = n_features
        self.side = side_for_features(n_features) if side is None else side
        if self.side * self.side < n_features:
            raise ValueError(
                f"side {self.side} too small for {n_features} features"
            )

    @property
    def padding(self) -> int:
        """Number of zero cells appended to each record."""
        return self.side * self.side - self.n_features

    def to_matrices(self, records: np.ndarray) -> np.ndarray:
        """(N, n_features) records -> (N, 1, d, d) matrices with zero padding."""
        records = np.asarray(records, dtype=np.float64)
        if records.ndim != 2 or records.shape[1] != self.n_features:
            raise ValueError(
                f"expected (n, {self.n_features}) records, got {records.shape}"
            )
        batch = records.shape[0]
        padded = np.zeros((batch, self.side * self.side), dtype=np.float64)
        padded[:, : self.n_features] = records
        return padded.reshape(batch, 1, self.side, self.side)

    def to_records(self, matrices: np.ndarray) -> np.ndarray:
        """(N, 1, d, d) matrices -> (N, n_features) records, dropping padding."""
        matrices = np.asarray(matrices, dtype=np.float64)
        expected = (matrices.shape[0], 1, self.side, self.side)
        if matrices.shape != expected:
            raise ValueError(f"expected shape {expected}, got {matrices.shape}")
        flat = matrices.reshape(matrices.shape[0], -1)
        return flat[:, : self.n_features].copy()

    def feature_position(self, feature_index: int) -> tuple[int, int]:
        """(row, col) cell of a feature inside the d×d matrix."""
        if not 0 <= feature_index < self.n_features:
            raise IndexError(f"feature index {feature_index} out of range")
        return divmod(feature_index, self.side)


def length_for_features(n_features: int, minimum: int = 4) -> int:
    """Smallest power-of-two length ``L >= n_features`` (1-D layout)."""
    if n_features <= 0:
        raise ValueError(f"n_features must be positive, got {n_features}")
    length = minimum
    while length < n_features:
        length *= 2
    return length


class Vectorizer:
    """Record batches <-> (N, 1, L) vectors for the §3.2 1-D layout ablation.

    The paper's alternative to the square-matrix layout: records stay in
    vector form and 1-D convolutions apply.  The paper found this
    sub-optimal; :mod:`repro.core` exposes it via
    ``TableGanConfig(layout="vector")`` so the claim is reproducible.
    """

    def __init__(self, n_features: int, length: int | None = None):
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.n_features = n_features
        self.side = length_for_features(n_features) if length is None else length
        if self.side < n_features:
            raise ValueError(f"length {self.side} too small for {n_features} features")

    @property
    def padding(self) -> int:
        """Number of zero cells appended to each record."""
        return self.side - self.n_features

    def to_matrices(self, records: np.ndarray) -> np.ndarray:
        """(N, n_features) records -> (N, 1, L) vectors with zero padding."""
        records = np.asarray(records, dtype=np.float64)
        if records.ndim != 2 or records.shape[1] != self.n_features:
            raise ValueError(
                f"expected (n, {self.n_features}) records, got {records.shape}"
            )
        batch = records.shape[0]
        padded = np.zeros((batch, self.side), dtype=np.float64)
        padded[:, : self.n_features] = records
        return padded.reshape(batch, 1, self.side)

    def to_records(self, matrices: np.ndarray) -> np.ndarray:
        """(N, 1, L) vectors -> (N, n_features) records, dropping padding."""
        matrices = np.asarray(matrices, dtype=np.float64)
        expected = (matrices.shape[0], 1, self.side)
        if matrices.shape != expected:
            raise ValueError(f"expected shape {expected}, got {matrices.shape}")
        return matrices.reshape(matrices.shape[0], -1)[:, : self.n_features].copy()

    def feature_position(self, feature_index: int) -> tuple[int]:
        """(offset,) cell of a feature inside the length-L vector."""
        if not 0 <= feature_index < self.n_features:
            raise IndexError(f"feature index {feature_index} out of range")
        return (feature_index,)
