"""Table <-> GAN-space encoding.

table-GAN operates on records min–max normalized into [-1, 1] (matching the
generator's tanh output).  :class:`MinMaxCodec` handles one column,
:class:`TableCodec` the whole table; decoding clips to the training range,
inverts the scaling, and rounds discrete/categorical columns back to valid
values — the "some tricks" of §2.3 that let a continuous CNN generator emit
discrete attributes.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, TableSchema
from repro.data.table import Table
from repro.utils.validation import check_fitted


class MinMaxCodec:
    """Affine map of one column onto [lo, hi] (default [-1, 1]).

    Degenerate (constant) columns map to the center of the range and decode
    back to the constant.
    """

    def __init__(self, feature_range: tuple[float, float] = (-1.0, 1.0)):
        lo, hi = feature_range
        if not lo < hi:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.data_min_: float | None = None
        self.data_max_: float | None = None

    def fit(self, column: np.ndarray) -> "MinMaxCodec":
        """Learn the column's min/max."""
        column = np.asarray(column, dtype=np.float64)
        if column.size == 0:
            raise ValueError("cannot fit on an empty column")
        self.data_min_ = float(column.min())
        self.data_max_ = float(column.max())
        return self

    @property
    def _span(self) -> float:
        span = self.data_max_ - self.data_min_
        return span if span > 0 else 1.0

    def encode(self, column: np.ndarray) -> np.ndarray:
        """Map data values into the feature range."""
        check_fitted(self, "data_min_")
        scaled = (np.asarray(column, dtype=np.float64) - self.data_min_) / self._span
        return scaled * (self.hi - self.lo) + self.lo

    def decode(self, column: np.ndarray) -> np.ndarray:
        """Map feature-range values back to the data range, clipping overshoot."""
        check_fitted(self, "data_min_")
        clipped = np.clip(np.asarray(column, dtype=np.float64), self.lo, self.hi)
        unit = (clipped - self.lo) / (self.hi - self.lo)
        return unit * self._span + self.data_min_


class TableCodec:
    """Encode a :class:`Table` into the GAN's [-1, 1] matrix space and back.

    ``decode`` restores value types: discrete and categorical columns are
    rounded to integers and categorical codes are clipped into the
    vocabulary, so every decoded table is schema-valid by construction.
    """

    def __init__(self, feature_range: tuple[float, float] = (-1.0, 1.0)):
        self.feature_range = feature_range
        self.schema_: TableSchema | None = None
        self.codecs_: list[MinMaxCodec] | None = None

    def fit(self, table: Table) -> "TableCodec":
        """Learn per-column scaling from ``table``."""
        self.schema_ = table.schema
        self.codecs_ = []
        for spec in table.schema.columns:
            codec = MinMaxCodec(self.feature_range).fit(table.column(spec.name))
            self.codecs_.append(codec)
        return self

    @classmethod
    def from_ranges(cls, schema: TableSchema, col_min, col_max) -> "TableCodec":
        """A fitted codec rebuilt from persisted per-column min/max ranges.

        The inverse of reading ``data_min_``/``data_max_`` off a fitted
        codec — how the serving layer restores a codec without the
        training table.
        """
        if len(col_min) != schema.n_columns or len(col_max) != schema.n_columns:
            raise ValueError(
                f"ranges cover {len(col_min)}/{len(col_max)} columns, "
                f"schema has {schema.n_columns}"
            )
        codec = cls()
        codec.schema_ = schema
        codec.codecs_ = []
        for lo, hi in zip(col_min, col_max):
            column = MinMaxCodec(codec.feature_range)
            column.data_min_ = float(lo)
            column.data_max_ = float(hi)
            codec.codecs_.append(column)
        return codec

    def encode(self, table: Table) -> np.ndarray:
        """Encode ``table`` to an (n_rows, n_columns) matrix in the feature range."""
        check_fitted(self, "codecs_")
        if table.schema != self.schema_:
            raise ValueError("table schema does not match the fitted schema")
        out = np.empty_like(table.values)
        for j, codec in enumerate(self.codecs_):
            out[:, j] = codec.encode(table.values[:, j])
        return out

    def decode(self, matrix: np.ndarray) -> Table:
        """Decode a feature-range matrix back into a schema-valid Table."""
        check_fitted(self, "codecs_")
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.schema_.n_columns:
            raise ValueError(
                f"expected (n, {self.schema_.n_columns}) matrix, got {matrix.shape}"
            )
        out = np.empty_like(matrix)
        for j, (codec, spec) in enumerate(zip(self.codecs_, self.schema_.columns)):
            col = codec.decode(matrix[:, j])
            if spec.kind in (ColumnKind.DISCRETE, ColumnKind.CATEGORICAL):
                col = np.rint(col)
            if spec.kind is ColumnKind.CATEGORICAL:
                col = np.clip(col, 0, spec.n_categories - 1)
            out[:, j] = col
        return Table(out, self.schema_)

    def label_position(self) -> int:
        """Index of the label column in the encoded matrix."""
        check_fitted(self, "schema_")
        if self.schema_.label is None:
            raise ValueError("fitted schema has no label column")
        return self.schema_.index(self.schema_.label)

    def encode_label(self, raw_labels: np.ndarray) -> np.ndarray:
        """Encode raw 0/1 labels into the feature range of the label column."""
        check_fitted(self, "codecs_")
        return self.codecs_[self.label_position()].encode(raw_labels)

    def decode_label(self, encoded: np.ndarray) -> np.ndarray:
        """Decode feature-range label values back to hard 0/1 labels."""
        check_fitted(self, "codecs_")
        decoded = self.codecs_[self.label_position()].decode(encoded)
        return np.clip(np.rint(decoded), 0, 1)
