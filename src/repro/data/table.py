"""The :class:`Table` container: a numpy matrix plus a :class:`TableSchema`.

A Table is the unit every component of the library consumes and produces:
dataset generators emit Tables, table-GAN trains on a Table and samples a
synthetic Table, anonymization/perturbation baselines map Table -> Table,
and the evaluation harness compares Tables.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, TableSchema


class Table:
    """An immutable-by-convention relational table.

    Parameters
    ----------
    values:
        Float matrix of shape ``(n_rows, n_columns)``; categorical columns
        hold integer codes.
    schema:
        Column specs matching ``values``'s second axis.
    """

    def __init__(self, values: np.ndarray, schema: TableSchema):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {values.shape}")
        if values.shape[1] != schema.n_columns:
            raise ValueError(
                f"values has {values.shape[1]} columns but schema has {schema.n_columns}"
            )
        self.values = values
        self.schema = schema

    @property
    def n_rows(self) -> int:
        return self.values.shape[0]

    @property
    def n_columns(self) -> int:
        return self.values.shape[1]

    def column(self, name: str) -> np.ndarray:
        """The values of column ``name`` as a 1-D array (a view)."""
        return self.values[:, self.schema.index(name)]

    def columns(self, names) -> np.ndarray:
        """A sub-matrix with the given columns, in the given order."""
        idx = [self.schema.index(n) for n in names]
        return self.values[:, idx]

    def with_values(self, values: np.ndarray) -> "Table":
        """A new Table sharing this schema with different values."""
        return Table(values, self.schema)

    def take(self, row_indices) -> "Table":
        """A new Table containing the given rows (copy)."""
        return Table(self.values[np.asarray(row_indices)], self.schema)

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return Table(self.values[:n].copy(), self.schema)

    def features_and_label(self) -> tuple[np.ndarray, np.ndarray]:
        """Split into (X, y) for the model-compatibility classification tests.

        X contains every non-label column; y is the binary label column.
        """
        if self.schema.label is None:
            raise ValueError("table schema has no label column")
        label_idx = self.schema.index(self.schema.label)
        mask = np.ones(self.n_columns, dtype=bool)
        mask[label_idx] = False
        return self.values[:, mask], self.values[:, label_idx]

    def features_and_target(self) -> tuple[np.ndarray, np.ndarray]:
        """Split into (X, y) for the regression tests.

        X excludes both the regression target and the (derived) binary
        label, since the label is a thresholding of the target and would
        leak it.
        """
        target = self.schema.regression_target
        if target is None:
            raise ValueError("table schema has no regression target")
        drop = {self.schema.index(target)}
        if self.schema.label is not None:
            drop.add(self.schema.index(self.schema.label))
        mask = np.ones(self.n_columns, dtype=bool)
        for idx in drop:
            mask[idx] = False
        return self.values[:, mask], self.values[:, self.schema.index(target)]

    def decode_column(self, name: str) -> list:
        """Column values rendered with categorical codes mapped to strings."""
        spec = self.schema.spec(name)
        col = self.column(name)
        if spec.kind is ColumnKind.CATEGORICAL:
            codes = np.clip(np.rint(col).astype(int), 0, spec.n_categories - 1)
            return [spec.categories[c] for c in codes]
        if spec.kind is ColumnKind.DISCRETE:
            return [int(v) for v in np.rint(col)]
        return [float(v) for v in col]

    def describe(self) -> dict[str, dict[str, float]]:
        """Per-column summary statistics (min/max/mean/std)."""
        out = {}
        for spec in self.schema.columns:
            col = self.column(spec.name)
            out[spec.name] = {
                "min": float(col.min()),
                "max": float(col.max()),
                "mean": float(col.mean()),
                "std": float(col.std()),
            }
        return out

    def to_rows(self, n: int | None = None) -> list[dict]:
        """Render rows as dicts with decoded categoricals (for reports)."""
        count = self.n_rows if n is None else min(n, self.n_rows)
        decoded = {name: self.decode_column(name) for name in self.schema.names}
        return [
            {name: decoded[name][i] for name in self.schema.names}
            for i in range(count)
        ]

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return f"Table({self.n_rows} rows × {self.n_columns} columns)"
