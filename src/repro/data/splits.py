"""Train/test splitting of :class:`~repro.data.table.Table` objects.

The paper reserves ≈20% of each dataset as unknown testing records for the
model-compatibility evaluation, and additionally re-uses part of that
held-out set as the "out" records of the membership attack (§5.3.2).
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.utils.rng import ensure_rng


def train_test_split(table: Table, test_fraction: float = 0.2, seed=None) -> tuple[Table, Table]:
    """Randomly partition ``table`` into (train, test).

    Parameters
    ----------
    table:
        Source table.
    test_fraction:
        Fraction of rows in the test partition; must leave both parts
        non-empty.
    seed:
        Seed or generator for the shuffle.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = ensure_rng(seed)
    n_test = int(round(table.n_rows * test_fraction))
    if n_test == 0 or n_test == table.n_rows:
        raise ValueError(
            f"test_fraction {test_fraction} leaves an empty partition for "
            f"{table.n_rows} rows"
        )
    order = rng.permutation(table.n_rows)
    return table.take(order[n_test:]), table.take(order[:n_test])
