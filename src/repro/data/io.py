"""CSV import/export: apply table-GAN to user-supplied data.

The evaluation pipeline generates its four datasets synthetically, but a
downstream user wants to point the library at their own table.  This
module reads a CSV into a schema-valid :class:`~repro.data.table.Table`
(with column kinds inferred or declared), and writes Tables back out with
categorical codes decoded.
"""

from __future__ import annotations

import csv

import numpy as np

from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table


def _parse_numeric(values: list[str]) -> np.ndarray | None:
    """Parse strings to floats, or None if any value is non-numeric."""
    out = np.empty(len(values))
    for i, raw in enumerate(values):
        try:
            out[i] = float(raw)
        except ValueError:
            return None
    return out


def infer_column(name: str, values: list[str], role: ColumnRole,
                 force_categorical: bool = False) -> tuple[ColumnSpec, np.ndarray]:
    """Infer one column's kind and produce its numeric representation.

    Numeric columns become CONTINUOUS (or DISCRETE when every value is an
    integer); non-numeric or forced columns become CATEGORICAL with a
    sorted vocabulary and integer codes.
    """
    numeric = None if force_categorical else _parse_numeric(values)
    if numeric is not None:
        if np.allclose(numeric, np.rint(numeric)):
            return ColumnSpec(name, ColumnKind.DISCRETE, role), numeric
        return ColumnSpec(name, ColumnKind.CONTINUOUS, role), numeric
    vocabulary = tuple(sorted(set(values)))
    index = {v: i for i, v in enumerate(vocabulary)}
    codes = np.array([index[v] for v in values], dtype=np.float64)
    spec = ColumnSpec(name, ColumnKind.CATEGORICAL, role, vocabulary)
    return spec, codes


def read_csv(path, qids=(), label: str | None = None,
             categorical=(), identifiers=(),
             regression_target: str | None = None) -> Table:
    """Read a CSV file into a Table, inferring column kinds.

    Parameters
    ----------
    path:
        CSV file with a header row.
    qids:
        Column names to mark as quasi-identifiers.
    label:
        Name of the binary ground-truth column (enables the classifier
        network and the model-compatibility tests).
    categorical:
        Columns to force to CATEGORICAL even if their values parse as
        numbers (e.g. ZIP codes).
    identifiers:
        Columns to *drop* entirely (SSNs etc.; never synthesized).
    regression_target:
        Continuous column for regression compatibility tests.
    """
    qids = set(qids)
    categorical = set(categorical)
    identifiers = set(identifiers)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"{path} has a header but no data rows")
    for row in rows:
        if len(row) != len(header):
            raise ValueError(
                f"ragged CSV: row with {len(row)} cells, header has {len(header)}"
            )
    known = set(header)
    for group, group_name in ((qids, "qids"), (categorical, "categorical"),
                              (identifiers, "identifiers")):
        missing = group - known
        if missing:
            raise KeyError(f"{group_name} not in CSV header: {sorted(missing)}")
    if label is not None and label not in known:
        raise KeyError(f"label {label!r} not in CSV header")

    columns, data = [], []
    for j, name in enumerate(header):
        if name in identifiers:
            continue
        values = [row[j] for row in rows]
        if name == label:
            role = ColumnRole.LABEL
        elif name in qids:
            role = ColumnRole.QID
        else:
            role = ColumnRole.SENSITIVE
        spec, column = infer_column(name, values, role, name in categorical)
        columns.append(spec)
        data.append(column)
    schema = TableSchema(columns, regression_target=regression_target)
    return Table(np.column_stack(data), schema)


def iter_decoded_rows(table: Table):
    """Yield each row of ``table`` as a list with categoricals decoded.

    The shared row renderer behind :func:`write_csv` and the serving
    layer's streaming :class:`~repro.serve.sinks.CsvSink` — one place
    defines how a row looks on disk.
    """
    decoded = [table.decode_column(name) for name in table.schema.names]
    for i in range(table.n_rows):
        yield [column[i] for column in decoded]


def decoded_rows(table: Table) -> list[list]:
    """All rows of ``table`` decoded at once — same rendering as
    :func:`iter_decoded_rows`, buffered.

    All-continuous tables take a single C-level ``tolist`` instead of the
    per-cell python loop (continuous columns decode to plain floats, so
    the rendering is identical); that loop is the dominant cost on the
    synthesis server's response path, where every request re-renders its
    rows.
    """
    if all(spec.kind is ColumnKind.CONTINUOUS for spec in table.schema.columns):
        return table.values.tolist()
    return list(iter_decoded_rows(table))


def write_csv(table: Table, path) -> None:
    """Write a Table to CSV, decoding categorical codes to their strings."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        writer.writerows(iter_decoded_rows(table))
