"""Table schema: column kinds, privacy roles, and schema-level accessors.

The paper's terminology (§2) maps onto :class:`ColumnRole`:

* *identifier* — unique per record (SSN); never synthesized or released.
* *QID* (quasi-identifier) — combinations may identify a record; these are
  what anonymization tools generalize.
* *sensitive* — everything else; anonymization leaves these untouched,
  which is exactly the weakness table-GAN targets.
* *label* — the ground-truth attribute used for the classifier network and
  the model-compatibility tests.

Values are stored numerically everywhere (categoricals as integer codes
with the string vocabulary kept in :class:`ColumnSpec`), mirroring the
paper's label-encoding of non-numeric attributes (§5.2.2 footnote 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ColumnKind(enum.Enum):
    """Value type of a column, deciding decode-time rounding behaviour."""

    CONTINUOUS = "continuous"
    DISCRETE = "discrete"      # integer-valued numeric (year, count, age)
    CATEGORICAL = "categorical"  # integer code into ``ColumnSpec.categories``


class ColumnRole(enum.Enum):
    """Privacy role of a column (paper §2 definitions)."""

    IDENTIFIER = "identifier"
    QID = "qid"
    SENSITIVE = "sensitive"
    LABEL = "label"


@dataclass(frozen=True)
class ColumnSpec:
    """Schema entry for a single column.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        Value type (continuous / discrete / categorical).
    role:
        Privacy role (identifier / qid / sensitive / label).
    categories:
        For categorical columns, the code -> string vocabulary.  Code ``i``
        decodes to ``categories[i]``.
    """

    name: str
    kind: ColumnKind
    role: ColumnRole
    categories: tuple[str, ...] = field(default=())

    def __post_init__(self):
        if not self.name:
            raise ValueError("column name must be non-empty")
        if self.kind is ColumnKind.CATEGORICAL and not self.categories:
            raise ValueError(f"categorical column {self.name!r} needs categories")
        if self.kind is not ColumnKind.CATEGORICAL and self.categories:
            raise ValueError(f"non-categorical column {self.name!r} must not set categories")

    @property
    def n_categories(self) -> int:
        """Vocabulary size (0 for non-categorical columns)."""
        return len(self.categories)

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the serving-layer model registry)."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "role": self.role.value,
            "categories": list(self.categories),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            kind=ColumnKind(data["kind"]),
            role=ColumnRole(data["role"]),
            categories=tuple(data.get("categories", ())),
        )


class TableSchema:
    """Ordered collection of :class:`ColumnSpec` plus task annotations.

    Parameters
    ----------
    columns:
        Column specs in storage order.
    regression_target:
        Name of the continuous column used for the paper's regression
        model-compatibility tests, or ``None`` when (as for Health) only
        classification applies.
    """

    def __init__(self, columns, regression_target: str | None = None):
        self.columns: tuple[ColumnSpec, ...] = tuple(columns)
        if not self.columns:
            raise ValueError("schema needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        labels = [c.name for c in self.columns if c.role is ColumnRole.LABEL]
        if len(labels) > 1:
            raise ValueError(f"at most one label column supported, got {labels}")
        self.label: str | None = labels[0] if labels else None
        if regression_target is not None and regression_target not in names:
            raise ValueError(f"regression target {regression_target!r} not in schema")
        self.regression_target = regression_target
        self._index = {name: i for i, name in enumerate(names)}

    @property
    def names(self) -> tuple[str, ...]:
        """All column names in storage order."""
        return tuple(c.name for c in self.columns)

    @property
    def qids(self) -> tuple[str, ...]:
        """Quasi-identifier column names."""
        return tuple(c.name for c in self.columns if c.role is ColumnRole.QID)

    @property
    def sensitive(self) -> tuple[str, ...]:
        """Sensitive column names (the paper includes the label here)."""
        return tuple(
            c.name for c in self.columns
            if c.role in (ColumnRole.SENSITIVE, ColumnRole.LABEL)
        )

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def index(self, name: str) -> int:
        """Storage index of column ``name``."""
        if name not in self._index:
            raise KeyError(f"no column named {name!r}; have {self.names}")
        return self._index[name]

    def spec(self, name: str) -> ColumnSpec:
        """The :class:`ColumnSpec` for ``name``."""
        return self.columns[self.index(name)]

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the serving-layer model registry)."""
        return {
            "columns": [spec.to_dict() for spec in self.columns],
            "regression_target": self.regression_target,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableSchema":
        """Inverse of :meth:`to_dict`."""
        return cls(
            [ColumnSpec.from_dict(entry) for entry in data["columns"]],
            regression_target=data.get("regression_target"),
        )

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TableSchema)
            and self.columns == other.columns
            and self.regression_target == other.regression_target
        )

    def __repr__(self) -> str:
        return (
            f"TableSchema({self.n_columns} columns, qids={list(self.qids)}, "
            f"label={self.label!r})"
        )
