"""Serving-side synthesis-quality monitor: live sketches + drift vs reference.

:class:`QualityMonitor` wraps the serving-agnostic sketch core
(:mod:`repro.obs.quality`) with everything the serving tier needs:

* a **tap** for the decode path — one call per replenished block in the
  threaded :class:`~repro.serve.service.SynthesisService`, one fold per
  collected block in the procpool tier.  The tap is *observe-only* and
  failure-isolated: it never touches the service RNG, its updates run
  under a private lock, and any exception (including the ``quality.tap``
  chaos seam) is swallowed and counted — a crashing sketch can never
  block or corrupt the sample stream.  After :data:`MAX_TAP_ERRORS`
  failures the tap disables itself rather than paying the exception cost
  forever.
* **drift scoring** against the reference statistics frozen into the
  registry manifest at ``train --register``, thresholded per column and
  rolled up to ``ok | warn | drift`` (models registered without reference
  stats serve fine and report ``scored: false``).
* a **report** for ``GET /models/{ref}/quality`` and the ``repro quality``
  viewer.

Bin alignment is the load-bearing invariant: the live sketch's histogram
edges come from the manifest's frozen reference ranges when present (the
training table's per-column min/max — exactly what the codec records), so
live and reference histograms compare bin-for-bin.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.data.schema import TableSchema
from repro.obs.quality import (
    DEFAULT_BINS,
    DEFAULT_RESERVOIR_ROWS,
    DRIFT_THRESHOLD,
    MIN_ROWS,
    WARN_THRESHOLD,
    TableSketch,
    score_drift,
)
from repro.utils.faults import fault_point

#: Rollup status -> numeric gauge value (``quality_status`` metric).
STATUS_CODES = {"ok": 0, "warn": 1, "drift": 2}

#: Consecutive tap failures before the monitor stops trying.
MAX_TAP_ERRORS = 8


def manifest_ranges(manifest: dict) -> tuple[list, list]:
    """Per-column ``(col_min, col_max)`` ranges recorded in a manifest.

    Prefers the frozen reference ranges (bin alignment with the training
    table); falls back to the codec ranges of the generator artifact(s) —
    for chunked models, the union across chunks.
    """
    reference = manifest.get("reference_stats")
    if reference:
        schema = TableSchema.from_dict(manifest["schema"])
        cols = reference.get("columns", {})
        if all(name in cols for name in schema.names):
            lo = [float(cols[name]["lo"]) for name in schema.names]
            hi = [float(cols[name]["hi"]) for name in schema.names]
            return lo, hi
    if manifest.get("kind") == "chunked":
        entries = manifest["chunks"]
    else:
        entries = [manifest["generator"]]
    lo = np.min([e["col_min"] for e in entries], axis=0)
    hi = np.max([e["col_max"] for e in entries], axis=0)
    return [float(v) for v in lo], [float(v) for v in hi]


class QualityMonitor:
    """Per-model live quality sketch with failure-isolated taps."""

    def __init__(self, name: str, schema: TableSchema, col_min, col_max, *,
                 reference: dict | None = None, seed: int = 0,
                 bins: int = DEFAULT_BINS,
                 reservoir_rows: int = DEFAULT_RESERVOIR_ROWS,
                 warn: float = WARN_THRESHOLD,
                 drift: float = DRIFT_THRESHOLD,
                 min_rows: int = MIN_ROWS):
        if reference:
            bins = int(reference.get("bins", bins))
        self.name = name
        self.schema = schema
        self.reference = reference
        self.warn = float(warn)
        self.drift_threshold = float(drift)
        self.min_rows = int(min_rows)
        self.bins = int(bins)
        self.col_min = list(col_min)
        self.col_max = list(col_max)
        self.sketch = TableSketch(
            schema, col_min, col_max,
            bins=self.bins, reservoir_rows=reservoir_rows, seed=seed,
        )
        self.tap_errors = 0
        self.disabled = False
        self._lock = threading.Lock()

    @classmethod
    def from_manifest(cls, name: str, manifest: dict, *, seed: int = 0,
                      **kwargs) -> "QualityMonitor":
        """Build a monitor for a registered model from its manifest."""
        schema = TableSchema.from_dict(manifest["schema"])
        lo, hi = manifest_ranges(manifest)
        return cls(name, schema, lo, hi,
                   reference=manifest.get("reference_stats"),
                   seed=seed, **kwargs)

    # ------------------------------------------------------------------
    # Taps (the only methods on the hot path).
    # ------------------------------------------------------------------
    def tap(self, values) -> None:
        """Fold one block of decoded rows (threaded tier's decode path).

        Never raises: a broken sketch is an observability gap, not a
        serving outage.
        """
        if self.disabled:
            return
        try:
            fault_point("quality.tap")
            with self._lock:
                self.sketch.update(values)
        except BaseException:
            self._tap_failed()

    def fold(self, payload, rows=None) -> None:
        """Fold a worker-computed stats payload (procpool collector path).

        ``rows`` is the decoded block from the shared ring; the parent
        reservoir-samples it here so reservoir RNG consumption stays
        single-process and seeded.  A ``None`` payload means the worker's
        sketch crashed — counted, never propagated.
        """
        if self.disabled:
            return
        if payload is None:
            self._tap_failed()
            return
        try:
            fault_point("quality.tap")
            with self._lock:
                self.sketch.merge_payload(payload)
                if rows is not None:
                    self.sketch.reservoir.update(rows)
        except BaseException:
            self._tap_failed()

    def _tap_failed(self) -> None:
        self.tap_errors += 1
        if self.tap_errors >= MAX_TAP_ERRORS:
            self.disabled = True

    def worker_config(self) -> tuple:
        """``(col_min, col_max, bins)`` for building aligned worker sketches."""
        return (self.col_min, self.col_max, self.bins)

    # ------------------------------------------------------------------
    # Scoring and reporting (exposition-time only).
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return self.sketch.snapshot()

    def drift(self) -> dict | None:
        """Drift scores vs the frozen reference (None when unregistered)."""
        if not self.reference:
            return None
        return score_drift(self.reference, self.snapshot(),
                           warn=self.warn, drift=self.drift_threshold,
                           min_rows=self.min_rows)

    @property
    def status(self) -> str:
        """Rollup ``ok | warn | drift`` (``ok`` when there is no reference)."""
        scores = self.drift()
        return scores["status"] if scores else "ok"

    def gauge_scores(self) -> tuple[str, dict[str, float], int]:
        """``(status, {column: statistic}, rows)`` for the metric collector."""
        scores = self.drift()
        rows = self.sketch.count
        if scores is None:
            return "ok", {}, rows
        return (scores["status"],
                {name: col["statistic"] for name, col in scores["columns"].items()},
                rows)

    def summary(self) -> dict:
        """Compact per-model entry for the ``/metrics`` JSON document."""
        scores = self.drift()
        out = {
            "status": scores["status"] if scores else "ok",
            "rows_sketched": self.sketch.count,
            "reference": bool(self.reference),
            "tap_errors": self.tap_errors,
        }
        if scores:
            out["columns"] = {
                name: col["statistic"]
                for name, col in scores["columns"].items()
            }
        return out

    def _quantiles(self) -> dict[str, list[float]]:
        with self._lock:
            sample = self.sketch.reservoir.sample().copy()
        if len(sample) == 0:
            return {}
        qs = np.percentile(sample, [5.0, 50.0, 95.0], axis=0)
        return {
            name: [round(float(qs[j, i]), 6) for j in range(3)]
            for i, name in enumerate(self.schema.names)
        }

    def report(self) -> dict:
        """Full JSON document for ``GET /models/{ref}/quality``."""
        snap = self.snapshot()
        scores = score_drift(self.reference, snap,
                             warn=self.warn, drift=self.drift_threshold,
                             min_rows=self.min_rows) if self.reference else None
        return {
            "model": self.name,
            "status": scores["status"] if scores else "ok",
            "reference": bool(self.reference),
            "rows_sketched": snap["rows"],
            "tap_errors": self.tap_errors,
            "tap_disabled": self.disabled,
            "drift": scores,
            "sketch": snap,
            "reservoir_quantiles": self._quantiles(),
        }
