"""Sharded parallel sampling: fan generation across a worker pool.

Chunked/trained generators are embarrassingly parallel to *sample* from
(§4.4): rows are i.i.d. draws, so a large request can be split into shards
and generated on several processes at once.  The one thing parallelism
must never change is the output, so determinism is built into the plan,
not the scheduling:

* :func:`plan_shards` splits ``n`` rows into fixed-size shards and gives
  each shard its own child of one ``np.random.SeedSequence`` — the spawn
  tree depends only on ``(n, shard_rows, seed)``, never on the worker
  count;
* each worker loads the model from the :class:`~repro.serve.registry.
  ModelRegistry` (once per process) and samples its shards with the
  shard-local RNG;
* results are assembled in shard order.

Hence ``--workers 1`` and ``--workers 8`` produce **bit-identical**
output; the pool only decides which process computes which shard.  Workers
re-load from the registry instead of inheriting live objects, so the same
code path works under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.serve.registry import ModelRegistry, RegistryError


@dataclass(frozen=True)
class Shard:
    """One unit of the generation plan: ``rows`` rows under ``seed``."""

    index: int
    rows: int
    seed: np.random.SeedSequence


def plan_shards(n: int, shard_rows: int, seed=None) -> list[Shard]:
    """Deterministic shard plan for ``n`` rows, independent of workers.

    Every shard holds ``shard_rows`` rows except a short final remainder,
    and carries its own spawned :class:`~numpy.random.SeedSequence` child,
    so the plan — and therefore the sampled output — is a pure function of
    ``(n, shard_rows, seed)``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if shard_rows <= 0:
        raise ValueError(f"shard_rows must be positive, got {shard_rows}")
    n_shards = -(-n // shard_rows)
    children = np.random.SeedSequence(seed).spawn(n_shards)
    return [
        Shard(index=i, rows=min(shard_rows, n - i * shard_rows), seed=child)
        for i, child in enumerate(children)
    ]


# ----------------------------------------------------------------------
# Worker-side machinery.  Module-level (picklable) so both fork and spawn
# start methods can run it; each worker process loads the model from the
# registry exactly once and caches it.
# ----------------------------------------------------------------------
_WORKER_MODEL: dict = {}


def _worker_init(root: str, name: str) -> None:
    _WORKER_MODEL["model"] = ModelRegistry(root).load(name)


def _sample_shard(shard: Shard) -> np.ndarray:
    model = _WORKER_MODEL["model"]
    table = model.sample(shard.rows, rng=np.random.default_rng(shard.seed))
    return table.values


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardedSampler:
    """Sample a registered model across a ``multiprocessing`` pool.

    Parameters
    ----------
    registry:
        :class:`ModelRegistry` or a registry root path.
    name:
        Registered model name (``TableGAN`` or ``ChunkedTableGAN``).
    shard_rows:
        Rows per shard.  Also the unit of streaming: sinks receive one
        shard at a time, so peak memory is ``O(shard_rows)``, not ``O(n)``.
    start_method:
        ``multiprocessing`` start method; default ``fork`` where available
        (cheap on POSIX), else ``spawn``.
    """

    def __init__(self, registry, name: str, shard_rows: int = 8192,
                 start_method: str | None = None):
        if shard_rows <= 0:
            raise ValueError(f"shard_rows must be positive, got {shard_rows}")
        registry = (
            registry if isinstance(registry, ModelRegistry)
            else ModelRegistry(registry)
        )
        self.registry = registry
        # Pin the registration NOW: a bare name means "newest version", and
        # resolving it once here (rather than independently in the parent
        # and in every worker) keeps the output worker-invariant even if a
        # new version is registered mid-run.
        try:
            self.name = registry.resolve(name)
        except RegistryError as exc:
            raise ValueError(
                f"no model named {name!r} in {registry.root}"
            ) from exc
        self.shard_rows = shard_rows
        self.start_method = start_method or _default_start_method()
        self._model = None

    def model(self):
        """The registry model, loaded lazily in this process."""
        if self._model is None:
            self._model = self.registry.load(self.name)
        return self._model

    @property
    def schema(self):
        """Schema of the sampled table."""
        model = self.model()
        reference = model if hasattr(model, "codec_") else model.models_[0]
        return reference.codec_.schema_

    def _shard_values(self, shards, workers: int):
        """Yield each shard's decoded values, in shard order."""
        workers = min(int(workers), len(shards))
        if workers <= 1:
            model = self.model()
            for shard in shards:
                yield model.sample(
                    shard.rows, rng=np.random.default_rng(shard.seed)
                ).values
            return
        ctx = multiprocessing.get_context(self.start_method)
        with ctx.Pool(
            workers, initializer=_worker_init,
            initargs=(os.fspath(self.registry.root), self.name),
        ) as pool:
            # imap preserves shard order while shards compute out of order,
            # so results stream to the caller as their turn comes up.
            yield from pool.imap(_sample_shard, shards)

    def sample_values(self, n: int, seed=None, workers: int = 1) -> np.ndarray:
        """``n`` decoded rows as a value matrix, invariant to ``workers``."""
        shards = plan_shards(n, self.shard_rows, seed)
        return np.concatenate(list(self._shard_values(shards, workers)), axis=0)

    def sample_table(self, n: int, seed=None, workers: int = 1) -> Table:
        """``n`` decoded rows as a schema-valid :class:`Table`."""
        return Table(self.sample_values(n, seed=seed, workers=workers),
                     self.schema)

    def sample_to_sink(self, n: int, sink, seed=None, workers: int = 1) -> int:
        """Stream ``n`` rows into ``sink`` shard by shard; returns rows written.

        Combined with the streaming sinks this generates multi-million-row
        outputs in bounded memory: no more than one shard per worker is in
        flight, and each shard is written and dropped as soon as its turn
        in the output order arrives.
        """
        shards = plan_shards(n, self.shard_rows, seed)
        written = 0
        for values in self._shard_values(shards, workers):
            sink.write(values)
            written += values.shape[0]
        return written
