"""Streaming output sinks: multi-million-row synthesis in bounded memory.

A sink accepts decoded table values chunk by chunk (each chunk typically
one shard from :class:`~repro.serve.sharding.ShardedSampler`) and writes
them to disk immediately, so peak memory is one chunk regardless of total
output size.  Both sinks are **atomic**: content goes to a temporary file
next to the destination and is committed with ``os.replace`` on a clean
close; on error (or ``close(commit=False)``) the temporary file is removed
and the destination is never touched — a crashed million-row export leaves
no half-written file behind.

* :class:`CsvSink` — schema-aware CSV with categorical codes decoded to
  their vocabulary strings, row format shared with
  :func:`repro.data.io.write_csv` via ``iter_decoded_rows``.
* :class:`NpzSink` — a ``np.load``-compatible ``.npz`` archive written
  incrementally: each chunk becomes one ``chunk_NNNNN`` member (plus a
  ``columns`` member), so neither writer nor reader ever needs the full
  matrix in memory at once.  :func:`read_npz_chunks` reassembles it.
"""

from __future__ import annotations

import csv
import os
import zipfile

import numpy as np

from repro.data.io import iter_decoded_rows
from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.utils.faults import fault_point


class _AtomicSink:
    """Shared temp-file lifecycle: write to ``.tmp``, commit via replace."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._tmp = f"{self.path}.tmp-{os.getpid()}"
        self.rows_written = 0
        self._closed = False

    def _commit_payload(self) -> None:
        """Hook: flush and close the underlying writer."""
        raise NotImplementedError

    def close(self, commit: bool = True) -> None:
        """Finish the sink; commit moves the temp file to the final path."""
        if self._closed:
            return
        self._closed = True
        try:
            self._commit_payload()
        except BaseException:
            commit = False
            raise
        finally:
            if commit:
                os.replace(self._tmp, self.path)
            else:
                try:
                    os.unlink(self._tmp)
                except OSError:
                    pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close(commit=exc_type is None)
        return False


class CsvSink(_AtomicSink):
    """Append decoded table rows to a CSV file, chunk by chunk.

    Parameters
    ----------
    path:
        Final CSV path (written atomically on close).
    schema:
        Table schema; drives the header and categorical decoding.
    """

    def __init__(self, path, schema: TableSchema):
        super().__init__(path)
        self.schema = schema
        self._handle = open(self._tmp, "w", newline="")
        self._writer = csv.writer(self._handle)
        self._writer.writerow(schema.names)

    def write(self, values) -> int:
        """Write one chunk (a value matrix or a Table); returns its row count."""
        if self._closed:
            raise ValueError("sink is closed")
        # Injection seam: a raise mid-export must abort the temp file and
        # leave the destination untouched (the atomicity contract).
        fault_point("sink.write")
        table = values if isinstance(values, Table) else Table(
            np.asarray(values), self.schema
        )
        if table.schema is not self.schema and table.schema != self.schema:
            raise ValueError("chunk schema does not match the sink schema")
        self._writer.writerows(iter_decoded_rows(table))
        self.rows_written += table.n_rows
        return table.n_rows

    def _commit_payload(self) -> None:
        self._handle.close()


class NpzSink(_AtomicSink):
    """Stream value chunks into a ``np.load``-compatible ``.npz`` archive.

    Each :meth:`write` call appends one ``chunk_NNNNN`` member; close adds
    a ``columns`` member naming the columns.  Compression is per member,
    so memory stays bounded by the largest single chunk.
    """

    def __init__(self, path, columns=None):
        super().__init__(path)
        self.columns = tuple(columns) if columns is not None else None
        self._zip = zipfile.ZipFile(self._tmp, "w", zipfile.ZIP_DEFLATED,
                                    allowZip64=True)
        self._n_chunks = 0

    def _write_member(self, name: str, values: np.ndarray) -> None:
        with self._zip.open(f"{name}.npy", "w") as handle:
            np.lib.format.write_array(handle, values, allow_pickle=False)

    def write(self, values) -> int:
        """Write one chunk of rows; returns its row count."""
        if self._closed:
            raise ValueError("sink is closed")
        fault_point("sink.write")
        values = values.values if isinstance(values, Table) else values
        values = np.ascontiguousarray(values)
        if values.ndim != 2:
            raise ValueError(f"chunks must be 2-D, got shape {values.shape}")
        if self.columns is not None and values.shape[1] != len(self.columns):
            raise ValueError(
                f"chunk has {values.shape[1]} columns, sink expects "
                f"{len(self.columns)}"
            )
        self._write_member(f"chunk_{self._n_chunks:05d}", values)
        self._n_chunks += 1
        self.rows_written += values.shape[0]
        return values.shape[0]

    def _commit_payload(self) -> None:
        try:
            if self.columns is not None:
                self._write_member("columns", np.array(self.columns))
        finally:
            self._zip.close()


def read_npz_chunks(path) -> tuple[np.ndarray, tuple[str, ...] | None]:
    """Reassemble an :class:`NpzSink` archive into ``(values, columns)``.

    ``columns`` is ``None`` when the sink was written without column names.
    """
    with np.load(path) as archive:
        # Numeric sort: lexicographic order would misplace chunk_100000
        # (6 digits) before chunk_99999 once the zero padding overflows.
        keys = sorted(
            (k for k in archive.files if k.startswith("chunk_")),
            key=lambda k: int(k.rsplit("_", 1)[1]),
        )
        if not keys:
            raise ValueError(f"{path} holds no chunk members")
        values = np.concatenate([archive[k] for k in keys], axis=0)
        columns = (
            tuple(str(c) for c in archive["columns"])
            if "columns" in archive.files else None
        )
    return values, columns
