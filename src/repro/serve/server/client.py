"""SynthesisClient: a stdlib ``http.client`` client for the synthesis server.

The inverse of :mod:`repro.serve.server.http`: a thin, dependency-free
library (and the transport behind the serving benchmark's load generator)
that speaks the server's JSON/CSV protocol, keeps one persistent HTTP/1.1
connection per client, and understands the backpressure contract — 429
and 503 responses carry ``Retry-After``, which :meth:`SynthesisClient.
sample` honours for up to ``retries`` attempts (with jittered backoff)
before surfacing :class:`ServerError`.

Failure handling is typed and budgeted:

* :class:`ServerError` — a non-2xx response (status + decoded message).
* :class:`ProtocolError` — the server broke the wire protocol: truncated
  chunked body, non-JSON payload where JSON was promised.
* :class:`CircuitOpenError` — the client's circuit breaker is open; the
  request was *not* sent.
* :class:`DeadlineExpired` — the caller's deadline ran out client-side
  before (or between) attempts.

Connect failures, timeouts, 5xx responses, and protocol violations all
count toward one :class:`CircuitBreaker`: after ``failure_threshold``
consecutive failures the breaker opens and requests fail fast with
:class:`CircuitOpenError` instead of hammering a struggling server.
After ``breaker_reset_s`` it half-opens — exactly one probe request goes
through; success closes the breaker, failure re-opens it.

Deadlines: pass ``deadline_ms`` to :meth:`~SynthesisClient.sample` /
:meth:`~SynthesisClient.sample_csv` and the client sends the *remaining*
budget as ``X-Deadline-Ms`` on each attempt (the server drops expired
queued work with 504), caps retry backoff by the remaining budget, and
raises :class:`DeadlineExpired` rather than sleeping past it.

A client instance is **not** thread-safe (it owns one socket and one
breaker); give each thread its own — they are cheap.

Example::

    client = SynthesisClient(port=8000, retries=2)
    client.health()                      # {"status": "ok", ...}
    reply = client.sample("adult-low", n=500, deadline_ms=2000)
    reply["columns"], reply["rows"]      # decoded synthetic rows
    reply["offset"]                      # slice position in the model stream
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time

from repro.obs import trace


class ServerError(RuntimeError):
    """A non-2xx server response, with its status and decoded message."""

    def __init__(self, status: int, message: str,
                 retry_after_s: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


class ClientError(RuntimeError):
    """Base for client-side failures (no usable server response)."""


class ProtocolError(ClientError):
    """The server violated the wire protocol (truncated/garbled response)."""


class CircuitOpenError(ClientError):
    """The circuit breaker is open; the request was not attempted."""


class DeadlineExpired(ClientError):
    """The caller's deadline ran out before the request could complete."""


class CircuitBreaker:
    """Consecutive-failure breaker: closed → open → half-open → closed.

    Not thread-safe (it belongs to a single-threaded client).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_after_s:
        How long an open breaker waits before letting one probe through
        (half-open).  The probe's success closes the breaker; its failure
        re-opens it for another full window.
    """

    def __init__(self, failure_threshold: int = 5, reset_after_s: float = 1.0):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self.consecutive_failures = 0
        self.opened_count = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """``closed`` | ``open`` | ``half_open``."""
        if self._opened_at is None:
            return "closed"
        if (self._probing
                or time.monotonic() - self._opened_at >= self.reset_after_s):
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """May a request go out right now?  (Half-open admits one probe.)"""
        if self._opened_at is None:
            return True
        if self._probing:
            return False
        if time.monotonic() - self._opened_at >= self.reset_after_s:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        was_open = self._opened_at is not None
        self._probing = False
        if self.consecutive_failures >= self.failure_threshold or was_open:
            if not was_open:
                self.opened_count += 1
            # A failed half-open probe re-opens for another full window.
            self._opened_at = time.monotonic()


class SynthesisClient:
    """Client for a running :class:`~repro.serve.server.http.SynthesisServer`.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout in seconds for connect and each read.
    retries:
        How many times 429/503 responses are retried (sleeping per the
        server's ``Retry-After`` hint with ±50% jitter, capped at
        ``max_backoff_s`` and by the caller's remaining deadline) before
        :class:`ServerError` propagates.  0 disables retrying.
    failure_threshold, breaker_reset_s:
        Circuit breaker policy (see :class:`CircuitBreaker`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, *,
                 timeout: float = 60.0, retries: int = 0,
                 max_backoff_s: float = 2.0,
                 failure_threshold: int = 5, breaker_reset_s: float = 1.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.max_backoff_s = max_backoff_s
        self.breaker = CircuitBreaker(failure_threshold, breaker_reset_s)
        self._conn: http.client.HTTPConnection | None = None
        # Deterministic per-instance jitter stream: reproducible runs
        # without synchronizing backoff across a fleet of clients.
        self._rng = random.Random(hash((host, port)) & 0xFFFF_FFFF)

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Request = one small segment; without TCP_NODELAY it can sit
            # behind the server's delayed ACK and add ~40 ms per call.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        """Close the persistent connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SynthesisClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _roundtrip(self, method: str, path: str, body: bytes | None,
                   headers: dict) -> tuple[int, dict, bytes]:
        """One request/response; reconnects once on a dead kept-alive socket.

        The automatic resend is deliberately narrow: only when a *reused*
        connection turns out to be dead at the protocol level (the server
        closed an idle keep-alive socket), which means the request cannot
        have been processed.  Timeouts and errors on fresh connections are
        raised — a sample request is not idempotent (it consumes a slice
        of the model's record stream), so blindly re-sending one that may
        already be executing would run it twice and skip a slice.
        """
        for attempt in (0, 1):
            reused = self._conn is not None
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()  # drains chunked bodies too
                if getattr(response, "will_close", False):
                    self.close()
                return response.status, dict(response.headers), payload
            except socket.timeout:
                self.close()
                raise
            except http.client.IncompleteRead as exc:
                # The server died (or was killed) mid-body: the chunked
                # stream ended without its terminating 0-length chunk.
                self.close()
                raise ProtocolError(
                    f"response body truncated mid-stream: {exc!r}"
                ) from exc
            except (http.client.RemoteDisconnected, BrokenPipeError,
                    ConnectionResetError, http.client.CannotSendRequest):
                self.close()
                if attempt or not reused:
                    raise
            except (http.client.HTTPException, OSError):
                self.close()
                raise
        raise AssertionError("unreachable")

    @staticmethod
    def _retry_after_s(headers: dict) -> float | None:
        """Parse ``Retry-After``; a malformed hint is ignored, not fatal."""
        raw = headers.get("Retry-After")
        if raw is None:
            return None
        try:
            value = float(raw)
        except (TypeError, ValueError):
            return None
        return value if value >= 0 else None

    def _request(self, method: str, path: str, payload=None,
                 accept: str = "application/json",
                 deadline_ms: float | None = None,
                 trace_id: str | None = None) -> tuple[dict, bytes]:
        body = None
        headers = {"Accept": accept}
        if trace_id is None:
            # A client running inside a traced process propagates its own
            # trace automatically, so server spans join the caller's.
            ctx = trace.current()
            if ctx is not None:
                trace_id = ctx[0]
        if trace_id is not None:
            headers["X-Trace-Id"] = str(trace_id)
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        deadline = (time.monotonic() + deadline_ms / 1000.0
                    if deadline_ms is not None else None)
        attempts = 0
        while True:
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                raise DeadlineExpired(
                    f"deadline expired after {attempts} attempt(s)"
                )
            if not self.breaker.allow():
                raise CircuitOpenError(
                    "circuit breaker is open after "
                    f"{self.breaker.consecutive_failures} consecutive "
                    "failures; not sending"
                )
            if remaining is not None:
                # Propagate the *remaining* budget so the server can drop
                # our request from its queue once it cannot answer in time.
                headers["X-Deadline-Ms"] = str(max(1, int(remaining * 1000)))
            try:
                status, resp_headers, raw = self._roundtrip(
                    method, path, body, headers
                )
            except ProtocolError:
                self.breaker.record_failure()
                raise
            except socket.timeout as exc:
                self.breaker.record_failure()
                raise ClientError(f"request timed out: {exc!r}") from exc
            except (http.client.HTTPException, OSError) as exc:
                self.breaker.record_failure()
                raise ClientError(f"transport failure: {exc!r}") from exc
            if status >= 500:
                # 5xx counts toward the breaker; 4xx (our own bad request)
                # and 429 (healthy backpressure) do not.
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
            if status < 400:
                return resp_headers, raw
            message = self._error_message(raw)
            retry_after_s = self._retry_after_s(resp_headers)
            if status in (429, 503) and attempts < self.retries:
                attempts += 1
                backoff = min(retry_after_s or 0.1, self.max_backoff_s)
                backoff *= 0.5 + self._rng.random()  # jitter: ±50%
                if remaining is not None:
                    budget = deadline - time.monotonic()
                    if budget <= backoff:
                        # No room to sleep and retry: surface the last
                        # server answer rather than blowing the deadline.
                        raise ServerError(status, message, retry_after_s)
                time.sleep(backoff)
                continue
            raise ServerError(status, message, retry_after_s)

    @staticmethod
    def _error_message(raw: bytes) -> str:
        try:
            return json.loads(raw.decode("utf-8"))["error"]
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
            return raw.decode("utf-8", errors="replace").strip() or "(no body)"

    def _json_body(self, raw: bytes):
        """Decode a 2xx JSON body; garbage counts toward the breaker."""
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.breaker.record_failure()
            raise ProtocolError(
                f"server sent invalid JSON where JSON was promised: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz`` (includes per-model worker health)."""
        _, raw = self._request("GET", "/healthz")
        return self._json_body(raw)

    def metrics(self) -> dict:
        """``GET /metrics`` (the JSON payload)."""
        _, raw = self._request("GET", "/metrics")
        return self._json_body(raw)

    def metrics_text(self) -> str:
        """``GET /metrics`` as Prometheus text exposition."""
        _, raw = self._request("GET", "/metrics", accept="text/plain")
        return raw.decode("utf-8")

    def models(self) -> list[dict]:
        """``GET /models`` — every registration in the server's registry."""
        _, raw = self._request("GET", "/models")
        return self._json_body(raw)["models"]

    def manifest(self, ref: str) -> dict:
        """``GET /models/{ref}`` — one model's manifest."""
        _, raw = self._request("GET", f"/models/{ref}")
        return self._json_body(raw)

    def sample(self, ref: str, n: int,
               deadline_ms: float | None = None,
               trace_id: str | None = None) -> dict:
        """``POST /models/{ref}/sample`` for JSON rows.

        Returns the decoded reply dict — ``columns``, ``rows``, ``offset``
        (the response's slice position in the model's seeded record
        stream), ``n``, ``model``, plus ``trace_id``: the id the server
        tagged the request's spans with (echoed ``X-Trace-Id``).  Pass
        ``trace_id`` to pin it; otherwise the current trace context (if
        any) or a server-generated id is used.  Large requests (over the
        server's stream threshold) arrive as NDJSON chunks and are
        reassembled here into the same shape.  ``deadline_ms`` bounds the
        whole call (including retries) and is propagated to the server.
        """
        headers, raw = self._request(
            "POST", f"/models/{ref}/sample",
            payload={"n": n, "format": "json"}, deadline_ms=deadline_ms,
            trace_id=trace_id,
        )
        if "ndjson" in headers.get("Content-Type", ""):
            try:
                rows = [json.loads(line) for line in raw.splitlines() if line]
            except json.JSONDecodeError as exc:
                self.breaker.record_failure()
                raise ProtocolError(
                    f"malformed NDJSON stream line: {exc}"
                ) from exc
            columns = headers.get("X-Columns")
            return {
                "model": ref,
                "n": n,
                "offset": int(headers["X-Stream-Offset"]),
                "columns": json.loads(columns) if columns else None,
                "rows": rows,
                "trace_id": headers.get("X-Trace-Id"),
            }
        reply = self._json_body(raw)
        if isinstance(reply, dict):
            reply["trace_id"] = headers.get("X-Trace-Id")
        return reply

    def sample_csv(self, ref: str, n: int,
                   deadline_ms: float | None = None,
                   trace_id: str | None = None) -> str:
        """``POST /models/{ref}/sample`` for CSV text (header row included).

        Transparently handles both small (buffered) and large (chunked
        streaming) responses — ``http.client`` reassembles the chunks.
        """
        _, raw = self._request(
            "POST", f"/models/{ref}/sample", payload={"n": n, "format": "csv"},
            accept="text/csv", deadline_ms=deadline_ms, trace_id=trace_id,
        )
        return raw.decode("utf-8")
