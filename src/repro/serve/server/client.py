"""SynthesisClient: a stdlib ``http.client`` client for the synthesis server.

The inverse of :mod:`repro.serve.server.http`: a thin, dependency-free
library (and the transport behind the serving benchmark's load generator)
that speaks the server's JSON/CSV protocol, keeps one persistent HTTP/1.1
connection per client, and understands the backpressure contract — 429
and 503 responses carry ``Retry-After``, which :meth:`SynthesisClient.
sample` honours for up to ``retries`` attempts before surfacing
:class:`ServerError`.

A client instance is **not** thread-safe (it owns one socket); give each
thread its own — they are cheap.

Example::

    client = SynthesisClient(port=8000)
    client.health()                      # {"status": "ok", ...}
    reply = client.sample("adult-low", n=500)
    reply["columns"], reply["rows"]      # decoded synthetic rows
    reply["offset"]                      # slice position in the model stream
"""

from __future__ import annotations

import http.client
import json
import socket
import time


class ServerError(RuntimeError):
    """A non-2xx server response, with its status and decoded message."""

    def __init__(self, status: int, message: str,
                 retry_after_s: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


class SynthesisClient:
    """Client for a running :class:`~repro.serve.server.http.SynthesisServer`.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout in seconds for connect and each read.
    retries:
        How many times 429/503 responses are retried (sleeping per the
        server's ``Retry-After`` hint, capped at ``max_backoff_s``) before
        :class:`ServerError` propagates.  0 disables retrying.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, *,
                 timeout: float = 60.0, retries: int = 0,
                 max_backoff_s: float = 2.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.max_backoff_s = max_backoff_s
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Request = one small segment; without TCP_NODELAY it can sit
            # behind the server's delayed ACK and add ~40 ms per call.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        """Close the persistent connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SynthesisClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _roundtrip(self, method: str, path: str, body: bytes | None,
                   headers: dict) -> tuple[int, dict, bytes]:
        """One request/response; reconnects once on a dead kept-alive socket.

        The automatic resend is deliberately narrow: only when a *reused*
        connection turns out to be dead at the protocol level (the server
        closed an idle keep-alive socket), which means the request cannot
        have been processed.  Timeouts and errors on fresh connections are
        raised — a sample request is not idempotent (it consumes a slice
        of the model's record stream), so blindly re-sending one that may
        already be executing would run it twice and skip a slice.
        """
        for attempt in (0, 1):
            reused = self._conn is not None
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()  # drains chunked bodies too
                if getattr(response, "will_close", False):
                    self.close()
                return response.status, dict(response.headers), payload
            except socket.timeout:
                self.close()
                raise
            except (http.client.RemoteDisconnected, BrokenPipeError,
                    ConnectionResetError, http.client.CannotSendRequest):
                self.close()
                if attempt or not reused:
                    raise
            except (http.client.HTTPException, OSError):
                self.close()
                raise
        raise AssertionError("unreachable")

    def _request(self, method: str, path: str, payload=None,
                 accept: str = "application/json") -> tuple[dict, bytes]:
        body = None
        headers = {"Accept": accept}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempts = 0
        while True:
            status, resp_headers, raw = self._roundtrip(
                method, path, body, headers
            )
            if status < 400:
                return resp_headers, raw
            message = self._error_message(raw)
            retry_after = resp_headers.get("Retry-After")
            retry_after_s = float(retry_after) if retry_after else None
            if status in (429, 503) and attempts < self.retries:
                attempts += 1
                time.sleep(min(retry_after_s or 0.1, self.max_backoff_s))
                continue
            raise ServerError(status, message, retry_after_s)

    @staticmethod
    def _error_message(raw: bytes) -> str:
        try:
            return json.loads(raw.decode("utf-8"))["error"]
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
            return raw.decode("utf-8", errors="replace").strip() or "(no body)"

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz``."""
        _, raw = self._request("GET", "/healthz")
        return json.loads(raw)

    def metrics(self) -> dict:
        """``GET /metrics``."""
        _, raw = self._request("GET", "/metrics")
        return json.loads(raw)

    def models(self) -> list[dict]:
        """``GET /models`` — every registration in the server's registry."""
        _, raw = self._request("GET", "/models")
        return json.loads(raw)["models"]

    def manifest(self, ref: str) -> dict:
        """``GET /models/{ref}`` — one model's manifest."""
        _, raw = self._request("GET", f"/models/{ref}")
        return json.loads(raw)

    def sample(self, ref: str, n: int) -> dict:
        """``POST /models/{ref}/sample`` for JSON rows.

        Returns the decoded reply dict — ``columns``, ``rows``, ``offset``
        (the response's slice position in the model's seeded record
        stream), ``n``, ``model``.  Large requests (over the server's
        stream threshold) arrive as NDJSON chunks and are reassembled here
        into the same shape.
        """
        headers, raw = self._request(
            "POST", f"/models/{ref}/sample", payload={"n": n, "format": "json"}
        )
        if "ndjson" in headers.get("Content-Type", ""):
            rows = [json.loads(line) for line in raw.splitlines() if line]
            columns = headers.get("X-Columns")
            return {
                "model": ref,
                "n": n,
                "offset": int(headers["X-Stream-Offset"]),
                "columns": json.loads(columns) if columns else None,
                "rows": rows,
            }
        return json.loads(raw)

    def sample_csv(self, ref: str, n: int) -> str:
        """``POST /models/{ref}/sample`` for CSV text (header row included).

        Transparently handles both small (buffered) and large (chunked
        streaming) responses — ``http.client`` reassembles the chunks.
        """
        _, raw = self._request(
            "POST", f"/models/{ref}/sample", payload={"n": n, "format": "csv"},
            accept="text/csv",
        )
        return raw.decode("utf-8")
