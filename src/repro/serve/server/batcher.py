"""Cross-request batch coalescing: one generator pass for N waiting clients.

The HTTP front end handles each connection on its own thread, but small
synthesis requests must not each pay a generator forward.  The batcher
closes that gap: handler threads **submit** requests into a bounded FIFO
queue and block; a single worker thread owns the model's
:class:`~repro.serve.service.SynthesisService` and repeatedly drains
*everything* queued into one :meth:`~repro.serve.service.SynthesisService.
take_block` call — one replenishment tick, one coalesced generator
forward, one block decode — then hands each handler its slice.  N clients
asking for 100 rows each cost one 100·N-row forward instead of N small
ones.

Determinism is preserved because admission order is serve order: the
queue is FIFO, the worker is the only consumer, and ``take_block`` claims
contiguous stream rows — so every response is a contiguous slice of the
model's single seeded record stream, tagged with its offset.

Three request shapes flow through the same queue:

* **coalesced** (default) — consecutive queued requests drain as one tick;
* **per-request** (``coalesce=False``) — one tick per request, retained as
  the measurable baseline the benchmark's ``serving`` section compares
  against;
* **streamed** — a large export (:meth:`CoalescingBatcher.submit_stream`)
  drains alone, chunk by chunk, through a small bounded hand-off queue:
  the response needs bounded memory, but its rows are still one
  contiguous, atomically-reserved stream slice because the worker serves
  nothing else until the stream completes.

Admission control is the queue bound: when ``max_queue_depth`` requests
are already waiting or in flight, :meth:`~CoalescingBatcher.submit`
raises :class:`QueueSaturated` and the HTTP layer turns that into
``429 Retry-After`` instead of letting latency grow without bound.
"""

from __future__ import annotations

import queue
import threading
from collections import deque

import numpy as np


class BatcherClosed(RuntimeError):
    """The batcher is shut down and no longer accepts requests."""


class QueueSaturated(RuntimeError):
    """Admission control: the request queue is at ``max_queue_depth``.

    ``retry_after_s`` is the backpressure hint surfaced to clients as the
    HTTP ``Retry-After`` header.
    """

    def __init__(self, depth: int, retry_after_s: float = 1.0):
        super().__init__(
            f"request queue is saturated ({depth} requests queued or in flight)"
        )
        self.depth = depth
        self.retry_after_s = retry_after_s


class _PendingSlice:
    """One queued small request; the handler thread blocks on ``event``."""

    __slots__ = ("n", "event", "values", "offset", "error")

    def __init__(self, n: int):
        self.n = n
        self.event = threading.Event()
        self.values: np.ndarray | None = None
        self.offset: int | None = None
        self.error: BaseException | None = None


class _PendingStream:
    """One queued large export, handed over chunk by chunk.

    The chunk queue is small and bounded: the worker generates at most
    ``maxsize`` chunks ahead of the consumer, so a slow client throttles
    generation instead of buffering the whole export.  ``cancel()`` (e.g.
    on client disconnect) makes the worker abandon the remaining rows.
    """

    __slots__ = ("n", "chunk_rows", "chunks", "cancelled")

    def __init__(self, n: int, chunk_rows: int, maxsize: int = 2):
        self.n = n
        self.chunk_rows = chunk_rows
        self.chunks: queue.Queue = queue.Queue(maxsize=maxsize)
        self.cancelled = threading.Event()

    def cancel(self) -> None:
        """Tell the worker to stop generating rows for this stream."""
        self.cancelled.set()
        # Drain anything buffered so a blocked worker put() wakes up.
        try:
            while True:
                self.chunks.get_nowait()
        except queue.Empty:
            pass

    def __iter__(self):
        """Yield ``(values, offset)`` chunks; re-raises worker errors."""
        while True:
            kind, payload, offset = self.chunks.get()
            if kind == "chunk":
                yield payload, offset
            elif kind == "end":
                return
            else:  # "error"
                raise payload


class CoalescingBatcher:
    """Single-consumer request queue in front of one ``SynthesisService``.

    Parameters
    ----------
    service:
        The (thread-safe) service this batcher owns.  Nothing else should
        sample from it while the batcher lives, or stream slices stop
        being contiguous per response.
    max_queue_depth:
        Admission bound: maximum requests queued or in flight before
        :meth:`submit` raises :class:`QueueSaturated`.
    coalesce:
        ``True`` drains every queued request per tick (the point of this
        class); ``False`` serves one request per tick — the per-request
        baseline path the serving benchmark quantifies coalescing against.
    name:
        Worker thread name suffix (diagnostics only).
    """

    def __init__(self, service, max_queue_depth: int = 64,
                 coalesce: bool = True, name: str = "model"):
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be non-negative, got {max_queue_depth}"
            )
        self.service = service
        self.max_queue_depth = max_queue_depth
        self.coalesce = coalesce
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._in_flight = 0
        self._streams_outstanding = 0
        self._closed = False
        self._ticks = 0
        self._replenish_ok = True
        self._worker = threading.Thread(
            target=self._drain_forever, name=f"synthesis-batcher-{name}",
            daemon=True,
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Producer side (handler threads).
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests waiting plus requests currently being served."""
        with self._cond:
            return len(self._queue) + self._in_flight

    @property
    def ticks(self) -> int:
        """Drain ticks completed so far (each is ≤ 1 replenishment)."""
        with self._cond:
            return self._ticks

    def _admit(self, pending) -> None:
        with self._cond:
            if self._closed:
                raise BatcherClosed("batcher is shut down")
            depth = len(self._queue) + self._in_flight
            if depth >= self.max_queue_depth:
                raise QueueSaturated(depth)
            self._queue.append(pending)
            if isinstance(pending, _PendingStream):
                # From admission until the worker finishes this stream the
                # pool-hit fast path stands down: a pool take between two
                # of its chunks would break the stream's contiguity.
                self._streams_outstanding += 1
            self._cond.notify()

    def submit(self, n: int) -> tuple[np.ndarray, int]:
        """Queue a request for ``n`` rows; block until served.

        Returns ``(values, offset)``: the decoded rows and their offset in
        the service's record stream.  Raises :class:`QueueSaturated` when
        admission control rejects the request and :class:`BatcherClosed`
        after shutdown.

        Pool-hit fast path: when the service's pool already holds the
        rows, the request is served in the caller's thread — there is no
        generator work to coalesce, so the two thread handoffs through
        the worker would be pure overhead.  Slice claims serialize on the
        service lock either way, so responses stay contiguous, disjoint
        slices in claim order.  The one case that must queue is while a
        *stream* is outstanding: a streamed export claims its span chunk
        by chunk, and a pool take between two of its chunks would break
        the stream's contiguity — the check runs under the queue
        condition, so no stream can be admitted or started concurrently.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        with self._cond:
            if self._closed:
                raise BatcherClosed("batcher is shut down")
            # Admission control applies to the fast path too: a saturated
            # server must shed load with 429, not let pool-hit requests
            # jump a full queue.
            depth = len(self._queue) + self._in_flight
            if depth >= self.max_queue_depth:
                raise QueueSaturated(depth)
            if self.coalesce and not self._streams_outstanding:
                hit = self.service.take_pooled(n)
                if hit is not None:
                    if self.service.pooled_rows * 2 < self.service.pool_size:
                        # Pool running low: wake the idle worker so it
                        # replenishes ahead of the next miss.
                        self._cond.notify()
                    return hit
        pending = _PendingSlice(n)
        self._admit(pending)
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.values, pending.offset

    def submit_stream(self, n: int, chunk_rows: int) -> _PendingStream:
        """Queue a large export served as bounded-memory chunks.

        Returns the pending stream; iterate it for ``(values, offset)``
        chunks (it re-raises worker-side errors).  The export occupies the
        worker until it completes, so its rows form one contiguous stream
        slice exactly like a small response.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        pending = _PendingStream(n, chunk_rows)
        self._admit(pending)
        return pending

    def close(self, timeout: float | None = 10.0) -> None:
        """Shut down: drain everything already admitted, then stop.

        Idempotent.  Requests submitted after close are rejected; requests
        admitted before it are still served (graceful drain).
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._worker.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Consumer side (the one worker thread).
    # ------------------------------------------------------------------
    #: Sentinel action: the worker is idle and the pool is low — generate
    #: ahead of demand instead of sleeping.
    _REPLENISH = object()

    def _replenish_ahead_needed(self) -> bool:
        return (self.coalesce and self._replenish_ok
                and self.service.pool_size > 0
                and self.service.pooled_rows * 2 < self.service.pool_size)

    def _next_action(self):
        """The worker's next unit of work (None = closed and drained)."""
        with self._cond:
            while True:
                if self._queue:
                    batch = [self._queue.popleft()]
                    if self.coalesce and isinstance(batch[0], _PendingSlice):
                        while (self._queue
                               and isinstance(self._queue[0], _PendingSlice)):
                            batch.append(self._queue.popleft())
                    self._in_flight = len(batch)
                    return batch
                if self._closed:
                    return None
                if self._replenish_ahead_needed():
                    return self._REPLENISH
                self._cond.wait()

    def _drain_forever(self) -> None:
        while True:
            batch = self._next_action()
            if batch is None:
                return
            if batch is self._REPLENISH:
                # Idle read-ahead: generation overlaps request serving
                # (the service's pool lock stays free), so pool misses —
                # and their latency bubbles — happen off the request path.
                try:
                    self.service.replenish()
                except Exception:  # noqa: BLE001
                    # Don't spin on a persistently failing generator; the
                    # next queued take surfaces the error to a client.
                    self._replenish_ok = False
                continue
            try:
                if isinstance(batch[0], _PendingStream):
                    self._serve_stream(batch[0])
                else:
                    self._serve_slices(batch)
            finally:
                with self._cond:
                    self._in_flight = 0
                    if isinstance(batch[0], _PendingStream):
                        self._streams_outstanding -= 1
                    self._ticks += 1

    def _serve_slices(self, batch: list) -> None:
        counts = [pending.n for pending in batch]
        try:
            values, base = self.service.take_block(counts)
        except BaseException as exc:
            for pending in batch:
                pending.error = exc
                pending.event.set()
            return
        # A successful take proves the generator healthy again, so a
        # transient replenish failure doesn't disable read-ahead forever.
        self._replenish_ok = True
        offset = base
        for pending, block in zip(batch, values):
            pending.values = block
            pending.offset = offset
            offset += pending.n
            pending.event.set()

    def _serve_stream(self, stream: _PendingStream) -> None:
        def hand_over(item) -> bool:
            """Put with cancellation checks; False = consumer gave up."""
            while True:
                if stream.cancelled.is_set():
                    return False
                try:
                    stream.chunks.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue

        remaining = stream.n
        try:
            while remaining:
                rows = min(stream.chunk_rows, remaining)
                values, base = self.service.take_block([rows])
                remaining -= rows
                if not hand_over(("chunk", values[0], base)):
                    return
            hand_over(("end", None, None))
        except BaseException as exc:
            hand_over(("error", exc, None))
