"""Cross-request batch coalescing: one generator pass for N waiting clients.

The HTTP front end handles each connection on its own thread, but small
synthesis requests must not each pay a generator forward.  The batcher
closes that gap: handler threads **submit** requests into a bounded FIFO
queue and block; a single worker thread owns the model's
:class:`~repro.serve.service.SynthesisService` and repeatedly drains
*everything* queued into one :meth:`~repro.serve.service.SynthesisService.
take_block` call — one replenishment tick, one coalesced generator
forward, one block decode — then hands each handler its slice.  N clients
asking for 100 rows each cost one 100·N-row forward instead of N small
ones.

Determinism is preserved because pop order is serve order: the worker is
the only consumer, and ``take_block`` claims contiguous stream rows — so
every response is a contiguous slice of the model's single seeded record
stream, tagged with its offset.  Header-less traffic pops in plain FIFO
admission order; requests carrying an ``X-Priority`` or ``X-Client-Id``
header flow through the :class:`_AdmissionQueue`'s priority bands and
per-client fair-share rotation (higher priority first; within a band,
one request per client per turn; FIFO per client), and per-client quotas
(``client_quota``) bound how much of the queue any one tenant can hold —
:class:`QuotaExceeded` maps to the same HTTP 429 as queue saturation.

Three request shapes flow through the same queue:

* **coalesced** (default) — consecutive queued requests drain as one tick;
* **per-request** (``coalesce=False``) — one tick per request, retained as
  the measurable baseline the benchmark's ``serving`` section compares
  against;
* **streamed** — a large export (:meth:`CoalescingBatcher.submit_stream`)
  drains alone, chunk by chunk, through a small bounded hand-off queue:
  the response needs bounded memory, but its rows are still one
  contiguous, atomically-reserved stream slice because the worker serves
  nothing else until the stream completes.

Admission control is the queue bound: when ``max_queue_depth`` requests
are already waiting or in flight, :meth:`~CoalescingBatcher.submit`
raises :class:`QueueSaturated` and the HTTP layer turns that into
``429 Retry-After`` instead of letting latency grow without bound.

Supervision
-----------
The worker thread runs under a supervisor loop: any exception escaping a
drain tick (including faults armed at the ``batcher.tick`` injection
seam) is treated as a **worker crash**, not a process failure.

* The crashed tick's streams fail immediately — some chunks may already
  be with the consumer, so a retry could never be transparent; the HTTP
  layer turns that into a truncated chunked body.
* The crashed tick's small slices are requeued **at the front** once for
  a transparent retry: the failed tick claimed no stream rows, so the
  retry returns bit-identical values at the same offsets.  A request
  whose tick crashes ``poison_strikes`` times is quarantined — failed
  with :class:`WorkerCrashed` (an HTTP 500) instead of retry-looping.
* The worker restarts after an exponential backoff
  (``restart_backoff_s`` doubling up to ``max_backoff_s``).  After
  ``max_restarts`` *consecutive* crashes (a clean tick resets the count)
  the batcher declares itself **dead**: everything queued fails with
  :class:`BatcherDead` and the router evicts/reloads the model on the
  next request.
* :attr:`~CoalescingBatcher.health` summarises the state machine:
  ``ok`` → ``degraded`` (crashed since the last clean tick) → ``dead``.

Deadlines: ``submit``/``submit_stream`` accept an absolute
``time.monotonic()`` deadline.  Expired work is dropped *before* it
reaches the generator — at admission, when the worker pops it, and (for
streams) before each chunk — raising :class:`DeadlineExceeded` (HTTP
504) instead of spending a generator forward on an answer nobody is
waiting for.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.utils.faults import fault_point


class BatcherClosed(RuntimeError):
    """The batcher is shut down and no longer accepts requests."""


class BatcherDead(BatcherClosed):
    """The worker exhausted its restart budget; the model needs a reload.

    Subclasses :class:`BatcherClosed` so existing shutdown handling
    applies, but the router additionally treats a dead batcher as
    evict-and-reload rather than drain-and-retry.
    """


class WorkerCrashed(RuntimeError):
    """The worker crashed while serving this request (HTTP 500)."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before it was served (HTTP 504)."""


class QueueSaturated(RuntimeError):
    """Admission control: the request queue is at ``max_queue_depth``.

    ``retry_after_s`` is the backpressure hint surfaced to clients as the
    HTTP ``Retry-After`` header.
    """

    def __init__(self, depth: int, retry_after_s: float = 1.0):
        super().__init__(
            f"request queue is saturated ({depth} requests queued or in flight)"
        )
        self.depth = depth
        self.retry_after_s = retry_after_s


class QuotaExceeded(QueueSaturated):
    """Per-client admission quota: one tenant may not own the queue.

    Subclasses :class:`QueueSaturated` so the HTTP layer's existing
    ``429 Retry-After`` mapping applies unchanged.
    """

    def __init__(self, client: str, load: int, quota: int,
                 retry_after_s: float = 1.0):
        RuntimeError.__init__(
            self,
            f"client {client!r} is over its admission quota "
            f"({load} of {quota} requests queued or in flight)",
        )
        self.depth = load
        self.retry_after_s = retry_after_s
        self.client = client
        self.quota = quota


class _PendingSlice:
    """One queued small request; the handler thread blocks on ``event``.

    ``strikes`` counts worker crashes while this request was in flight;
    at ``poison_strikes`` the request is quarantined instead of retried.
    """

    __slots__ = ("n", "event", "values", "offset", "error", "deadline",
                 "strikes", "ctx", "admitted_at", "priority", "client")

    def __init__(self, n: int, deadline: float | None = None,
                 priority: int = 0, client: str | None = None):
        self.n = n
        self.event = threading.Event()
        self.values: np.ndarray | None = None
        self.offset: int | None = None
        self.error: BaseException | None = None
        self.deadline = deadline
        self.priority = priority
        self.client = client
        self.strikes = 0
        # Captured in the handler thread: the trace context the worker
        # re-attaches so its spans parent to this request's handler span,
        # and the admission timestamp behind the queue-wait histogram.
        self.ctx = trace.current()
        self.admitted_at = time.perf_counter()


class _PendingStream:
    """One queued large export, handed over chunk by chunk.

    The chunk queue is small and bounded: the worker generates at most
    ``maxsize`` chunks ahead of the consumer, so a slow client throttles
    generation instead of buffering the whole export.  ``cancel()`` (e.g.
    on client disconnect) makes the worker abandon the remaining rows.
    """

    __slots__ = ("n", "chunk_rows", "chunks", "cancelled", "deadline",
                 "ctx", "admitted_at", "priority", "client")

    def __init__(self, n: int, chunk_rows: int, maxsize: int = 2,
                 deadline: float | None = None, priority: int = 0,
                 client: str | None = None):
        self.n = n
        self.chunk_rows = chunk_rows
        self.chunks: queue.Queue = queue.Queue(maxsize=maxsize)
        self.cancelled = threading.Event()
        self.deadline = deadline
        self.priority = priority
        self.client = client
        self.ctx = trace.current()
        self.admitted_at = time.perf_counter()

    def cancel(self) -> None:
        """Tell the worker to stop generating rows for this stream."""
        self.cancelled.set()
        # Drain anything buffered so a blocked worker put() wakes up.
        try:
            while True:
                self.chunks.get_nowait()
        except queue.Empty:
            pass

    def __iter__(self):
        """Yield ``(values, offset)`` chunks; re-raises worker errors."""
        while True:
            kind, payload, offset = self.chunks.get()
            if kind == "chunk":
                yield payload, offset
            elif kind == "end":
                return
            else:  # "error"
                raise payload


class _AdmissionQueue:
    """Priority bands + per-client fair share, with a bit-exact retry lane.

    Pop order:

    1. the **retry lane** — crash-retried requests go back out first, in
       their original pop order, so their stream claims stay
       bit-identical across the retry;
    2. the **highest priority band** present;
    3. within a band, **round-robin across clients** (one request per
       client per turn, FIFO per client), so no tenant starves another.

    Requests without a client id share one anonymous bucket, which makes
    header-less traffic behave exactly like the plain FIFO this class
    replaced.
    """

    __slots__ = ("_retry", "_bands", "_len")

    def __init__(self):
        self._retry: deque = deque()
        # priority → (client → deque of pendings), clients in rotation
        # order.  dict preserves insertion order; rotation moves a just-
        # served client to the back.
        self._bands: dict[int, dict] = {}
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def append(self, pending) -> None:
        band = self._bands.setdefault(pending.priority, {})
        lane = band.get(pending.client)
        if lane is None:
            lane = band[pending.client] = deque()
        lane.append(pending)
        self._len += 1

    def requeue_front(self, pendings) -> None:
        """Put crash-retried requests at the very front, order preserved."""
        self._retry.extendleft(reversed(pendings))
        self._len += len(pendings)

    def _select(self):
        prio = max(self._bands)
        band = self._bands[prio]
        client = next(iter(band))
        return prio, band, client

    def peek(self):
        """The request the next :meth:`popleft` will return (no rotation)."""
        if self._retry:
            return self._retry[0]
        if not self._bands:
            return None
        _, band, client = self._select()
        return band[client][0]

    def popleft(self):
        if self._retry:
            self._len -= 1
            return self._retry.popleft()
        prio, band, client = self._select()
        lane = band[client]
        pending = lane.popleft()
        self._len -= 1
        if lane:
            # Fair share: this client goes to the back of the rotation.
            del band[client]
            band[client] = lane
        else:
            del band[client]
            if not band:
                del self._bands[prio]
        return pending

    def drain(self):
        """Pop everything (dead/close drain), retry lane first."""
        while self._len:
            yield self.popleft()

    def queued_for(self, client) -> int:
        """Requests ``client`` currently has queued (quota accounting)."""
        count = sum(1 for p in self._retry if p.client == client)
        for band in self._bands.values():
            lane = band.get(client)
            if lane is not None:
                count += len(lane)
        return count


class CoalescingBatcher:
    """Single-consumer request queue in front of one ``SynthesisService``.

    Parameters
    ----------
    service:
        The (thread-safe) service this batcher owns.  Nothing else should
        sample from it while the batcher lives, or stream slices stop
        being contiguous per response.
    max_queue_depth:
        Admission bound: maximum requests queued or in flight before
        :meth:`submit` raises :class:`QueueSaturated`.
    coalesce:
        ``True`` drains every queued request per tick (the point of this
        class); ``False`` serves one request per tick — the per-request
        baseline path the serving benchmark quantifies coalescing against.
    name:
        Worker thread name suffix (diagnostics only).
    max_restarts:
        Consecutive worker crashes tolerated before the batcher declares
        itself dead (a clean tick resets the count).
    restart_backoff_s / max_backoff_s:
        Exponential backoff between worker restarts: the k-th consecutive
        crash waits ``restart_backoff_s * 2**(k-1)`` capped at
        ``max_backoff_s``.  ``close()`` interrupts the wait.
    poison_strikes:
        Worker crashes a single request may survive before it is
        quarantined (failed with :class:`WorkerCrashed`) instead of
        retried.
    client_quota:
        Maximum requests a single client id may have queued or in flight
        (``None`` = unlimited).  Requests without a client id are never
        quota-limited — only the global queue bound applies to them.
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` the batcher's
        counters and queue-wait histogram bind into (labeled
        ``model=name``).  Defaults to the process-wide registry; the
        bench injects a fresh one per server to isolate modes.
    """

    def __init__(self, service, max_queue_depth: int = 64,
                 coalesce: bool = True, name: str = "model",
                 max_restarts: int = 5, restart_backoff_s: float = 0.05,
                 max_backoff_s: float = 2.0, poison_strikes: int = 2,
                 client_quota: int | None = None, registry=None):
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be non-negative, got {max_queue_depth}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be non-negative, got {max_restarts}")
        if poison_strikes < 1:
            raise ValueError(f"poison_strikes must be positive, got {poison_strikes}")
        if client_quota is not None and client_quota < 1:
            raise ValueError(f"client_quota must be positive, got {client_quota}")
        self.service = service
        self.max_queue_depth = max_queue_depth
        self.coalesce = coalesce
        self.max_restarts = max_restarts
        self.restart_backoff_s = restart_backoff_s
        self.max_backoff_s = max_backoff_s
        self.poison_strikes = poison_strikes
        self.client_quota = client_quota
        self._queue = _AdmissionQueue()
        self._client_inflight: dict[str, int] = {}
        self._cond = threading.Condition()
        self._in_flight = 0
        self._streams_outstanding = 0
        self._closed = False
        self._dead = False
        self._ticks = 0
        self._replenish_ok = True
        # Supervision state.  _current_batch is touched only by the worker
        # thread (bound before a tick, read back by the supervisor after a
        # crash); the counters are read under _cond.
        self._current_batch: list | None = None
        self._consecutive_crashes = 0
        self._crashes = 0
        self._restarts = 0
        self._poisoned = 0
        self._deadline_drops = 0
        # Registry series, pre-bound once so hot-path updates are a
        # single locked increment each.
        self._model_name = name
        reg = registry if registry is not None else obs_metrics.REGISTRY
        self.telemetry_registry = reg
        self._m_queue_wait = reg.histogram(
            "batcher_queue_wait_seconds",
            "Time from request admission to the worker popping it",
        ).labels(model=name)
        self._m_crashes = reg.counter(
            "batcher_worker_crashes_total",
            "Worker crashes caught by the supervisor",
        ).labels(model=name)
        self._m_restarts = reg.counter(
            "batcher_worker_restarts_total",
            "Worker restarts after a crash",
        ).labels(model=name)
        self._m_quarantines = reg.counter(
            "batcher_worker_quarantines_total",
            "Requests quarantined after repeated worker crashes",
        ).labels(model=name)
        self._m_deadline_drops = reg.counter(
            "batcher_deadline_drops_total",
            "Requests dropped unserved because their deadline expired",
        ).labels(model=name)
        self._m_ticks = reg.counter(
            "batcher_ticks_total", "Drain ticks completed",
        ).labels(model=name)
        self._m_coalesced = reg.counter(
            "batcher_coalesced_requests_total",
            "Requests served through coalesced drain ticks",
        ).labels(model=name)
        self._wake = threading.Event()
        self._worker = threading.Thread(
            target=self._run, name=f"synthesis-batcher-{name}",
            daemon=True,
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Producer side (handler threads).
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests waiting plus requests currently being served."""
        with self._cond:
            return len(self._queue) + self._in_flight

    @property
    def ticks(self) -> int:
        """Drain ticks completed so far (each is ≤ 1 replenishment)."""
        with self._cond:
            return self._ticks

    @property
    def health(self) -> str:
        """``ok`` | ``degraded`` (crashed, recovering) | ``dead``."""
        with self._cond:
            return self._health_locked()

    def _health_locked(self) -> str:
        if self._dead:
            return "dead"
        if self._consecutive_crashes > 0:
            return "degraded"
        return "ok"

    def supervision(self) -> dict:
        """Health plus crash/restart/quarantine/deadline counters."""
        with self._cond:
            return {
                "health": self._health_locked(),
                "crashes": self._crashes,
                "restarts": self._restarts,
                "poisoned": self._poisoned,
                "deadline_drops": self._deadline_drops,
            }

    def queue_wait_summary(self) -> dict:
        """Admission→pop wait histogram (count/percentiles, JSON-ready)."""
        return self._m_queue_wait.summary()

    def _check_accepting(self) -> None:
        if self._dead:
            raise BatcherDead(
                "batcher worker is dead (restart budget exhausted); "
                "the model must be reloaded"
            )
        if self._closed:
            raise BatcherClosed("batcher is shut down")

    def _client_load_locked(self, client: str | None) -> int:
        if client is None:
            return 0
        return (self._queue.queued_for(client)
                + self._client_inflight.get(client, 0))

    def _check_quota_locked(self, client: str | None) -> None:
        if self.client_quota is None or client is None:
            return
        load = self._client_load_locked(client)
        if load >= self.client_quota:
            raise QuotaExceeded(client, load, self.client_quota)

    def _admit(self, pending) -> None:
        with self._cond:
            self._check_accepting()
            self._check_quota_locked(pending.client)
            depth = len(self._queue) + self._in_flight
            if depth >= self.max_queue_depth:
                raise QueueSaturated(depth)
            self._queue.append(pending)
            if isinstance(pending, _PendingStream):
                # From admission until the worker finishes this stream the
                # pool-hit fast path stands down: a pool take between two
                # of its chunks would break the stream's contiguity.
                self._streams_outstanding += 1
            self._cond.notify()

    def submit(self, n: int, deadline: float | None = None,
               priority: int = 0,
               client: str | None = None) -> tuple[np.ndarray, int]:
        """Queue a request for ``n`` rows; block until served.

        Returns ``(values, offset)``: the decoded rows and their offset in
        the service's record stream.  Raises :class:`QueueSaturated` when
        admission control rejects the request, :class:`QuotaExceeded`
        when ``client`` is over its per-client quota, :class:`BatcherClosed`
        after shutdown, :class:`BatcherDead` once the worker's restart
        budget is exhausted, and :class:`DeadlineExceeded` when
        ``deadline`` (absolute ``time.monotonic()`` seconds) passes
        before the request is served.  ``priority`` orders queued
        requests (higher pops first); ``client`` enters the request into
        its tenant's fair-share lane and quota.

        Pool-hit fast path: when the service's pool already holds the
        rows, the request is served in the caller's thread — there is no
        generator work to coalesce, so the two thread handoffs through
        the worker would be pure overhead.  Slice claims serialize on the
        service lock either way, so responses stay contiguous, disjoint
        slices in claim order.  The one case that must queue is while a
        *stream* is outstanding: a streamed export claims its span chunk
        by chunk, and a pool take between two of its chunks would break
        the stream's contiguity — the check runs under the queue
        condition, so no stream can be admitted or started concurrently.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        with self._cond:
            self._check_accepting()
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceeded(
                    "request deadline expired before admission"
                )
            # Admission control applies to the fast path too: a saturated
            # server must shed load with 429, not let pool-hit requests
            # jump a full queue — and a quota-capped tenant must not
            # sneak extra work in through pool hits either.
            self._check_quota_locked(client)
            depth = len(self._queue) + self._in_flight
            if depth >= self.max_queue_depth:
                raise QueueSaturated(depth)
            if self.coalesce and not self._streams_outstanding:
                # Armed tracing sees the probe as a "batcher" span in the
                # handler's own trace (fast_path/hit attrs tell the two
                # outcomes apart); the service's take_pooled span nests
                # under it.
                with trace.span("batcher", fast_path=True) as sp:
                    hit = self.service.take_pooled(n)
                    sp.set(hit=hit is not None)
                if hit is not None:
                    if self.service.pooled_rows * 2 < self.service.pool_size:
                        # Pool running low: wake the idle worker so it
                        # replenishes ahead of the next miss.
                        self._cond.notify()
                    return hit
        pending = _PendingSlice(n, deadline, priority=priority,
                                client=client)
        self._admit(pending)
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.values, pending.offset

    def submit_stream(self, n: int, chunk_rows: int,
                      deadline: float | None = None, priority: int = 0,
                      client: str | None = None) -> _PendingStream:
        """Queue a large export served as bounded-memory chunks.

        Returns the pending stream; iterate it for ``(values, offset)``
        chunks (it re-raises worker-side errors).  The export occupies the
        worker until it completes, so its rows form one contiguous stream
        slice exactly like a small response.  ``deadline`` is checked
        before every chunk: an expired stream fails mid-body rather than
        generating rows nobody will read.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded("request deadline expired before admission")
        pending = _PendingStream(n, chunk_rows, deadline=deadline,
                                 priority=priority, client=client)
        self._admit(pending)
        return pending

    def close(self, timeout: float | None = 10.0) -> None:
        """Shut down: drain everything already admitted, then stop.

        Idempotent.  Requests submitted after close are rejected; requests
        admitted before it are still served (graceful drain).  A worker
        sleeping in restart backoff is woken immediately.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._wake.set()
        self._worker.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Consumer side (the one worker thread, under supervision).
    # ------------------------------------------------------------------
    #: Sentinel action: the worker is idle and the pool is low — generate
    #: ahead of demand instead of sleeping.
    _REPLENISH = object()

    def _run(self) -> None:
        """Supervisor: restart the drain loop after crashes, with backoff."""
        while True:
            try:
                self._drain_forever()
                return
            except BaseException as exc:  # noqa: BLE001 — supervision seam
                if not self._on_crash(exc):
                    return

    def _on_crash(self, exc: BaseException) -> bool:
        """Settle a crashed tick's requests; True = restart the worker."""
        batch = self._current_batch or []
        self._current_batch = None
        failed_streams: list[tuple[_PendingStream, BaseException]] = []
        wrapped = WorkerCrashed(f"batcher worker crashed: {exc!r}")
        wrapped.__cause__ = exc
        poisoned_now = 0
        with self._cond:
            self._crashes += 1
            self._consecutive_crashes += 1
            consecutive = self._consecutive_crashes
            dead = self._consecutive_crashes > self.max_restarts
            retry: list[_PendingSlice] = []
            for pending in batch:
                if isinstance(pending, _PendingStream):
                    # Chunks may already be with the consumer, so a retry
                    # could never be transparent: streams always fail.
                    failed_streams.append((pending, wrapped))
                    continue
                if pending.event.is_set():
                    continue  # served (or failed) before the crash
                pending.strikes += 1
                if dead or pending.strikes >= self.poison_strikes:
                    if pending.strikes >= self.poison_strikes:
                        self._poisoned += 1
                        poisoned_now += 1
                    pending.error = wrapped
                    pending.event.set()
                else:
                    retry.append(pending)
            # Front-requeue in original order (the retry lane pops before
            # any priority band): the crashed tick claimed no stream
            # rows, so the retried take is bit-identical.
            self._queue.requeue_front(retry)
            if dead:
                self._dead = True
                for queued in self._queue.drain():
                    err = BatcherDead(
                        "batcher worker is dead (restart budget exhausted)"
                    )
                    err.__cause__ = exc
                    if isinstance(queued, _PendingStream):
                        self._streams_outstanding -= 1
                        failed_streams.append((queued, err))
                    else:
                        queued.error = err
                        queued.event.set()
            else:
                self._restarts += 1
            backoff = min(
                self.restart_backoff_s * (2 ** (self._consecutive_crashes - 1)),
                self.max_backoff_s,
            )
            self._cond.notify_all()
        # Registry counters + one structured log line (satellite of the
        # telemetry work): restart/quarantine events used to be visible
        # only as /healthz state, now they are scrapeable and carry the
        # trace context of whatever was in flight when the worker died.
        self._m_crashes.inc()
        if not dead:
            self._m_restarts.inc()
        if poisoned_now:
            self._m_quarantines.inc(poisoned_now)
        trace.log_event(
            "batcher.worker_crash",
            model=self._model_name,
            error=repr(exc),
            dead=dead,
            consecutive_crashes=consecutive,
            quarantined=poisoned_now,
            in_flight=[
                {
                    "kind": ("stream" if isinstance(p, _PendingStream)
                             else "slice"),
                    "rows": p.n,
                    "trace": p.ctx[0] if p.ctx else None,
                    "span": p.ctx[1] if p.ctx else None,
                }
                for p in batch
            ],
        )
        for stream, err in failed_streams:
            self._fail_stream(stream, err)
        if dead:
            return False
        # Interruptible backoff: close() sets _wake so shutdown is prompt.
        self._wake.wait(backoff)
        return True

    @staticmethod
    def _fail_stream(stream: _PendingStream, exc: BaseException) -> None:
        """Deliver a terminal error without blocking the supervisor forever."""
        give_up = time.monotonic() + 5.0
        while not stream.cancelled.is_set() and time.monotonic() < give_up:
            try:
                stream.chunks.put(("error", exc, None), timeout=0.05)
                return
            except queue.Full:
                continue

    def _replenish_ahead_needed(self) -> bool:
        return (self.coalesce and self._replenish_ok
                and self.service.pool_size > 0
                and self.service.pooled_rows * 2 < self.service.pool_size)

    def _expire(self, pending, now: float) -> bool:
        """Fail ``pending`` with 504 when its deadline passed (under _cond)."""
        if pending.deadline is None or now < pending.deadline:
            return False
        self._deadline_drops += 1
        self._m_deadline_drops.inc()
        err = DeadlineExceeded(
            "request deadline expired while queued; dropped unserved"
        )
        if isinstance(pending, _PendingStream):
            self._streams_outstanding -= 1
            try:
                pending.chunks.put_nowait(("error", err, None))
            except queue.Full:  # consumer stalled; it will see cancel
                pending.cancel()
        else:
            pending.error = err
            pending.event.set()
        return True

    def _next_action(self):
        """The worker's next unit of work (None = closed and drained)."""
        with self._cond:
            while True:
                now = time.monotonic()
                batch: list = []
                while len(self._queue):
                    head = self._queue.peek()
                    if self._expire(head, now):
                        self._queue.popleft()
                        continue
                    if not batch:
                        batch.append(self._queue.popleft())
                        if not (self.coalesce
                                and isinstance(head, _PendingSlice)):
                            break
                        continue
                    if isinstance(head, _PendingSlice):
                        batch.append(self._queue.popleft())
                        continue
                    break
                if batch:
                    self._in_flight = len(batch)
                    for pending in batch:
                        if pending.client is not None:
                            self._client_inflight[pending.client] = (
                                self._client_inflight.get(pending.client, 0)
                                + 1)
                    return batch
                if self._closed or self._dead:
                    return None
                if self._replenish_ahead_needed():
                    return self._REPLENISH
                self._cond.wait()

    def _drain_forever(self) -> None:
        while True:
            batch = self._next_action()
            if batch is None:
                return
            if batch is self._REPLENISH:
                # Idle read-ahead: generation overlaps request serving
                # (the service's pool lock stays free), so pool misses —
                # and their latency bubbles — happen off the request path.
                try:
                    self.service.replenish()
                except Exception:  # noqa: BLE001
                    # Don't spin on a persistently failing generator; the
                    # next queued take surfaces the error to a client.
                    self._replenish_ok = False
                continue
            self._current_batch = batch
            try:
                if isinstance(batch[0], _PendingStream):
                    self._serve_stream(batch[0])
                else:
                    # Crash seam: a fault armed at ``batcher.tick`` escapes
                    # to the supervisor and kills this worker.
                    fault_point("batcher.tick")
                    self._serve_slices(batch)
                self._current_batch = None
                with self._cond:
                    # A clean tick proves the worker healthy again.
                    self._consecutive_crashes = 0
            finally:
                with self._cond:
                    self._in_flight = 0
                    for pending in batch:
                        if pending.client is not None:
                            left = self._client_inflight.get(
                                pending.client, 0) - 1
                            if left > 0:
                                self._client_inflight[pending.client] = left
                            else:
                                self._client_inflight.pop(pending.client,
                                                          None)
                    if isinstance(batch[0], _PendingStream):
                        self._streams_outstanding -= 1
                    self._ticks += 1
                self._m_ticks.inc()

    def _serve_slices(self, batch: list) -> None:
        counts = [pending.n for pending in batch]
        popped = time.perf_counter()
        for pending in batch:
            self._m_queue_wait.record(popped - pending.admitted_at)
        self._m_coalesced.inc(len(batch))
        try:
            # The tick's span parents to the first request's handler span
            # (the tick serves many traces but runs once); every other
            # coalesced request gets its own "batcher" span after the
            # fact so each trace still shows where its time went.
            with trace.attach(batch[0].ctx):
                with trace.span("batcher", coalesced=len(batch),
                                rows=int(sum(counts))):
                    values, base = self.service.take_block(counts)
            for pending in batch[1:]:
                if pending.ctx is not None:
                    trace.emit("batcher", popped, parent=pending.ctx,
                               coalesced=len(batch), rows=pending.n)
        except Exception as exc:  # noqa: BLE001 — per-request error path
            for pending in batch:
                pending.error = exc
                pending.event.set()
            return
        # A successful take proves the generator healthy again, so a
        # transient replenish failure doesn't disable read-ahead forever.
        self._replenish_ok = True
        offset = base
        for pending, block in zip(batch, values):
            pending.values = block
            pending.offset = offset
            offset += pending.n
            pending.event.set()

    def _serve_stream(self, stream: _PendingStream) -> None:
        self._m_queue_wait.record(time.perf_counter() - stream.admitted_at)
        # One span covers the whole export; per-chunk take_block spans
        # nest under it, all parented into the requesting handler's trace.
        with trace.attach(stream.ctx):
            with trace.span("batcher", stream=True, rows=stream.n):
                self._stream_chunks(stream)

    def _stream_chunks(self, stream: _PendingStream) -> None:
        def hand_over(item) -> bool:
            """Put with cancellation checks; False = consumer gave up."""
            while True:
                if stream.cancelled.is_set():
                    return False
                try:
                    stream.chunks.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue

        remaining = stream.n
        while remaining:
            # Crash seam: armed faults escape here, killing the worker
            # *mid-stream* — the consumer sees a truncated chunked body.
            fault_point("batcher.tick")
            if (stream.deadline is not None
                    and time.monotonic() >= stream.deadline):
                with self._cond:
                    self._deadline_drops += 1
                hand_over((
                    "error",
                    DeadlineExceeded("stream deadline expired mid-export"),
                    None,
                ))
                return
            try:
                rows = min(stream.chunk_rows, remaining)
                values, base = self.service.take_block([rows])
            except Exception as exc:  # noqa: BLE001 — per-request error path
                hand_over(("error", exc, None))
                return
            remaining -= rows
            if not hand_over(("chunk", values[0], base)):
                return
        hand_over(("end", None, None))
