"""Long-lived synthesis server: network front end with batch coalescing.

The in-process serving layer (:mod:`repro.serve`) made synthesis cheap
for one consumer; this package makes it shared infrastructure.  A single
long-lived process loads models from a
:class:`~repro.serve.registry.ModelRegistry` on demand and serves every
client over HTTP/1.1 — stdlib only, so it runs anywhere the library does:

* :mod:`~repro.serve.server.http` — :class:`SynthesisServer`: the
  threaded socket front end (endpoints, admission control, chunked
  streaming of large exports, graceful drain);
* :mod:`~repro.serve.server.batcher` — :class:`CoalescingBatcher`:
  concurrent small requests for one model drain through a single
  coalesced generator pass per tick, preserving per-request determinism
  (every response is a contiguous, offset-tagged slice of the model's
  one seeded record stream);
* :mod:`~repro.serve.server.router` — :class:`ModelRouter`: lazy
  per-model services with LRU eviction under a memory budget;
* :mod:`~repro.serve.server.procpool` — :class:`WorkerPoolService`:
  the multi-process serving tier (``--server-workers N``): per-core
  model worker processes generating into a shared-memory sample ring,
  served zero-copy by the threaded front end, bit-identical to the
  in-process service;
* :mod:`~repro.serve.server.client` — :class:`SynthesisClient`: the
  stdlib client library (and the benchmark's load-generator transport);
* :mod:`~repro.serve.server.metrics` — :class:`LatencyHistogram` behind
  ``GET /metrics``.

CLI: ``python -m repro serve --registry model-registry --port 8000``
(graceful drain on SIGTERM/SIGINT).
"""

from repro.serve.server.batcher import (
    BatcherClosed,
    BatcherDead,
    CoalescingBatcher,
    DeadlineExceeded,
    QueueSaturated,
    QuotaExceeded,
    WorkerCrashed,
)
from repro.serve.server.client import (
    CircuitBreaker,
    CircuitOpenError,
    ClientError,
    DeadlineExpired,
    ProtocolError,
    ServerError,
    SynthesisClient,
)
from repro.serve.server.http import SynthesisServer
from repro.serve.server.metrics import LatencyHistogram
from repro.serve.server.procpool import WorkerPoolError, WorkerPoolService
from repro.serve.server.router import (
    ModelRouter,
    RouterClosed,
    UnservableModelError,
)

__all__ = [
    "SynthesisServer",
    "SynthesisClient",
    "ServerError",
    "ClientError",
    "ProtocolError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExpired",
    "CoalescingBatcher",
    "QueueSaturated",
    "QuotaExceeded",
    "BatcherClosed",
    "BatcherDead",
    "WorkerCrashed",
    "DeadlineExceeded",
    "ModelRouter",
    "RouterClosed",
    "UnservableModelError",
    "WorkerPoolService",
    "WorkerPoolError",
    "LatencyHistogram",
]
