"""The long-lived synthesis server: an HTTP/1.1 front end over the registry.

Stdlib only (``http.server`` + threads — the serving environment is
offline), long-lived, and multi-model: one process serves every model in
a :class:`~repro.serve.registry.ModelRegistry` through the
:class:`~repro.serve.server.router.ModelRouter` (lazy load, LRU under a
memory budget) and the :class:`~repro.serve.server.batcher.
CoalescingBatcher` (concurrent small requests for one model cost one
generator forward per tick).

Endpoints::

    GET  /healthz                   liveness (+ "draining" once shutdown starts)
                                    and per-model worker health — "degraded"
                                    while any model's worker is between a
                                    crash and its next clean tick, "dead"
                                    models force status "degraded" too
    GET  /metrics                   ServiceStats, queue depths, latency
                                    histograms, per-model supervision counters
                                    (crashes/restarts/poisoned/deadline_drops);
                                    ``?model=NAME`` restricts either rendering
                                    to one model's series (content negotiation
                                    unchanged)
    GET  /models                    every registration in the registry
    GET  /models/{ref}              one manifest; ref is name[@version|@latest]
    GET  /models/{ref}/quality      live quality sketch + drift scores vs the
                                    registered reference stats (status
                                    ok|warn|drift)
    POST /models/{ref}/sample       {"n": rows, "format": "json"|"csv"}
                                    (or Accept: text/csv); responses over
                                    stream_threshold_rows arrive as chunked
                                    CSV / NDJSON in bounded memory; an
                                    ``X-Deadline-Ms`` request header bounds
                                    queue wait — expired work is dropped with
                                    504 before it reaches the generator;
                                    ``X-Priority`` (higher drains first) and
                                    ``X-Client-Id`` (round-robin fairness +
                                    per-client quota) shape admission

Failure handling: each model's batcher worker is supervised (crash →
restart with backoff, poison quarantine, dead models evicted and
reloaded by the router on the next request), a corrupt artifact is 503 +
``Retry-After`` (retryable: re-registration repairs it) rather than 500,
and the whole surface is driven by the deterministic fault-injection
points documented in :mod:`repro.utils.faults`.

Every sample response carries ``X-Stream-Offset`` and ``X-Row-Count``:
the slice of the model's single seeded record stream it holds.  Slices
are contiguous, disjoint, and tile the stream — concatenating responses
by offset reproduces a single
:class:`~repro.core.sampler.RecordSampler` run exactly, no matter how
many clients were interleaved.  (``X-Stream-Offset`` is the order: a
request served by the pool-hit fast path can claim its slice while an
earlier, larger request is still waiting on generation, so wall-clock
arrival order and offset order may differ under concurrency.)

Admission control: a bounded per-model queue (429 + ``Retry-After`` when
saturated), an absolute per-request row cap (413), and 503 +
``Retry-After`` while draining.  ``SynthesisServer.shutdown`` is a
graceful drain: stop accepting, finish every in-flight request, then stop
the batcher workers.
"""

from __future__ import annotations

import csv
import io
import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

import numpy as np

from repro.data.io import decoded_rows
from repro.data.table import Table
from repro.obs import trace
from repro.serve.registry import CorruptArtifactError, RegistryError
from repro.serve.server.batcher import (
    BatcherClosed,
    DeadlineExceeded,
    QueueSaturated,
    WorkerCrashed,
)
from repro.serve.server.router import (
    ModelRouter,
    RouterClosed,
    UnservableModelError,
)
from repro.utils.faults import fault_bytes


class _HttpError(Exception):
    """Internal: mapped to one JSON error response."""

    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


def _json_default(obj):
    if isinstance(obj, np.generic):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def _json_bytes(payload) -> bytes:
    # Compact separators: sample responses are mostly float text, and the
    # default ", " separators add ~15% bytes (and encode/parse time) to
    # every response on the hot path.
    return (json.dumps(payload, default=_json_default,
                       separators=(",", ":")) + "\n").encode("utf-8")


def _csv_bytes(rows) -> bytes:
    buffer = io.StringIO()
    csv.writer(buffer).writerows(rows)
    return buffer.getvalue().encode("utf-8")


def _ndjson_bytes(rows) -> bytes:
    return b"".join(
        json.dumps(row, default=_json_default,
                   separators=(",", ":")).encode("utf-8") + b"\n"
        for row in rows
    )


class _SynthesisHTTPServer(ThreadingHTTPServer):
    # Graceful drain depends on these: server_close() joins every live
    # handler thread instead of abandoning daemons mid-response.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    # socketserver's default listen backlog is 5: a burst of clients
    # connecting at once overflows it, the kernel drops the excess SYNs,
    # and those clients stall ~1 s in retransmit before the server even
    # sees them.  A serving front end should absorb connect storms.
    request_queue_size = 128

    def __init__(self, address, handler, app: "SynthesisServer"):
        self.app = app
        super().__init__(address, handler)

    def handle_error(self, request, client_address):
        # A client hanging up mid-response is normal server life, not a
        # stack trace; keep real bugs visible.
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError, TimeoutError)):
            return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-synthesis/1"
    # Idle keep-alive connections time out so drain cannot hang on a
    # client that simply holds its socket open.
    timeout = 5
    # The socket timeout above also governs writes; a streamed export to
    # a legitimately slow reader (backpressure is the design) gets this
    # much time per write to make progress instead.
    stream_write_timeout = 60.0
    # Responses are written as two segments (header buffer, then body);
    # with Nagle on, the body write stalls behind the client's delayed
    # ACK (~40 ms per request on loopback), which would dwarf every cost
    # this server exists to amortize.  (socketserver reads this off the
    # handler class in StreamRequestHandler.setup.)
    disable_nagle_algorithm = True
    # The RFC-format Date header is rendered per response by the stdlib;
    # memoize it per second (benign race: worst case two threads format
    # the same timestamp).
    _date_cache: tuple[int, str] = (-1, "")

    def date_time_string(self, timestamp=None):
        if timestamp is not None:
            return super().date_time_string(timestamp)
        now = int(time.time())
        cached_at, cached = _Handler._date_cache
        if cached_at != now:
            cached = super().date_time_string(now)
            _Handler._date_cache = (now, cached)
        return cached

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------
    @property
    def app(self) -> "SynthesisServer":
        return self.server.app

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if not self.app.quiet:
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    def _send_body(self, status: int, body: bytes, content_type: str,
                   headers: dict | None = None) -> None:
        # Wire seam: a fault armed at ``socket.send`` may truncate or
        # corrupt the bytes actually written; Content-Length still
        # describes the intended body, so clients see a broken response —
        # exactly what a mid-write connection cut looks like.
        sent = fault_bytes("socket.send", body)
        self.app.record_status(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, str(value))
        if self.app.draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(sent)
        if len(sent) != len(body):
            self.close_connection = True

    def _send_json(self, status: int, payload, headers: dict | None = None) -> None:
        self._send_body(status, _json_bytes(payload),
                        "application/json; charset=utf-8", headers)

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def _route(self, method: str) -> None:
        try:
            self._dispatch(method)
        except _HttpError as err:
            self._send_json(err.status, {"error": err.message}, err.headers)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # defensive: a bug must not kill the thread
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                self.close_connection = True

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        parts = [unquote(part) for part in path.split("/") if part]
        if parts == ["healthz"]:
            self._require(method, "GET")
            return self._handle_healthz()
        if parts == ["metrics"]:
            self._require(method, "GET")
            return self._handle_metrics()
        if parts == ["models"]:
            self._require(method, "GET")
            return self._handle_models()
        if len(parts) == 2 and parts[0] == "models":
            self._require(method, "GET")
            return self._handle_manifest(parts[1])
        if len(parts) == 3 and parts[:1] == ["models"] and parts[2] == "sample":
            self._require(method, "POST")
            return self._handle_sample(parts[1])
        if len(parts) == 3 and parts[:1] == ["models"] and parts[2] == "quality":
            self._require(method, "GET")
            return self._handle_quality(parts[1])
        raise _HttpError(404, f"no route for {method} {path}")

    def _require(self, method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected} for this endpoint",
                             {"Allow": expected})

    # ------------------------------------------------------------------
    # Read-only endpoints.
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        model_health = self.app.router.health()
        if self.app.draining:
            status = "draining"
        elif any(h != "ok" for h in model_health.values()):
            status = "degraded"
        else:
            status = "ok"
        self._send_json(200, {
            "status": status,
            "uptime_s": self.app.uptime_s,
            "resident_models": self.app.router.resident(),
            "models": model_health,
            # Data-quality drift is reported alongside — not merged into —
            # worker health: a drifting model still serves.
            "quality": self.app.router.quality_status(),
        })

    def _handle_metrics(self) -> None:
        # Content negotiation: the JSON payload (the SynthesisClient's
        # default Accept) keeps its shape; anything else — a Prometheus
        # scraper sends */* — gets the registry's text exposition.
        # ``?model=NAME`` restricts either rendering to one model's
        # series: exact name or any ``NAME@version``.
        query = parse_qs(urlsplit(self.path).query)
        model = (query.get("model") or [None])[0]
        accept = self.headers.get("Accept", "")
        if "application/json" in accept:
            payload = self.app.metrics()
            if model is not None:
                payload = self._filter_metrics_json(payload, model)
            return self._send_json(200, payload)
        label_filter = None
        if model is not None:
            label_filter = {"model": self._model_matcher(model)}
        body = self.app.metrics_registry.render_text(
            label_filter=label_filter).encode("utf-8")
        self._send_body(200, body, "text/plain; version=0.0.4; charset=utf-8")

    @staticmethod
    def _model_matcher(model: str):
        """Match the exact model name or any of its pinned versions."""
        return lambda value: value == model or value.startswith(model + "@")

    @classmethod
    def _filter_metrics_json(cls, payload: dict, model: str) -> dict:
        matches = cls._model_matcher(model)
        filtered = dict(payload)
        if isinstance(payload.get("models"), dict):
            filtered["models"] = {ref: stats
                                  for ref, stats in payload["models"].items()
                                  if matches(ref)}
        if isinstance(payload.get("resident_models"), list):
            filtered["resident_models"] = [
                ref for ref in payload["resident_models"] if matches(ref)]
        return filtered

    def _handle_models(self) -> None:
        try:
            entries = self.app.router.registry.describe()
        except RegistryError as exc:
            raise _HttpError(500, f"registry unreadable: {exc}") from exc
        resident = set(self.app.router.resident())
        for entry in entries:
            entry["resident"] = entry["name"] in resident
            entry["servable"] = entry.get("kind") == "tablegan"
        self._send_json(200, {"models": entries})

    def _handle_manifest(self, ref: str) -> None:
        try:
            manifest = self.app.router.registry.manifest(ref)
        except CorruptArtifactError as exc:
            raise _HttpError(503, str(exc), {"Retry-After": "1"}) from exc
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from exc
        self._send_json(200, manifest)

    def _handle_quality(self, ref: str) -> None:
        entry = self._entry_for(ref)
        if entry.quality is None:
            return self._send_json(200, {
                "model": entry.ref, "status": "off", "reference": False,
            })
        self._send_json(200, entry.quality.report())

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------
    def _read_request(self) -> tuple[int, str]:
        """Parse and validate the sample request body; returns (n, format)."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise _HttpError(400, "malformed Content-Length") from exc
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        n = payload.get("n")
        if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
            raise _HttpError(400, f'"n" must be a positive integer, got {n!r}')
        if n > self.app.max_request_rows:
            raise _HttpError(413, (
                f"n={n} exceeds the per-request cap of "
                f"{self.app.max_request_rows} rows; split the export"
            ))
        fmt = payload.get("format")
        if fmt is None:
            accept = self.headers.get("Accept", "")
            fmt = "csv" if "text/csv" in accept else "json"
        if fmt not in ("json", "csv"):
            raise _HttpError(400, f'"format" must be "json" or "csv", got {fmt!r}')
        return n, fmt

    def _entry_for(self, ref: str):
        try:
            return self.app.router.get(ref)
        except (RouterClosed, BatcherClosed) as exc:
            raise _HttpError(503, "server is draining",
                             {"Retry-After": "1"}) from exc
        except UnservableModelError as exc:
            raise _HttpError(501, str(exc)) from exc
        except CorruptArtifactError as exc:
            # The artifact is broken *on disk*; nothing was cached, so the
            # model serves again as soon as the file is repaired — 503,
            # not 500: the request may succeed on retry.
            raise _HttpError(503, str(exc), {"Retry-After": "1"}) from exc
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from exc

    def _read_deadline(self) -> float | None:
        """``X-Deadline-Ms`` (relative ms) → absolute monotonic deadline."""
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            return None
        try:
            ms = float(raw)
        except ValueError as exc:
            raise _HttpError(
                400, f"malformed X-Deadline-Ms header: {raw!r}"
            ) from exc
        if ms <= 0:
            raise _HttpError(
                400, f"X-Deadline-Ms must be positive, got {raw!r}"
            )
        return time.monotonic() + ms / 1000.0

    def _read_priority(self) -> int:
        """``X-Priority`` (integer; higher drains first) or 0.

        Clamped to ±1000 so a hostile header cannot mint unbounded
        priority bands in the admission queue."""
        raw = self.headers.get("X-Priority")
        if raw is None:
            return 0
        try:
            priority = int(raw)
        except ValueError as exc:
            raise _HttpError(
                400, f"malformed X-Priority header: {raw!r}"
            ) from exc
        return max(-1000, min(1000, priority))

    def _client_id(self) -> str | None:
        """``X-Client-Id`` (sanitized, <= 64 chars) or None.

        Identified clients get round-robin fairness within a priority
        band and a per-client admission quota; header-less traffic
        shares one anonymous FIFO lane."""
        raw = self.headers.get("X-Client-Id")
        if raw is None:
            return None
        client = raw.strip()[:64]
        return client or None

    def _trace_id(self) -> str:
        """Inbound ``X-Trace-Id`` (sanitized) or a fresh id.  Requests
        always carry one — tracing armed or not — so clients can
        correlate responses with server logs."""
        raw = self.headers.get("X-Trace-Id")
        if raw:
            raw = raw.strip()[:64]
            if raw:
                return raw
        return trace.new_trace_id()

    def _handle_sample(self, ref: str) -> None:
        if self.app.draining:
            raise _HttpError(503, "server is draining", {"Retry-After": "1"})
        n, fmt = self._read_request()
        deadline = self._read_deadline()
        priority = self._read_priority()
        client = self._client_id()
        trace_id = self._trace_id()
        started = time.perf_counter()
        # Root span of the request's trace: everything downstream — the
        # batcher probe/tick, service take, generator forward, decode,
        # render — parents under it via the context var (or, across the
        # worker-thread hop, via the ctx captured at admission).
        with trace.span("handler", trace_id=trace_id, model=ref, n=n,
                        fmt=fmt):
            if n > self.app.stream_threshold_rows:
                entry = self._stream_sample(ref, n, fmt, deadline, trace_id,
                                            priority, client)
            else:
                entry = self._small_sample(ref, n, fmt, deadline, trace_id,
                                           priority, client)
        entry.latency.record(time.perf_counter() - started)

    def _submit(self, ref: str, method: str, *args):
        """Route + submit with one retry if LRU eviction closed the batcher
        between the router lookup and the submit (the entry is reloaded and
        the request really is served; 503 is reserved for actual drains).
        A dead batcher takes the same retry: ``router.get`` evicts it and
        loads a fresh service, so the retried submit lands on a live
        worker."""
        for attempt in (0, 1):
            entry = self._entry_for(ref)
            try:
                return entry, getattr(entry.batcher, method)(*args)
            except QueueSaturated as exc:
                raise _HttpError(429, str(exc), {
                    "Retry-After": f"{exc.retry_after_s:g}",
                }) from exc
            except DeadlineExceeded as exc:
                raise _HttpError(504, str(exc)) from exc
            except WorkerCrashed as exc:
                raise _HttpError(500, str(exc)) from exc
            except BatcherClosed as exc:
                if self.app.draining or attempt:
                    raise _HttpError(503, "server is draining",
                                     {"Retry-After": "1"}) from exc
        raise AssertionError("unreachable")

    def _small_sample(self, ref: str, n: int, fmt: str,
                      deadline: float | None = None,
                      trace_id: str | None = None,
                      priority: int = 0, client: str | None = None):
        entry, (values, offset) = self._submit(ref, "submit", n, deadline,
                                               priority, client)
        schema = entry.service.schema
        table = Table(values, schema)
        headers = {"X-Stream-Offset": offset, "X-Row-Count": n}
        if trace_id is not None:
            headers["X-Trace-Id"] = trace_id
        render_started = time.perf_counter()
        with trace.span("render", fmt=fmt, rows=n):
            if fmt == "csv":
                body = _csv_bytes([list(schema.names), *decoded_rows(table)])
                content_type = "text/csv; charset=utf-8"
            else:
                # Hand-assembled but byte-identical to _json_bytes of the
                # equivalent dict: the model/columns fragments are request-
                # invariant (pre-rendered on the entry), so the hot path
                # only serializes the rows.
                rows_json = json.dumps(decoded_rows(table),
                                       default=_json_default,
                                       separators=(",", ":"))
                body = (
                    f'{{"model":{entry.ref_json},"n":{n},"offset":{offset},'
                    f'"columns":{entry.columns_json},"rows":{rows_json}}}\n'
                ).encode("utf-8")
                content_type = "application/json; charset=utf-8"
        self.app.observe_render(time.perf_counter() - render_started)
        self._send_body(200, body, content_type, headers)
        return entry

    def _stream_sample(self, ref: str, n: int, fmt: str,
                       deadline: float | None = None,
                       trace_id: str | None = None,
                       priority: int = 0, client: str | None = None):
        """Serve a large export as chunked transfer in bounded memory.

        The stream is admitted like any other request — it owns one
        contiguous slice of the record stream — but rows cross the wire
        chunk by chunk as they are generated, so neither side ever holds
        the full export.
        """
        entry, stream = self._submit(ref, "submit_stream", n,
                                     self.app.stream_chunk_rows, deadline,
                                     priority, client)
        schema = entry.service.schema
        chunks = iter(stream)
        try:
            try:
                first_values, base_offset = next(chunks)
            except StopIteration:  # pragma: no cover - n > 0 yields >= 1 chunk
                raise _HttpError(500, "empty stream") from None
            except DeadlineExceeded as exc:
                raise _HttpError(504, str(exc)) from exc
            except Exception as exc:
                raise _HttpError(500, f"stream failed: {exc}") from exc

            content_type = ("text/csv; charset=utf-8" if fmt == "csv"
                            else "application/x-ndjson")
            # The 5 s keep-alive timeout would truncate exports to slow
            # readers mid-body; give each write a real budget instead (the
            # connection closes after a stream, so idle-reaping no longer
            # applies to this socket).
            self.connection.settimeout(self.stream_write_timeout)
            self.app.record_status(200)
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("X-Stream-Offset", str(base_offset))
            self.send_header("X-Row-Count", str(n))
            if trace_id is not None:
                self.send_header("X-Trace-Id", trace_id)
            if fmt != "csv":
                # CSV streams carry their header row; NDJSON streams name
                # the columns here so the client can return the same shape
                # as a buffered JSON response.
                self.send_header("X-Columns", entry.columns_json)
            self.send_header("Connection", "close")
            self.close_connection = True
            self.end_headers()

            # From here the response has started: an error must truncate
            # the chunked body (the client sees an incomplete read), never
            # fall through to a second HTTP response written mid-body.
            try:
                if fmt == "csv":
                    self._write_chunk(_csv_bytes([list(schema.names)]))
                self._write_rows(schema, fmt, first_values)
                for values, _offset in chunks:
                    self._write_rows(schema, fmt, values)
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionResetError):
                self.close_connection = True
            except Exception as exc:
                # Truncate; surface in the access log, not on the wire.
                self.log_message("streamed response truncated: %s", exc)
                self.close_connection = True
        finally:
            # Covers client disconnects and handler errors alike: the
            # worker stops generating rows nobody will read.
            stream.cancel()
        return entry

    def _write_rows(self, schema, fmt: str, values) -> None:
        render_started = time.perf_counter()
        rows = decoded_rows(Table(values, schema))
        data = _csv_bytes(rows) if fmt == "csv" else _ndjson_bytes(rows)
        self.app.observe_render(time.perf_counter() - render_started)
        self._write_chunk(data)

    def _write_chunk(self, data: bytes) -> None:
        if not data:
            return
        # Wire seam: a raise here aborts mid-body (the client sees a
        # truncated chunked read); a truncate writes fewer bytes than the
        # chunk header promised, then cuts the connection.
        sent = fault_bytes("socket.send", data)
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(sent)
        if len(sent) != len(data):
            raise ConnectionResetError(
                "socket.send fault truncated the chunk"
            )
        self.wfile.write(b"\r\n")


class SynthesisServer:
    """A long-lived, multi-model synthesis server (stdlib HTTP front end).

    Parameters
    ----------
    registry:
        :class:`ModelRegistry` or path; every registered model is servable.
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`port` — how the tests and the benchmark run fleets of
        servers).
    pool_size, batch_rows, seed:
        Per-model :class:`~repro.serve.service.SynthesisService` knobs.
        The default pool (1024 rows per model) pre-generates across
        replenishment ticks so sub-batch requests are usually served
        from memory; 0 disables it (every tick generates exactly its
        shortfall).
    coalesce:
        ``False`` disables cross-request coalescing (one generator pass
        per request) — the baseline the benchmark measures against.
    max_queue_depth:
        Per-model admission bound; saturation returns 429.
    max_request_rows:
        Absolute per-request cap; beyond it returns 413.
    stream_threshold_rows:
        Responses above this arrive as chunked CSV/NDJSON streamed in
        ``stream_chunk_rows`` slices (bounded memory on both sides).
    max_models, memory_budget_bytes:
        Router LRU policy.
    quiet:
        Suppress per-request access logging (default).
    metrics_registry:
        :class:`~repro.obs.metrics.MetricsRegistry` behind
        ``GET /metrics``'s text exposition.  Defaults to the
        process-wide registry; the bench injects a fresh one per server
        so serving modes don't share series.
    server_workers:
        ``N >= 1`` serves each model from ``N`` dedicated worker
        *processes* over a shared-memory sample pool (the HTTP front end
        stays threaded; see :mod:`repro.serve.server.procpool`).  ``0``
        (default) keeps the in-process threaded service.  Responses are
        bit-identical either way.
    worker_weights:
        Per-model worker-count overrides (``{"name": k}``); ``0`` pins a
        model to the in-process service.
    worker_start_method:
        ``multiprocessing`` start method for pool workers (default
        ``"fork"``).
    client_quota:
        Per-client admission cap: requests carrying ``X-Client-Id`` are
        429'd while that client already has this many requests queued or
        in flight (anonymous traffic is bounded only by the queue depth).
    trace_log:
        Path for worker-process trace spans; each worker appends to its
        own arming of the sink so ``X-Trace-Id`` correlates across the
        process boundary.
    quality:
        ``True`` (default) taps every decoded sample block into a
        bounded-memory quality sketch per model and scores drift against
        the reference statistics frozen at registration (``GET
        /models/{ref}/quality``).  ``False`` disables the tap entirely;
        responses are byte-identical either way.
    """

    def __init__(self, registry, host: str = "127.0.0.1", port: int = 0, *,
                 pool_size: int = 1024, batch_rows: int = 2048, seed=0,
                 coalesce: bool = True, max_queue_depth: int = 64,
                 max_request_rows: int = 1_000_000,
                 stream_threshold_rows: int = 10_000,
                 stream_chunk_rows: int = 2048,
                 max_models: int = 8, memory_budget_bytes: int | None = None,
                 quiet: bool = True, metrics_registry=None,
                 server_workers: int = 0,
                 worker_weights: dict | None = None,
                 worker_start_method: str | None = None,
                 client_quota: int | None = None, trace_log=None,
                 quality: bool = True):
        if stream_chunk_rows <= 0:
            raise ValueError(
                f"stream_chunk_rows must be positive, got {stream_chunk_rows}"
            )
        if max_request_rows <= 0:
            raise ValueError(
                f"max_request_rows must be positive, got {max_request_rows}"
            )
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be non-negative, got {max_queue_depth}"
            )
        self.router = ModelRouter(
            registry, pool_size=pool_size, batch_rows=batch_rows, seed=seed,
            coalesce=coalesce, max_queue_depth=max_queue_depth,
            max_models=max_models, memory_budget_bytes=memory_budget_bytes,
            server_workers=server_workers, worker_weights=worker_weights,
            worker_start_method=worker_start_method,
            client_quota=client_quota, trace_log=trace_log,
            metrics_registry=metrics_registry, quality=quality,
        )
        self.metrics_registry = self.router.metrics_registry
        self.max_request_rows = max_request_rows
        self.stream_threshold_rows = stream_threshold_rows
        self.stream_chunk_rows = stream_chunk_rows
        self.quiet = quiet
        self._httpd = _SynthesisHTTPServer((host, port), _Handler, self)
        self._thread: threading.Thread | None = None
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._started_at = time.monotonic()
        self._status_lock = threading.Lock()
        self._status_counts: dict[str, int] = {}
        self._m_responses = self.metrics_registry.counter(
            "http_responses_total", "HTTP responses by status code",
        )
        self._m_render = self.metrics_registry.histogram(
            "http_render_seconds",
            "Response-body render time (row decode + serialization)",
        ).labels()
        self._g_uptime = self.metrics_registry.gauge(
            "server_uptime_seconds", "Seconds since the server started",
        ).labels()
        self.metrics_registry.add_collector(self._refresh_gauges)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def record_status(self, status: int) -> None:
        with self._status_lock:
            key = str(status)
            self._status_counts[key] = self._status_counts.get(key, 0) + 1
        self._m_responses.labels(status=str(status)).inc()

    def observe_render(self, seconds: float) -> None:
        self._m_render.record(seconds)

    def _refresh_gauges(self) -> None:
        self._g_uptime.set(self.uptime_s)

    def metrics(self) -> dict:
        with self._status_lock:
            responses = dict(self._status_counts)
        return {
            "uptime_s": self.uptime_s,
            "draining": self.draining,
            "responses": responses,
            "render": self._m_render.summary(),
            "registry_root": str(self.router.registry.root),
            **self.router.metrics(),
        }

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "SynthesisServer":
        """Serve in a background thread; returns self (for chaining)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            name=f"synthesis-server-{self.port}", daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, stop workers.

        Idempotent and safe to call from any thread (including a signal
        handler's).  Order matters: the accept loop stops first, then
        every live handler thread is joined (``block_on_close``), and only
        then — once no handler can queue new work — are the per-model
        batchers closed.
        """
        if self._closed.is_set():
            return
        self._draining.set()
        self.metrics_registry.remove_collector(self._refresh_gauges)
        self._httpd.shutdown()
        self._httpd.server_close()
        self.router.close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._closed.set()

    def __enter__(self) -> "SynthesisServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
