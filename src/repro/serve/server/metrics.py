"""Request-latency accounting — re-exported from :mod:`repro.obs.metrics`.

The log-bucket :class:`LatencyHistogram` that used to live here was
promoted into the process-wide observability package (``repro.obs``) so
the same histogram backs per-model latency, batcher queue-wait, and the
Prometheus exposition on ``GET /metrics``.  This module remains as the
serving-layer import path.
"""

from repro.obs.metrics import _BUCKET_BOUNDS, LatencyHistogram

__all__ = ["LatencyHistogram", "_BUCKET_BOUNDS"]
