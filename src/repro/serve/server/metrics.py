"""Request-latency accounting for the synthesis server's /metrics endpoint.

A fixed-bucket, log-spaced histogram: recording is O(1) and lock-cheap
(one counter increment per request), percentiles are reconstructed from
the bucket counts on read, which is exactly the precision/overhead
trade-off a serving metrics endpoint wants — the p99 of a latency
histogram does not need microsecond accuracy, it needs to cost nothing on
the request path.
"""

from __future__ import annotations

import threading

#: Bucket upper bounds in seconds: 24 log-spaced buckets from 100 µs to
#: ~2.7 min (each 1.6× the last), plus an unbounded overflow bucket.
_BUCKET_BOUNDS = tuple(1e-4 * 1.6 ** i for i in range(24))


class LatencyHistogram:
    """Thread-safe log-bucketed latency histogram with percentile readout."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Record one request's wall-clock latency."""
        index = 0
        for index, bound in enumerate(_BUCKET_BOUNDS):  # noqa: B007
            if seconds <= bound:
                break
        else:
            index = len(_BUCKET_BOUNDS)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            self._max = max(self._max, seconds)

    @staticmethod
    def _percentile(counts: list[int], total: int, q: float,
                    max_s: float) -> float:
        """The upper bound of the bucket holding the q-th quantile.

        Works entirely on the caller's locked snapshot (``max_s`` caps the
        overflow bucket), so one summary is internally consistent even if
        records land concurrently.
        """
        target = q * total
        seen = 0
        for index, count in enumerate(counts):
            seen += count
            if seen >= target:
                if index < len(_BUCKET_BOUNDS):
                    return _BUCKET_BOUNDS[index]
                return max_s
        return max_s

    def summary(self) -> dict:
        """Counts and percentile estimates (milliseconds), JSON-ready."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_s = self._sum
            max_s = self._max
        if total == 0:
            return {"count": 0}
        return {
            "count": total,
            "mean_ms": 1e3 * total_s / total,
            "p50_ms": 1e3 * self._percentile(counts, total, 0.50, max_s),
            "p90_ms": 1e3 * self._percentile(counts, total, 0.90, max_s),
            "p99_ms": 1e3 * self._percentile(counts, total, 0.99, max_s),
            "max_ms": 1e3 * max_s,
        }
