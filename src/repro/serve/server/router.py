"""Multi-model router: lazy per-model services with LRU eviction.

The server fronts a whole :class:`~repro.serve.registry.ModelRegistry`,
but a loaded model is not free — generator weights plus the service's
sample pool occupy real memory.  The router therefore instantiates one
:class:`~repro.serve.service.SynthesisService` (wrapped in its
:class:`~repro.serve.server.batcher.CoalescingBatcher`) per model **on
first request**, keeps the working set in an LRU map, and evicts the
least-recently-used idle model once the estimated resident footprint
exceeds ``memory_budget_bytes`` (or the entry count exceeds
``max_models``).  Busy models — anything with queued or in-flight
requests — are never evicted; if every resident model is busy the budget
is temporarily exceeded rather than serving a 500.

References resolve through the registry (``name`` → newest registration,
``name@version`` pinned), so two references to the same registration
share one service, one record stream, and one batcher.

Eviction ends that service's record stream: a model loaded again later
starts a fresh stream from the configured seed.  Offsets reported to
clients are therefore per *service instantiation* — the price of bounding
memory across many models.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict

from repro.core.tablegan import TableGAN
from repro.obs import metrics as obs_metrics
from repro.serve.quality import STATUS_CODES, QualityMonitor
from repro.serve.registry import ModelRegistry
from repro.serve.server.batcher import CoalescingBatcher
from repro.serve.server.metrics import LatencyHistogram
from repro.serve.server.procpool import WorkerPoolService
from repro.serve.service import SynthesisService


class RouterClosed(RuntimeError):
    """The router is shut down (server draining) and routes no requests."""


class UnservableModelError(RuntimeError):
    """The registration exists but this server cannot sample from it."""


class ModelEntry:
    """One resident model: service + batcher + per-model metrics.

    ``ref_json``/``columns_json`` are the request-invariant fragments of
    every sample response, rendered once here so the handler's hot path
    only serializes the rows.
    """

    __slots__ = ("ref", "service", "batcher", "latency", "est_bytes",
                 "loaded_at", "ref_json", "columns_json", "quality")

    def __init__(self, ref: str, service,
                 batcher: CoalescingBatcher, est_bytes: int, quality=None):
        self.ref = ref
        self.service = service
        self.batcher = batcher
        self.latency = LatencyHistogram()
        self.est_bytes = est_bytes
        self.loaded_at = time.time()
        self.ref_json = json.dumps(ref)
        self.columns_json = json.dumps(list(service.schema.names),
                                       separators=(",", ":"))
        self.quality = quality

    @property
    def health(self) -> str:
        """Worst of batcher and service health (the service has its own
        state machine only in the multi-process mode)."""
        states = [self.batcher.health]
        service_health = getattr(self.service, "health", None)
        if service_health is not None:
            states.append(service_health)
        for level in ("dead", "degraded"):
            if level in states:
                return level
        return "ok"

    def metrics(self) -> dict:
        data = {
            "stats": self.service.stats.as_dict(),
            "supervision": self.batcher.supervision(),
            "queue_depth": self.batcher.queue_depth,
            "batch_ticks": self.batcher.ticks,
            "pooled_rows": self.service.pooled_rows,
            "stream_position": self.service.stream_position,
            "est_bytes": self.est_bytes,
            "loaded_at": self.loaded_at,
            "latency": self.latency.summary(),
            "queue_wait": self.batcher.queue_wait_summary(),
            "stages": self.service.profile.snapshot(),
        }
        # Multi-process pools also report worker supervision: crashes,
        # restarts, and per-worker liveness, aggregated for /metrics.
        worker_info = getattr(self.service, "worker_info", None)
        if worker_info is not None:
            data["workers"] = worker_info()
        if self.quality is not None:
            data["quality"] = self.quality.summary()
        return data

    def close(self) -> None:
        """Batcher first (drains admitted work), then the service (which
        joins worker processes and unlinks shared memory in the
        multi-process mode)."""
        self.batcher.close()
        close = getattr(self.service, "close", None)
        if close is not None:
            close()


def _estimate_bytes(service, pool_size: int) -> int:
    """Rough resident footprint: generator parameters + pool high-water."""
    if isinstance(service, WorkerPoolService):
        # The parent holds no weights in the multi-process mode — its
        # footprint is the shared decoded + latent rings (worker-side
        # copies of the model live in other processes' budgets).
        return int(service.pool_size * 8
                   * (service.n_features + service.latent_dim))
    generator = service.sampler.generator
    param_bytes = sum(p.data.nbytes for p in generator.parameters())
    n_features = len(service.schema.names)
    # The pool holds (encoded, decoded) pairs; decoded is float64.
    row_bytes = n_features * (service.sampler._dtype.itemsize + 8)
    return int(param_bytes + pool_size * row_bytes)


class ModelRouter:
    """Resolve model references to live, batched synthesis services.

    Parameters
    ----------
    registry:
        A :class:`ModelRegistry` or a path to one.
    pool_size, batch_rows, seed:
        Forwarded to every :class:`SynthesisService` the router creates
        (each model gets its own independent seeded stream).
    coalesce, max_queue_depth, client_quota:
        Forwarded to every :class:`CoalescingBatcher`.
    server_workers:
        ``0`` (default) keeps the threaded in-process
        :class:`SynthesisService`; ``N >= 1`` serves every model through
        a :class:`WorkerPoolService` of ``N`` model worker processes
        over a shared-memory sample ring.
    worker_weights:
        Per-model concurrency weights overriding ``server_workers``:
        maps a model name or canonical ``name@version`` reference to its
        worker-process count (``0`` pins that model to the threaded
        service).  Ignored when ``server_workers`` is 0.
    worker_start_method / trace_log:
        Multiprocessing start method (default ``fork``) and the JSONL
        trace sink worker processes arm, forwarded to every
        :class:`WorkerPoolService`.
    max_models:
        Hard cap on resident models (LRU beyond it).
    memory_budget_bytes:
        Estimated-footprint budget across resident models; ``None``
        disables the byte-based trigger and leaves only ``max_models``.
    resolve_ttl_s:
        How long a reference → registration resolution is cached.
        Resolution scans the registry directory (it is what makes
        ``name`` mean "newest version"), which would otherwise put
        filesystem syscalls on every request's hot path; the TTL bounds
        how stale a bare-name alias can be after a new version is
        registered mid-flight.
    metrics_registry:
        :class:`~repro.obs.metrics.MetricsRegistry` behind the Prometheus
        exposition: router counters, pool/queue-depth gauges (refreshed
        by a collector at scrape time, never on the request path), and
        every batcher's series.  Defaults to the process-wide registry.
    quality:
        ``True`` (default) attaches a
        :class:`~repro.serve.quality.QualityMonitor` to every loaded
        model: decoded blocks are sketched on the decode path, drift is
        scored against the manifest's frozen reference stats, and
        per-(model, column) drift gauges publish at exposition time.
        ``False`` disables the tap entirely (responses are byte-identical
        either way — the tap is observe-only).
    """

    def __init__(self, registry, *, pool_size: int = 0, batch_rows: int = 2048,
                 seed=0, coalesce: bool = True, max_queue_depth: int = 64,
                 max_models: int = 8, memory_budget_bytes: int | None = None,
                 resolve_ttl_s: float = 5.0, server_workers: int = 0,
                 worker_weights: dict | None = None,
                 worker_start_method: str | None = None,
                 client_quota: int | None = None, trace_log=None,
                 metrics_registry=None, quality: bool = True):
        if max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {max_models}")
        if server_workers < 0:
            raise ValueError(
                f"server_workers must be non-negative, got {server_workers}")
        self.registry = (registry if isinstance(registry, ModelRegistry)
                         else ModelRegistry(registry))
        self.pool_size = pool_size
        self.batch_rows = batch_rows
        self.seed = seed
        self.coalesce = coalesce
        self.max_queue_depth = max_queue_depth
        self.server_workers = server_workers
        self.worker_weights = dict(worker_weights or {})
        self.worker_start_method = worker_start_method
        self.client_quota = client_quota
        self.trace_log = trace_log
        self.quality = quality
        self.max_models = max_models
        self.memory_budget_bytes = memory_budget_bytes
        self.resolve_ttl_s = resolve_ttl_s
        self._entries: OrderedDict[str, ModelEntry] = OrderedDict()
        self._resolved: dict[str, tuple[str, float]] = {}
        self._lock = threading.Lock()
        self._loading: dict[str, threading.Event] = {}
        self._closed = False
        self.evictions = 0
        self.dead_evictions = 0
        reg = (metrics_registry if metrics_registry is not None
               else obs_metrics.REGISTRY)
        self.metrics_registry = reg
        self._m_loads = reg.counter(
            "router_model_loads_total", "Models loaded into the router",
        ).labels()
        self._m_evictions = reg.counter(
            "router_evictions_total", "Models evicted from the router",
        ).labels()
        self._m_dead_evictions = reg.counter(
            "router_dead_evictions_total",
            "Evictions forced by a dead batcher worker",
        ).labels()
        self._g_resident = reg.gauge(
            "router_resident_models", "Models currently resident",
        ).labels()
        self._g_queue_depth = reg.gauge(
            "batcher_queue_depth", "Requests queued or in flight",
        )
        self._g_pooled_rows = reg.gauge(
            "service_pooled_rows", "Pre-generated rows waiting in the pool",
        )
        self._g_quality_stat = reg.gauge(
            "quality_drift_statistic",
            "Per-column drift statistic vs the registered reference "
            "(binned KS for numeric columns, total variation for "
            "categorical)",
        )
        self._g_quality_status = reg.gauge(
            "quality_status",
            "Per-model drift rollup (0=ok, 1=warn, 2=drift)",
        )
        self._g_quality_rows = reg.gauge(
            "quality_rows_sketched",
            "Decoded rows folded into the model's live quality sketch",
        )
        reg.add_collector(self._refresh_gauges)

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def get(self, ref: str) -> ModelEntry:
        """The live entry for ``ref``, loading the model on first use.

        Raises :class:`~repro.serve.registry.RegistryError` for unknown
        references and :class:`RouterClosed` while draining.  Loading
        happens *outside* the router lock — a cold model must not stall
        requests for resident ones — with a per-registration guard so
        concurrent first requests for the same model wait for one load
        instead of racing two.

        A resident entry whose batcher worker is **dead** (restart budget
        exhausted) is evicted here and reloaded fresh: the new service
        starts a new record stream, exactly like any other eviction.
        """
        now = time.monotonic()
        cached = self._resolved.get(ref)
        if cached is not None and now - cached[1] < self.resolve_ttl_s:
            canonical = cached[0]
        else:
            canonical = self.registry.resolve(ref)
            self._resolved[ref] = (canonical, now)
        while True:
            wait_for = None
            evicted = None
            with self._lock:
                if self._closed:
                    raise RouterClosed("router is shut down")
                entry = self._entries.get(canonical)
                if entry is not None and entry.health == "dead":
                    self._entries.pop(canonical, None)
                    self.evictions += 1
                    self.dead_evictions += 1
                    self._m_evictions.inc()
                    self._m_dead_evictions.inc()
                    evicted = entry
                    entry = None
                if entry is not None:
                    self._entries.move_to_end(canonical)
                    return entry
                loading = self._loading.get(canonical)
                if loading is None:
                    loading = threading.Event()
                    self._loading[canonical] = loading
                else:
                    wait_for = loading
            if evicted is not None:
                # Join the dead worker outside the router lock (it exited
                # already, so this is cheap bookkeeping, not a drain).
                evicted.close()
            if wait_for is None:
                break
            # Another thread is loading this model; wait, then re-check
            # (its load may also have failed — then we try ourselves).
            wait_for.wait()
        try:
            entry = self._load_entry(canonical)
        finally:
            with self._lock:
                self._loading.pop(canonical, None)
            loading.set()
        return entry

    def _workers_for(self, canonical: str) -> int:
        """Worker processes for this model: weight override or default."""
        if self.server_workers <= 0:
            return 0
        weight = self.worker_weights.get(canonical)
        if weight is None and "@" in canonical:
            weight = self.worker_weights.get(canonical.partition("@")[0])
        return self.server_workers if weight is None else int(weight)

    def _quality_monitor(self, canonical: str):
        """Build this model's quality monitor (never blocks a load)."""
        if not self.quality:
            return None
        try:
            return QualityMonitor.from_manifest(
                canonical, self.registry.manifest(canonical), seed=self.seed)
        except Exception:
            # A malformed manifest costs the quality signal, not serving.
            return None

    def _build_service(self, canonical: str, monitor=None):
        workers = self._workers_for(canonical)
        if workers > 0:
            # Multi-process pool: the parent reads only the manifest
            # (kind/schema/dims); workers load the weights themselves.
            kind = self.registry.manifest(canonical).get("kind")
            if kind != "tablegan":
                raise UnservableModelError(
                    f"model {canonical!r} has kind {kind!r}; only "
                    "single-generator TableGAN registrations are servable "
                    "over HTTP (use `repro synth` for chunked models)"
                )
            return WorkerPoolService(
                self.registry, canonical, workers=workers,
                pool_size=self.pool_size, batch_rows=self.batch_rows,
                seed=self.seed, start_method=self.worker_start_method,
                trace_log=self.trace_log, name=canonical,
                metrics_registry=self.metrics_registry, quality=monitor,
            )
        model = self.registry.load(canonical)
        if not isinstance(model, TableGAN):
            # ChunkedTableGAN has no single record stream to slice;
            # surface a clear "not servable here" instead of a 500.
            raise UnservableModelError(
                f"model {canonical!r} is a {type(model).__name__}; only "
                "single-generator TableGAN registrations are servable "
                "over HTTP (use `repro synth` for chunked models)"
            )
        return SynthesisService(
            model, pool_size=self.pool_size, batch_rows=self.batch_rows,
            seed=self.seed, quality=monitor,
        )

    def _load_entry(self, canonical: str) -> ModelEntry:
        """Load + wire one model (no router lock held during the load)."""
        monitor = self._quality_monitor(canonical)
        service = self._build_service(canonical, monitor)
        batcher = CoalescingBatcher(
            service, max_queue_depth=self.max_queue_depth,
            coalesce=self.coalesce, name=canonical,
            client_quota=self.client_quota,
            registry=self.metrics_registry,
        )
        entry = ModelEntry(canonical, service, batcher,
                           _estimate_bytes(service, self.pool_size),
                           quality=monitor)
        self._m_loads.inc()
        with self._lock:
            if self._closed:
                entry.close()
                raise RouterClosed("router is shut down")
            self._entries[canonical] = entry
            victims = self._evict_over_budget(keep=canonical)
        # Closing a batcher joins its worker (possibly mid-replenish, i.e.
        # a generator forward) — never under the router lock, or one
        # eviction would stall requests for every resident model.
        for victim in victims:
            victim.close()
        return entry

    def _evict_over_budget(self, keep: str) -> list[ModelEntry]:
        """Pop idle LRU entries until inside budget (lock held).

        Returns the evicted entries; the caller closes their batchers
        after releasing the lock.
        """
        def over() -> bool:
            if len(self._entries) > self.max_models:
                return True
            if self.memory_budget_bytes is None:
                return False
            total = sum(e.est_bytes for e in self._entries.values())
            return total > self.memory_budget_bytes

        victims = []
        while over():
            victim = next(
                (ref for ref, entry in self._entries.items()
                 if ref != keep and entry.batcher.queue_depth == 0),
                None,
            )
            if victim is None:
                break  # everything else is busy; exceed budget for now
            victims.append(self._entries.pop(victim))
            self.evictions += 1
            self._m_evictions.inc()
        return victims

    # ------------------------------------------------------------------
    # Introspection / lifecycle.
    # ------------------------------------------------------------------
    def _refresh_gauges(self) -> None:
        """Exposition-time collector: mirror live state into gauges so
        the request path never pays for them."""
        with self._lock:
            entries = list(self._entries.items())
        self._g_resident.set(len(entries))
        live = {ref for ref, _ in entries}
        for family in (self._g_queue_depth, self._g_pooled_rows,
                       self._g_quality_stat, self._g_quality_status,
                       self._g_quality_rows):
            for key, _series in family.series():
                labels = dict(key)
                if labels.get("model") not in live:
                    family.remove(**labels)
        for ref, entry in entries:
            self._g_queue_depth.labels(model=ref).set(
                entry.batcher.queue_depth)
            self._g_pooled_rows.labels(model=ref).set(
                entry.service.pooled_rows)
            if entry.quality is not None:
                status, per_column, rows = entry.quality.gauge_scores()
                self._g_quality_status.labels(model=ref).set(
                    STATUS_CODES[status])
                self._g_quality_rows.labels(model=ref).set(rows)
                for column, stat in per_column.items():
                    self._g_quality_stat.labels(
                        model=ref, column=column).set(stat)

    def resident(self) -> list[str]:
        """Currently loaded references, least recently used first."""
        with self._lock:
            return list(self._entries)

    def health(self) -> dict:
        """Per-resident-model worker health (``ok``/``degraded``/``dead``)."""
        with self._lock:
            entries = list(self._entries.items())
        return {ref: entry.health for ref, entry in entries}

    def quality_status(self) -> dict:
        """Per-resident-model drift rollup (``ok``/``warn``/``drift``).

        Surfaced in ``/healthz`` alongside — not merged into — worker
        health: a drifting model still serves, it just should not be
        trusted silently.
        """
        with self._lock:
            entries = list(self._entries.items())
        return {ref: entry.quality.status for ref, entry in entries
                if entry.quality is not None}

    def metrics(self) -> dict:
        """Per-model serving metrics for every resident model."""
        with self._lock:
            entries = list(self._entries.items())
            evictions = self.evictions
            dead_evictions = self.dead_evictions
        return {
            "resident_models": [ref for ref, _ in entries],
            "evictions": evictions,
            "dead_evictions": dead_evictions,
            "models": {ref: entry.metrics() for ref, entry in entries},
        }

    def close(self) -> None:
        """Drain and stop every resident batcher (graceful; idempotent)."""
        self.metrics_registry.remove_collector(self._refresh_gauges)
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.close()
