"""Micro-batched synthesis service with a replenished sample pool.

Serving cost at small request sizes is dominated by per-call overhead, in
two places: the generator forward (layer dispatch, im2col plan lookups,
small GEMMs — an 8-row forward costs a large fraction of a 256-row one)
and the decode (one numpy op per column per call, so a 60-column table
costs ~60 tiny ops per request regardless of row count).  The service
amortizes **both** by serving many small ``n``-row requests out of one
record stream:

* generation happens in blocks of at least ``pool_size`` rows, cut into
  ``batch_rows``-row generator forwards (the blocked/streamed im2col
  engine keeps large-batch throughput flat — conv workspaces are tiled to
  a cache budget internally — so ``batch_rows`` now defaults to a few
  thousand rows and mainly bounds per-replenishment latency and memory);
* each generated block is decoded **once**, and requests are served as
  slices of the pooled encoded/decoded pair — a sub-batch request touches
  neither the generator nor the column codecs;
* :meth:`SynthesisService.sample_many` coalesces a whole request list
  into a single block.

Rows are handed out strictly in generation order from one seeded RNG, so
the concatenation of all responses is bit-identical to a single
``RecordSampler.sample_records`` call for the same total — request
batching is a pure performance decision, never a numerics one.  The
generator runs in inference mode (``training=False`` threaded through
``Sequential``), so BatchNorm serves its running statistics and sampling
never perturbs model state.

The service is **thread-safe**, with two locks split so that generation
never blocks serving:

* the **pool lock** serializes every claim (pool take + stats + stream
  position) — held only for slice bookkeeping, microseconds;
* the **generation lock** serializes generator access, so rows always
  enter the pool in the single seeded stream's order — but it is held
  *outside* the pool lock, so pooled rows keep being served while a
  replenishment runs.

That split is what makes replenish-ahead possible: the server's batcher
worker calls :meth:`SynthesisService.replenish` whenever it is idle and
the pool runs low, so generation overlaps request handling instead of
being a stop-the-world bubble.  Each call is atomic — it owns a
contiguous slice of the record stream, claimed in pool-lock order — and
:meth:`SynthesisService.take_block` additionally reports each slice's
offset in that stream, which is how the server proves response
determinism to its clients.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.sampler import RecordSampler
from repro.core.tablegan import TableGAN
from repro.data.table import Table
from repro.obs import trace
from repro.obs.profile import PhaseProfile
from repro.utils.faults import fault_point
from repro.utils.rng import ensure_rng


@dataclass
class ServiceStats:
    """Counters describing how much work the generator actually did."""

    requests: int = 0
    rows_served: int = 0
    rows_generated: int = 0
    generator_calls: int = 0
    pool_hits: int = 0  # requests served entirely from pooled rows

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Pool:
    """FIFO buffer of (encoded, decoded) chunk pairs with a head offset."""

    chunks: list = field(default_factory=list)
    head: int = 0
    available: int = 0

    def push(self, encoded: np.ndarray, decoded: np.ndarray) -> None:
        self.chunks.append((encoded, decoded))
        self.available += encoded.shape[0]

    def take(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        if n > self.available:
            raise ValueError(f"pool holds {self.available} rows, asked for {n}")
        enc_parts, dec_parts = [], []
        remaining = n
        while remaining:
            encoded, decoded = self.chunks[0]
            grab = min(encoded.shape[0] - self.head, remaining)
            enc_parts.append(encoded[self.head : self.head + grab])
            dec_parts.append(decoded[self.head : self.head + grab])
            self.head += grab
            remaining -= grab
            if self.head == encoded.shape[0]:
                self.chunks.pop(0)
                self.head = 0
        self.available -= n
        if len(enc_parts) == 1:
            return enc_parts[0], dec_parts[0]
        return (np.concatenate(enc_parts, axis=0),
                np.concatenate(dec_parts, axis=0))


class SynthesisService:
    """Serve many small synthesis requests from large generator batches.

    Parameters
    ----------
    model:
        A fitted :class:`TableGAN` or a :class:`RecordSampler` (e.g. from
        ``TableGAN.record_sampler()`` or a registry-loaded model).
    pool_size:
        Minimum rows generated (and decoded) per replenishment.  Sub-batch
        requests drain the pooled surplus from memory; 0 disables pooling
        (each shortfall generates exactly what is missing, still coalesced
        per request batch).
    batch_rows:
        Rows per generator forward pass inside a replenishment.  Since the
        blocked/streamed im2col engine (ISSUE 4), generator throughput no
        longer degrades past a few hundred rows — the conv workspaces are
        tiled to the cache budget internally — so the default is sized to
        amortize per-forward layer dispatch on bulk requests while keeping
        per-replenishment latency and buffer memory moderate.
    seed:
        Seed of the service's record stream.
    quality:
        Optional :class:`~repro.serve.quality.QualityMonitor`.  Every
        decoded block is tapped into its streaming sketch right after the
        decode — each generated row is seen exactly once, off the
        per-request path.  The tap is observe-only (it never touches the
        service RNG or the pooled buffers) and swallows its own failures,
        so responses are bit-identical with the tap armed or absent.
    """

    def __init__(self, model, pool_size: int = 0, batch_rows: int = 2048,
                 seed=None, quality=None):
        if isinstance(model, TableGAN):
            sampler = model.record_sampler()
        elif isinstance(model, RecordSampler):
            sampler = model
        else:
            raise TypeError(
                f"model must be a TableGAN or RecordSampler, got {type(model).__name__}"
            )
        if pool_size < 0:
            raise ValueError(f"pool_size must be non-negative, got {pool_size}")
        if batch_rows <= 0:
            raise ValueError(f"batch_rows must be positive, got {batch_rows}")
        self.sampler = sampler
        self.pool_size = pool_size
        self.batch_rows = batch_rows
        self.quality = quality
        self._rng = ensure_rng(seed)
        self._pool = _Pool()
        self.stats = ServiceStats()
        # Always-on stage accounting: generate vs decode seconds, read by
        # the router's /metrics entry and the bench stage breakdown.
        self.profile = PhaseProfile()
        # Pool lock: claims (take + stats + stream position) — held for
        # microseconds, so concurrent callers each get a contiguous,
        # disjoint stream slice without ever waiting on the generator.
        self._lock = threading.RLock()
        # Generation lock: serializes generator/RNG access so rows enter
        # the pool in stream order; held OUTSIDE the pool lock so pooled
        # rows keep being served while a replenishment runs.
        self._gen_lock = threading.Lock()
        self._stream_pos = 0

    def close(self) -> None:
        """Release service resources.

        The in-process service owns nothing beyond garbage-collected
        buffers, so this is a no-op; it exists so the router can tear any
        service implementation down uniformly (the multi-process
        :class:`~repro.serve.server.procpool.WorkerPoolService` joins its
        workers and unlinks shared memory here).
        """

    @property
    def pooled_rows(self) -> int:
        """Rows currently pre-generated and waiting in memory."""
        with self._lock:
            return self._pool.available

    @property
    def stream_position(self) -> int:
        """Rows handed out so far — the stream offset of the next row."""
        with self._lock:
            return self._stream_pos

    @property
    def schema(self):
        """Schema of the served table."""
        return self.sampler.codec.schema_

    def _generate_into_pool(self, rows: int) -> None:
        """Generate ``rows`` stream rows and push them into the pool.

        Callers must hold ``self._gen_lock`` (stream order) and must NOT
        hold ``self._lock`` (the whole point: pooled rows stay servable
        while the generator runs).
        """
        # Injection seam: a raise here models a generator failure before
        # any stream rows are claimed, so a retried request is bit-exact.
        fault_point("service.generate")
        t0 = time.perf_counter()
        with trace.span("service.generate", rows=rows):
            encoded = self.sampler.sample_records(
                rows, rng=self._rng, batch_size=self.batch_rows
            )
        t1 = time.perf_counter()
        # One decode for the whole block: the per-column codec cost is
        # paid once per replenishment, not once per request.
        with trace.span("service.decode", rows=rows):
            decoded = self.sampler.codec.decode(encoded).values
        t2 = time.perf_counter()
        self.profile.add("generate", t1 - t0)
        self.profile.add("decode", t2 - t1)
        if self.quality is not None:
            # Quality tap: every generated row passes here exactly once.
            # The monitor isolates its own failures, so this cannot raise.
            self.quality.tap(decoded)
        with self._lock:
            self._pool.push(encoded, decoded)
            self.stats.rows_generated += rows
            self.stats.generator_calls += -(-rows // self.batch_rows)

    def _generate_for(self, total: int) -> None:
        """Grow the pool toward ``total`` available rows."""
        with self._gen_lock:
            with self._lock:
                shortfall = total - self._pool.available
            if shortfall <= 0:
                return  # another generator covered us while we waited
            self._generate_into_pool(max(shortfall, self.pool_size))

    def _acquire(self, total: int,
                 requests: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Claim the next ``total`` stream rows (generating if needed).

        Returns ``(encoded, decoded, base_offset)``.  The claim itself is
        atomic under the pool lock; generation, when required, happens
        outside it.
        """
        pool_hit = True
        while True:
            with self._lock:
                if self._pool.available >= total:
                    if pool_hit:
                        self.stats.pool_hits += 1
                    self.stats.requests += requests
                    self.stats.rows_served += total
                    base = self._stream_pos
                    self._stream_pos += total
                    encoded, decoded = self._pool.take(total)
                    return encoded, decoded, base
            pool_hit = False
            self._generate_for(total)

    def replenish(self, target: int | None = None) -> int:
        """Pre-generate so the pool holds at least ``target`` rows.

        The read-ahead entry point (default target: ``pool_size``): the
        server's batcher worker calls this while idle, so pool misses —
        and their stop-the-world latency bubbles — happen off the request
        path.  Returns the number of rows generated (0 when the pool was
        already full enough, or when the target is 0).
        """
        target = self.pool_size if target is None else target
        if target <= 0:
            return 0
        with self._gen_lock:
            with self._lock:
                missing = target - self._pool.available
            if missing <= 0:
                return 0
            self._generate_into_pool(missing)
            return missing

    # ------------------------------------------------------------------
    # Single requests.
    # ------------------------------------------------------------------
    def sample_records(self, n: int) -> np.ndarray:
        """``n`` encoded records in [-1, 1] (served from the pool if possible)."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        encoded, _, _ = self._acquire(n, requests=1)
        return encoded.copy()

    def sample(self, n: int) -> Table:
        """``n`` decoded, schema-valid synthetic rows."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        _, decoded, _ = self._acquire(n, requests=1)
        return Table(decoded.copy(), self.schema)

    # ------------------------------------------------------------------
    # Micro-batched request lists.
    # ------------------------------------------------------------------
    def _acquire_many(self, counts) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray, int]:
        counts = [int(c) for c in counts]
        if any(c <= 0 for c in counts):
            raise ValueError(f"every request must be positive, got {counts}")
        encoded, decoded, base = self._acquire(sum(counts),
                                               requests=len(counts))
        return encoded, decoded, np.cumsum(counts[:-1]), base

    def sample_many_records(self, counts) -> list[np.ndarray]:
        """Serve a batch of requests from one coalesced generator pass.

        ``counts`` is a sequence of per-request row counts; the response is
        one encoded-record array per request, in order, carved out of a
        single ``sum(counts)``-row block (minus whatever the pool already
        holds).
        """
        if not len(counts):
            return []
        encoded, _, offsets, _ = self._acquire_many(counts)
        return [part.copy() for part in np.split(encoded, offsets, axis=0)]

    def sample_many(self, counts) -> list[Table]:
        """Like :meth:`sample_many_records`, decoded to schema-valid Tables.

        The decode itself is micro-batched: the block is decoded once and
        each response Table is a slice of it.
        """
        if not len(counts):
            return []
        _, decoded, offsets, _ = self._acquire_many(counts)
        schema = self.schema
        return [
            Table(part.copy(), schema)
            for part in np.split(decoded, offsets, axis=0)
        ]

    def take_pooled(self, n: int) -> tuple[np.ndarray, int] | None:
        """The next ``n`` decoded rows IF the pool already holds them.

        Returns ``(values, offset)`` like a one-request
        :meth:`take_block`, or ``None`` when serving would require
        generating — this method never touches the generator.  It exists
        for the server's pool-hit fast path: a request that needs no
        generator work has nothing to coalesce, so the handler thread can
        claim its slice directly instead of paying two thread handoffs
        through the batcher's worker.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        with trace.span("service.take_pooled", rows=n) as sp:
            with self._lock:
                if n > self._pool.available:
                    sp.set(hit=False)
                    return None
                base = self._stream_pos
                self.stats.pool_hits += 1
                self.stats.requests += 1
                self.stats.rows_served += n
                self._stream_pos += n
                _, decoded = self._pool.take(n)
            sp.set(hit=True)
            return decoded.copy(), base

    def take_block(self, counts) -> tuple[list[np.ndarray], int]:
        """Decoded value blocks for a request batch, plus their stream offset.

        Like :meth:`sample_many` but returning raw value matrices and the
        stream offset of the block's first row, so a caller can prove where
        each response sits in the service's single seeded record stream
        (response ``i`` starts at ``offset + sum(counts[:i])``).  This is
        the entry point the server's coalescing batcher drains through.
        """
        if not len(counts):
            with self._lock:
                return [], self._stream_pos
        with trace.span("service.take_block", rows=int(sum(counts)),
                        requests=len(counts)):
            _, decoded, offsets, base = self._acquire_many(counts)
            return ([part.copy() for part in
                     np.split(decoded, offsets, axis=0)], base)
