"""Model registry: persist trained synthesizers for the serving layer.

Training is the expensive phase; generation is cheap (§4.3).  The registry
is the boundary between the two: a trained :class:`~repro.core.tablegan.
TableGAN` or :class:`~repro.core.chunking.ChunkedTableGAN` is registered
once, with everything needed to sample from it later — generator weights
(including batch-norm running statistics), the per-column min/max codec
ranges, the table schema, and the training configuration — and any number
of serving processes load it by name without ever seeing the training
table.

Directory layout (one subdirectory per registration)::

    <root>/
        <name>/                     # unversioned registration, and/or
        <name>@<version>/           # one directory per registered version
            manifest.json           # metadata + per-artifact SHA-256
            generator.npz           # TableGAN weights, or
            chunk_0000.npz ...      # one archive per ChunkedTableGAN chunk

Models are addressed by **reference**: ``name`` alone (or the explicit
alias ``name@latest``) resolves to the newest registration of that name —
by manifest ``created_at`` across the unversioned entry and every
version — while ``name@<version>`` pins one exactly.  Registering a new
version never touches the prior ones, so rollback is
``load("name@previous")``.

Two guarantees:

* **Atomic registration** — artifacts are staged into a hidden temporary
  directory inside the root and committed with a single ``os.replace`` of
  the directory, so a crash mid-register can never leave a half-written
  model visible to :meth:`ModelRegistry.load` or :meth:`ModelRegistry.
  names`.
* **Corrupt-artifact detection** — every archive's SHA-256 is recorded in
  the manifest and re-verified before deserializing; a truncated or
  bit-flipped archive raises :class:`CorruptArtifactError` instead of
  being served.  Architecture mismatches surface as :class:`RegistryError`
  via the shape validation in ``load_state_dict``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import shutil
import tempfile
import time
import zipfile
from pathlib import Path

import numpy as np

from repro.core.chunking import ChunkedTableGAN
from repro.core.config import TableGanConfig
from repro.core.tablegan import TableGAN, build_generator_for, matrixizer_for
from repro.data.encoding import TableCodec
from repro.data.schema import TableSchema
from repro.nn import load_state_dict, state_dict
from repro.utils.faults import fault_point

#: Manifest schema version; bumped on incompatible layout changes.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")

#: Version alias that always resolves to the newest registration of a name.
LATEST_VERSION = "latest"


class RegistryError(RuntimeError):
    """A registry operation failed (unknown model, name clash, bad manifest)."""


class CorruptArtifactError(RegistryError):
    """A persisted artifact failed checksum or deserialization validation."""


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.fullmatch(name):
        raise RegistryError(
            f"invalid model name {name!r}: use letters, digits, '.', '_', '-' "
            "(must not start with '.')"
        )
    return name


def _check_version(version: str) -> str:
    if not isinstance(version, str) or not _NAME_RE.fullmatch(version):
        raise RegistryError(
            f"invalid model version {version!r}: use letters, digits, '.', "
            "'_', '-' (must not start with '.')"
        )
    if version == LATEST_VERSION:
        raise RegistryError(
            f"version {LATEST_VERSION!r} is a reserved alias for the newest "
            "registration and cannot be registered directly"
        )
    return version


def split_ref(ref: str) -> tuple[str, str | None]:
    """Split a model reference into ``(name, version)``.

    ``"name"`` and the explicit alias ``"name@latest"`` return a ``None``
    version (resolve to the newest registration); ``"name@<version>"``
    pins one.  Both components are validated, so a reference can always be
    joined into a path-safe directory name.
    """
    if not isinstance(ref, str):
        raise RegistryError(f"invalid model reference {ref!r}: not a string")
    name, sep, version = ref.partition("@")
    _check_name(name)
    if not sep or version == LATEST_VERSION:
        return name, None
    return name, _check_version(version)


def _dirname(name: str, version: str | None) -> str:
    return name if version is None else f"{name}@{version}"


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _config_to_dict(config: TableGanConfig) -> dict:
    data = dataclasses.asdict(config)
    if data.get("label_columns") is not None:
        data["label_columns"] = list(data["label_columns"])
    return data


def _config_from_dict(data: dict) -> TableGanConfig:
    data = dict(data)
    if data.get("label_columns") is not None:
        data["label_columns"] = tuple(data["label_columns"])
    try:
        return TableGanConfig(**data)
    except (TypeError, ValueError) as exc:
        raise RegistryError(f"manifest config is invalid: {exc}") from exc


class ModelRegistry:
    """Named, validated persistence for trained synthesizers.

    Parameters
    ----------
    root:
        Registry directory; created (with parents) on first
        :meth:`register`.  Read operations never create it, so a mistyped
        ``--registry`` path cannot leave stray directories behind.
    """

    def __init__(self, root):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def path_for(self, ref: str) -> Path:
        """The directory a model reference denotes (no ``latest`` resolution)."""
        name, version = split_ref(ref)
        return self.root / _dirname(name, version)

    def __contains__(self, ref: str) -> bool:
        try:
            self.resolve(ref)
        except RegistryError:
            return False
        return True

    def names(self) -> list[str]:
        """Registered references, sorted (staging/trash dirs excluded).

        Versioned registrations appear as ``name@version`` entries, one per
        version kept on disk.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name for entry in self.root.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
            and (entry / MANIFEST_NAME).is_file()
        )

    def versions(self, name: str) -> list[str]:
        """Registered versions of ``name``, sorted (unversioned entry excluded)."""
        _check_name(name)
        if not self.root.is_dir():
            return []
        prefix = f"{name}@"
        return sorted(
            entry.name[len(prefix):] for entry in self.root.iterdir()
            if entry.is_dir() and entry.name.startswith(prefix)
            and (entry / MANIFEST_NAME).is_file()
        )

    def _recover_journaled(self, name: str) -> bool:
        """Resolve interrupted overwrite swaps of ``name`` from their journal.

        An overwrite re-registration writes a ``.commit-*.json`` journal
        (fsynced) *before* touching the live directory, naming the stage,
        trash, and final paths of the swap, and unlinks it after the swap
        (or its rollback) completes.  A journal on disk therefore means a
        process died mid-swap, and its contents say exactly how far the
        swap got:

        * final manifest present — the commit rename happened; finish the
          cleanup (drop the trash copy, drop the journal);
        * final absent, staged manifest complete — the kill landed in the
          window between the two renames; **roll forward** (the stage was
          durably written before the journal, so the new registration
          wins, exactly as if the process had survived one more
          microsecond);
        * final absent, stage unusable — roll back from the trash copy;
        * swap never started (final still present alongside the stage) —
          drop the stage and the journal; the caller never saw a commit.

        Returns True if anything changed on disk.  Rolled forward or
        back, the journal is always consumed, so the plain ``.trash-``
        scan below never second-guesses a journaled swap.
        """
        if not self.root.is_dir():
            return False
        changed = False
        for entry in self.root.iterdir():
            if not (entry.name.startswith(".commit-")
                    and entry.name.endswith(".json")):
                continue
            try:
                with open(entry) as handle:
                    journal = json.load(handle)
            except (json.JSONDecodeError, OSError):
                continue  # torn journal write: the swap never started
            dirname = journal.get("dirname")
            if (not isinstance(dirname, str)
                    or (dirname != name
                        and not dirname.startswith(f"{name}@"))):
                continue
            final = self.root / dirname
            stage = self.root / str(journal.get("stage") or "")
            trash = self.root / str(journal.get("trash") or "")
            try:
                if (final / MANIFEST_NAME).is_file():
                    # Committed (or never started): only cleanup remains.
                    if trash.name and trash.is_dir() and stage.name \
                            and not stage.exists():
                        shutil.rmtree(trash, ignore_errors=True)
                    if stage.name and stage.is_dir():
                        shutil.rmtree(stage, ignore_errors=True)
                elif stage.name and (stage / MANIFEST_NAME).is_file():
                    os.replace(stage, final)  # roll the commit forward
                    if trash.name and trash.is_dir():
                        shutil.rmtree(trash, ignore_errors=True)
                elif trash.name and (trash / MANIFEST_NAME).is_file():
                    os.replace(trash, final)  # roll back to the old model
                    if stage.name and stage.is_dir():
                        shutil.rmtree(stage, ignore_errors=True)
                entry.unlink(missing_ok=True)
            except OSError:
                continue  # e.g. a concurrent recovery won the rename
            changed = True
        return changed

    def _recover_trashed(self, name: str) -> bool:
        """Restore registrations of ``name`` stranded by an interrupted swap.

        An overwrite re-registration commits in two renames — the old
        directory moves to ``.trash-<dirname>-<pid>``, then the staged one
        moves into place.  A SIGKILL between them leaves the only good
        copy of the model in the trash directory (the stage is incomplete
        by definition).  This detects that state — trash present, final
        absent — and puts the survivor back, so the model resolves again
        instead of reporting missing.  Trash directories whose final
        registration exists are the *other* interruption (a crash during
        post-commit cleanup) and are left for cleanup; ``delete`` uses the
        distinct ``.delete-`` prefix precisely so a half-deleted model is
        never resurrected here.  Returns True if anything was restored.

        Journaled swaps (see :meth:`_recover_journaled`) are resolved
        first — their journal records which direction recovery should go,
        including the roll-forward this scan cannot infer from the trash
        directory alone.
        """
        if not self.root.is_dir():
            return False
        restored = self._recover_journaled(name)
        for entry in self.root.iterdir():
            if not entry.name.startswith(".trash-"):
                continue
            # ".trash-<dirname>-<pid>": the pid tail never contains "-".
            stem = entry.name[len(".trash-"):]
            dirname, sep, _pid = stem.rpartition("-")
            if not sep or (dirname != name
                           and not dirname.startswith(f"{name}@")):
                continue
            if not (entry / MANIFEST_NAME).is_file():
                continue
            final = self.root / dirname
            if (final / MANIFEST_NAME).is_file():
                continue  # the swap completed; this trash is stale cleanup
            try:
                os.replace(entry, final)
            except OSError:
                continue  # e.g. another process restored it concurrently
            restored = True
        return restored

    def resolve(self, ref: str) -> str:
        """Resolve a reference to the directory name of one registration.

        ``name@<version>`` must exist exactly; a bare ``name`` (or
        ``name@latest``) picks the newest registration — by manifest
        ``created_at``, directory name breaking ties — among the
        unversioned entry and every version of ``name``.  Either lookup
        first restores any copy of ``name`` stranded mid-swap by an
        interrupted re-registration (see :meth:`_recover_trashed`).
        """
        name, version = split_ref(ref)
        if version is not None:
            dirname = _dirname(name, version)
            if (self.root / dirname / MANIFEST_NAME).is_file():
                return dirname
            if (self._recover_trashed(name)
                    and (self.root / dirname / MANIFEST_NAME).is_file()):
                return dirname
            raise RegistryError(f"no model named {ref!r} in {self.root}")
        self._recover_trashed(name)
        candidates = []
        if (self.root / name / MANIFEST_NAME).is_file():
            candidates.append(name)
        candidates += [_dirname(name, v) for v in self.versions(name)]
        if not candidates:
            raise RegistryError(f"no model named {name!r} in {self.root}")
        if len(candidates) == 1:
            return candidates[0]

        def created_at(dirname: str) -> float:
            try:
                stamp = self._manifest_of(dirname).get("created_at")
                return float(stamp) if stamp is not None else 0.0
            except (RegistryError, TypeError, ValueError):
                return 0.0

        return max(candidates, key=lambda d: (created_at(d), d))

    def _manifest_of(self, dirname: str) -> dict:
        """The parsed manifest inside one resolved registry directory."""
        path = self.root / dirname / MANIFEST_NAME
        if not path.is_file():
            raise RegistryError(f"no model named {dirname!r} in {self.root}")
        try:
            with open(path) as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, OSError) as exc:
            raise CorruptArtifactError(
                f"unreadable manifest for {dirname!r}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise CorruptArtifactError(f"manifest for {dirname!r} is not an object")
        return manifest

    def manifest(self, ref: str) -> dict:
        """The parsed manifest of the registration ``ref`` resolves to."""
        return self._manifest_of(self.resolve(ref))

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------
    def register(self, name: str, model, overwrite: bool = False,
                 version: str | None = None,
                 reference_stats: dict | None = None) -> dict:
        """Persist a fitted model under ``name`` and return its manifest.

        ``model`` is a fitted :class:`TableGAN` or :class:`ChunkedTableGAN`.
        ``reference_stats`` optionally freezes the training table's
        per-column statistics (see :func:`repro.obs.quality.
        reference_stats`) into the manifest, where the serving tier's drift
        scorer picks them up.  The key is optional — manifests without it
        load fine and serving simply reports quality unscored.
        With ``version`` the registration lands in its own
        ``<name>@<version>`` directory and prior versions stay on disk
        untouched — ``load(name)`` then resolves to the newest
        registration, ``load(f"{name}@{version}")`` pins this one.  A fresh
        registration commits with one directory rename, so a crash can
        never expose a half-written model.  Overwriting swaps the old
        directory aside first and restores it if the commit rename fails;
        POSIX offers no atomic non-empty-directory exchange, so a SIGKILL
        can still land between the two renames — but the swap is journaled
        (a fsynced ``.commit-*.json`` written before the first rename), and
        the next ``resolve()`` replays it: the staged new model rolls
        forward as if the commit had finished, or, if the stage is
        unusable, the previous model rolls back from its ``.trash-*``
        copy.  Either way nothing is lost and nothing half-written is ever
        visible.  With ``overwrite=False`` an existing registration of the
        same name (and version) is refused.
        """
        _check_name(name)
        if version is not None:
            _check_version(version)
        dirname = _dirname(name, version)
        final = self.root / dirname
        if final.exists() and not overwrite:
            raise RegistryError(
                f"model {dirname!r} already registered (use overwrite=True)"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        stage = Path(tempfile.mkdtemp(dir=self.root, prefix=f".stage-{dirname}-"))
        try:
            manifest = self._stage(stage, name, model)
            manifest["version"] = version
            if reference_stats is not None:
                if not isinstance(reference_stats, dict):
                    raise RegistryError(
                        "reference_stats must be a dict "
                        f"(got {type(reference_stats).__name__})"
                    )
                manifest["reference_stats"] = reference_stats
            with open(stage / MANIFEST_NAME, "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            if final.exists():
                trash = self.root / f".trash-{dirname}-{os.getpid()}"
                # Journal the swap before touching the live directory:
                # should a SIGKILL land anywhere inside it — including the
                # window between the two renames — the next resolve() reads
                # this record and rolls the commit forward (the stage is
                # already durably complete) instead of merely restoring the
                # old copy.  fsync before the first rename: a journal that
                # exists implies the swap may have started.
                journal = self.root / f".commit-{dirname}-{os.getpid()}.json"
                with open(journal, "w") as handle:
                    json.dump({"dirname": dirname, "stage": stage.name,
                               "trash": trash.name}, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                try:
                    os.replace(final, trash)
                    try:
                        # Injection seam for the swap's crash window: a
                        # raise here exercises the restore path below, and
                        # the SIGKILL variant (no cleanup at all) is what
                        # resolve()'s journal recovery exists for.
                        fault_point("registry.commit")
                        os.replace(stage, final)
                    except BaseException:
                        # Put the previous model back before propagating.
                        os.replace(trash, final)
                        raise
                    shutil.rmtree(trash, ignore_errors=True)
                finally:
                    journal.unlink(missing_ok=True)
            else:
                os.replace(stage, final)
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        return manifest

    def _stage(self, stage: Path, name: str, model) -> dict:
        if isinstance(model, TableGAN):
            if model.generator_ is None:
                raise RegistryError("cannot register an unfitted TableGAN")
            entry = self._stage_generator(stage, "generator.npz", model)
            extra = {"kind": "tablegan", "generator": entry}
            reference = model
        elif isinstance(model, ChunkedTableGAN):
            if model.models_ is None:
                raise RegistryError("cannot register an unfitted ChunkedTableGAN")
            chunks = []
            for idx, (chunk, size) in enumerate(
                zip(model.models_, model.chunk_sizes_)
            ):
                entry = self._stage_generator(stage, f"chunk_{idx:04d}.npz", chunk)
                entry["size"] = int(size)
                chunks.append(entry)
            extra = {"kind": "chunked", "chunks": chunks}
            reference = model.models_[0]
        else:
            raise RegistryError(
                f"cannot register {type(model).__name__}; expected TableGAN "
                "or ChunkedTableGAN"
            )
        params = reference.generator_.parameters()
        dtype = params[0].data.dtype if params else np.dtype(np.float64)
        manifest = {
            "format_version": FORMAT_VERSION,
            "name": name,
            "created_at": time.time(),
            "config": _config_to_dict(model.config),
            "schema": reference.codec_.schema_.to_dict(),
            "side": int(reference.matrixizer_.side),
            "n_features": int(reference.matrixizer_.n_features),
            "dtype": dtype.name,
        }
        manifest.update(extra)
        return manifest

    @staticmethod
    def _stage_generator(stage: Path, filename: str, gan: TableGAN) -> dict:
        path = stage / filename
        np.savez_compressed(path, **state_dict(gan.generator_))
        return {
            "file": filename,
            "sha256": _sha256(path),
            "col_min": [c.data_min_ for c in gan.codec_.codecs_],
            "col_max": [c.data_max_ for c in gan.codec_.codecs_],
        }

    # ------------------------------------------------------------------
    # Loading.
    # ------------------------------------------------------------------
    def load(self, name: str):
        """Rebuild a sample-ready model from its persisted artifacts.

        ``name`` is a reference: a bare name (or ``name@latest``) loads the
        newest registration, ``name@<version>`` pins one.  Returns a
        :class:`TableGAN` or :class:`ChunkedTableGAN` whose ``sample``
        output is bit-identical to the originally registered model's (same
        seed, same rows).
        """
        dirname = self.resolve(name)
        manifest = self._manifest_of(dirname)
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise RegistryError(
                f"model {name!r} has format version {version}, "
                f"this build reads {FORMAT_VERSION}"
            )
        try:
            config = _config_from_dict(manifest["config"])
            schema = TableSchema.from_dict(manifest["schema"])
            side = int(manifest["side"])
            n_features = int(manifest["n_features"])
            dtype = np.dtype(manifest["dtype"])
            kind = manifest["kind"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptArtifactError(
                f"manifest for {name!r} is missing or malformed: {exc}"
            ) from exc
        if n_features != schema.n_columns:
            raise CorruptArtifactError(
                f"manifest for {name!r} records {n_features} features but "
                f"its schema has {schema.n_columns} columns"
            )
        directory = self.root / dirname
        if kind == "tablegan":
            return self._load_one(directory, manifest["generator"], config,
                                  schema, side, dtype, name)
        if kind == "chunked":
            chunks = manifest["chunks"]
            if not chunks:
                raise CorruptArtifactError(f"model {name!r} has no chunks")
            chunked = ChunkedTableGAN(config, n_chunks=len(chunks))
            chunked.models_ = [
                self._load_one(directory, entry, config, schema, side, dtype,
                               name)
                for entry in chunks
            ]
            chunked.chunk_sizes_ = [int(entry["size"]) for entry in chunks]
            return chunked
        raise CorruptArtifactError(f"model {name!r} has unknown kind {kind!r}")

    def _load_one(self, directory: Path, entry: dict, config: TableGanConfig,
                  schema: TableSchema, side: int, dtype, name: str) -> TableGAN:
        try:
            filename = entry["file"]
            expected = entry["sha256"]
            col_min, col_max = entry["col_min"], entry["col_max"]
        except (KeyError, TypeError) as exc:
            raise CorruptArtifactError(
                f"artifact entry for {name!r} is malformed: {exc}"
            ) from exc
        path = directory / filename
        if not path.is_file():
            raise CorruptArtifactError(f"model {name!r} is missing {filename}")
        # Injection seam: arm with exc=CorruptArtifactError(...) to model
        # an artifact corrupted between router resolve and load.
        fault_point("registry.read")
        actual = _sha256(path)
        if actual != expected:
            raise CorruptArtifactError(
                f"checksum mismatch for {name!r}/{filename}: "
                f"manifest {expected[:12]}…, file {actual[:12]}…"
            )
        try:
            codec = TableCodec.from_ranges(schema, col_min, col_max)
            matrixizer = matrixizer_for(config, schema.n_columns, side)
            generator = build_generator_for(config, side, dtype=dtype)
            with np.load(path) as archive:
                load_state_dict(generator, dict(archive.items()))
        except (ValueError, KeyError, OSError, zipfile.BadZipFile) as exc:
            raise CorruptArtifactError(
                f"cannot restore {name!r}/{filename}: {exc}"
            ) from exc
        return TableGAN.from_parts(config, codec, matrixizer, generator)

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------
    def delete(self, ref: str) -> None:
        """Remove one registration (atomic: rename out, then delete).

        ``ref`` names an exact registration — ``name`` removes only the
        unversioned entry, ``name@<version>`` only that version.  The
        ``latest`` alias is deliberately not resolved here: deleting
        whatever happens to be newest is a foot-gun.
        """
        name, version = split_ref(ref)
        dirname = _dirname(name, version)
        path = self.root / dirname
        if not path.exists():
            versions = self.versions(name)
            if version is None and versions:
                raise RegistryError(
                    f"no unversioned model {name!r} in {self.root}; "
                    f"name one of its versions explicitly: "
                    + ", ".join(f"{name}@{v}" for v in versions)
                )
            raise RegistryError(f"no model named {ref!r} in {self.root}")
        # ".delete-", not ".trash-": resolve()'s crash recovery restores
        # ".trash-" survivors of an interrupted re-registration swap, and
        # a model the user deleted must never come back that way.
        trash = self.root / f".delete-{dirname}-{os.getpid()}"
        os.replace(path, trash)
        shutil.rmtree(trash, ignore_errors=True)

    def describe(self) -> list[dict]:
        """One summary dict per registration (for listings)."""
        rows = []
        for name in self.names():
            manifest = self._manifest_of(name)
            n_models = (
                len(manifest.get("chunks", []))
                if manifest.get("kind") == "chunked" else 1
            )
            rows.append({
                "name": name,
                "version": manifest.get("version"),
                "kind": manifest.get("kind", "?"),
                "models": n_models,
                "side": manifest.get("side"),
                "n_features": manifest.get("n_features"),
                "dtype": manifest.get("dtype", "?"),
                "layout": manifest.get("config", {}).get("layout", "?"),
                "created_at": manifest.get("created_at"),
            })
        return rows
