"""The synthesis serving subsystem: query trained models at scale.

Training is the expensive, offline phase; this package is the online one.
It turns a trained synthesizer into a queryable service surface:

* :mod:`repro.serve.registry` — :class:`ModelRegistry`: atomic, checksummed
  persistence of trained ``TableGAN``/``ChunkedTableGAN`` artifacts with
  schema + config metadata, listed and loaded by name;
* :mod:`repro.serve.service` — :class:`SynthesisService`: micro-batches
  many small ``n``-row requests into large generator forward passes, with
  an optional replenished sample pool so sub-batch requests are served
  from memory;
* :mod:`repro.serve.sharding` — :class:`ShardedSampler`: fans one large
  request across a ``multiprocessing`` pool with per-shard spawned RNGs;
  output is bit-identical for every worker count;
* :mod:`repro.serve.sinks` — :class:`CsvSink` / :class:`NpzSink`:
  streaming, atomic writers so multi-million-row outputs need bounded
  memory;
* :mod:`repro.serve.server` — :class:`SynthesisServer` /
  :class:`SynthesisClient`: the long-lived HTTP front end (multi-model
  LRU router, cross-request batch coalescing, admission control, chunked
  streaming of large exports) and its stdlib client library.

CLI surface: ``python -m repro train --register NAME``, ``python -m repro
serve-registry``, ``python -m repro synth --model-name NAME -n 1000000
--workers 4 --out rows.csv``, ``python -m repro serve --port 8000``.  See
``docs/architecture.md`` for the dataflow.
"""

from repro.serve.registry import (
    CorruptArtifactError,
    ModelRegistry,
    RegistryError,
    split_ref,
)
from repro.serve.server import (
    CircuitOpenError,
    ClientError,
    CoalescingBatcher,
    ModelRouter,
    ProtocolError,
    QueueSaturated,
    ServerError,
    SynthesisClient,
    SynthesisServer,
)
from repro.serve.service import ServiceStats, SynthesisService
from repro.serve.sharding import Shard, ShardedSampler, plan_shards
from repro.serve.sinks import CsvSink, NpzSink, read_npz_chunks

__all__ = [
    "ModelRegistry",
    "RegistryError",
    "CorruptArtifactError",
    "split_ref",
    "SynthesisService",
    "ServiceStats",
    "SynthesisServer",
    "SynthesisClient",
    "ServerError",
    "ClientError",
    "ProtocolError",
    "CircuitOpenError",
    "CoalescingBatcher",
    "QueueSaturated",
    "ModelRouter",
    "ShardedSampler",
    "Shard",
    "plan_shards",
    "CsvSink",
    "NpzSink",
    "read_npz_chunks",
]
