"""Random forest classifier: bagged CART trees with feature sub-sampling."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import check_array, check_fitted


class RandomForestClassifier(Estimator):
    """Bagging ensemble of :class:`DecisionTreeClassifier`.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Per-tree growth limits.
    max_features:
        Features considered per split (default ``"sqrt"``, the standard
        forest heuristic).
    bootstrap:
        Sample rows with replacement per tree when True.
    seed:
        Seed for bootstrapping and per-tree feature sub-sampling.
    """

    def __init__(self, n_estimators=20, max_depth=None, min_samples_split=2,
                 min_samples_leaf=1, max_features="sqrt", bootstrap=True, seed=None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap replicates of (X, y)."""
        if self.n_estimators <= 0:
            raise ValueError(f"n_estimators must be positive, got {self.n_estimators}")
        X = check_array(X, "X", ndim=2)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        rng = ensure_rng(self.seed)
        tree_rngs = spawn_rng(rng, self.n_estimators)
        self.classes_ = np.unique(y)
        self.trees_ = []
        n = X.shape[0]
        for tree_rng in tree_rngs:
            if self.bootstrap:
                idx = tree_rng.integers(0, n, size=n)
                Xb, yb = X[idx], y[idx]
                if np.unique(yb).size < 2 and self.classes_.size >= 2:
                    # Re-inject one example of a missing class so the tree
                    # can still discriminate (tiny-sample edge case).
                    missing = np.setdiff1d(self.classes_, np.unique(yb))[0]
                    donor = int(np.flatnonzero(y == missing)[0])
                    Xb, yb = np.vstack([Xb, X[donor]]), np.append(yb, missing)
            else:
                Xb, yb = X, y
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=tree_rng,
            )
            self.trees_.append(tree.fit(Xb, yb))
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Average of per-tree class probabilities, aligned to ``classes_``."""
        check_fitted(self, "trees_")
        X = check_array(X, "X", ndim=2)
        total = np.zeros((X.shape[0], self.classes_.size))
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            cols = np.searchsorted(self.classes_, tree.classes_)
            total[:, cols] += proba
        return total / len(self.trees_)

    def predict(self, X) -> np.ndarray:
        """Majority-probability class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
