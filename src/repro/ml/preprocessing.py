"""Feature preprocessing: label encoding and scalers.

The paper label-encodes generalized QID strings before feeding
anonymized tables to scikit-learn (§5.2.2 footnote 6); ``LabelEncoder``
reproduces that, and the scalers serve the distance-based privacy metrics
(DCR computes distances "after attribute-wise normalization").
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator
from repro.utils.validation import check_fitted


class LabelEncoder(Estimator):
    """Map arbitrary hashable values to integer codes 0..K-1."""

    def __init__(self):
        pass

    def fit(self, values) -> "LabelEncoder":
        """Learn the sorted vocabulary of ``values``."""
        self.classes_ = sorted(set(values), key=str)
        self._index_ = {v: i for i, v in enumerate(self.classes_)}
        return self

    def transform(self, values) -> np.ndarray:
        """Encode values; unseen values raise ``KeyError``."""
        check_fitted(self, "classes_")
        try:
            return np.array([self._index_[v] for v in values], dtype=np.float64)
        except KeyError as exc:
            raise KeyError(f"unseen value {exc.args[0]!r} in transform") from None

    def fit_transform(self, values) -> np.ndarray:
        """Fit then encode in one call."""
        return self.fit(values).transform(values)

    def inverse_transform(self, codes) -> list:
        """Map codes back to original values."""
        check_fitted(self, "classes_")
        return [self.classes_[int(c)] for c in codes]


class StandardScaler(Estimator):
    """Column-wise z-scoring with frozen training statistics."""

    def __init__(self):
        pass

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        self.std_ = X.std(axis=0)
        self.std_[self.std_ == 0] = 1.0
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "mean_")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_fitted(self, "mean_")
        return np.asarray(X, dtype=np.float64) * self.std_ + self.mean_


class MinMaxScaler(Estimator):
    """Column-wise scaling onto [0, 1] with frozen training min/max.

    This is the normalization under which all DCR distances (Table 5) are
    computed, so that "each attribute contributes to the distance equally".
    """

    def __init__(self):
        pass

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0] = 1.0
        self.span_ = span
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "min_")
        return (np.asarray(X, dtype=np.float64) - self.min_) / self.span_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
