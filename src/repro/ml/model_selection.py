"""Cross-validation and grid search.

The membership attack (§5.3.2) tunes each attack model "through the grid
search with 10-fold cross validation"; :class:`GridSearchCV` reproduces
that protocol for any :class:`~repro.ml.base.Estimator`.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.ml.base import Estimator, clone
from repro.ml.metrics import accuracy
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class KFold:
    """K-fold cross-validation splitter.

    Parameters
    ----------
    n_splits:
        Number of folds.
    shuffle, seed:
        Shuffle rows before folding.
    """

    def __init__(self, n_splits=5, shuffle=True, seed=None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be at least 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int):
        """Yield ``(train_idx, test_idx)`` pairs over ``n_samples`` rows."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot make {self.n_splits} folds from {n_samples} samples"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            ensure_rng(self.seed).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


def param_grid_iter(grid: dict):
    """Iterate dicts over the cartesian product of a parameter grid."""
    if not grid:
        yield {}
        return
    keys = sorted(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, combo))


class GridSearchCV(Estimator):
    """Exhaustive parameter search with k-fold cross-validation.

    Parameters
    ----------
    estimator:
        Prototype estimator; cloned per configuration per fold.
    param_grid:
        Mapping of parameter name to candidate values.
    cv:
        Number of folds (the paper uses 10 for attack models).
    scorer:
        ``scorer(y_true, y_pred) -> float`` to maximize; defaults to accuracy.
    seed:
        Seed for fold shuffling.
    """

    def __init__(self, estimator, param_grid, cv=5, scorer=None, seed=None):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scorer = scorer
        self.seed = seed

    def fit(self, X, y) -> "GridSearchCV":
        """Evaluate every configuration; refit the best on all data."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        scorer = self.scorer or accuracy
        folds = KFold(n_splits=self.cv, shuffle=True, seed=self.seed)
        splits = list(folds.split(X.shape[0]))

        self.results_: list[dict] = []
        best_score, best_params = -np.inf, None
        for params in param_grid_iter(self.param_grid):
            scores = []
            for train_idx, test_idx in splits:
                model = clone(self.estimator).set_params(**params)
                model.fit(X[train_idx], y[train_idx])
                scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
            mean_score = float(np.mean(scores))
            self.results_.append({"params": dict(params), "mean_score": mean_score})
            if mean_score > best_score:
                best_score, best_params = mean_score, dict(params)

        self.best_score_ = best_score
        self.best_params_ = best_params
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict with the refitted best estimator."""
        check_fitted(self, "best_estimator_")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X) -> np.ndarray:
        """Probabilities from the refitted best estimator."""
        check_fitted(self, "best_estimator_")
        return self.best_estimator_.predict_proba(X)
