"""CART decision trees (classifier and regressor).

A vectorized CART implementation: at each node, candidate thresholds for
every (sub-sampled) feature are scored with cumulative-sum statistics in
O(n log n) per feature, which keeps pure-Python tree building fast enough
for the paper's 40-configuration model-compatibility sweeps and for the
random-forest / AdaBoost ensembles built on top.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array, check_fitted


class _Node:
    """A tree node; leaves store a prediction value, splits store children."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value):
        self.feature: int | None = None
        self.threshold: float = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.value = value

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_classification(x_col, y, sample_weight, n_classes):
    """Best (threshold, weighted-gini) split of one feature column.

    Returns ``(gain, threshold)`` or ``None`` when no split helps.  Gini
    impurities are computed from class-weight prefix sums over the sorted
    column so all thresholds are scored in one vectorized pass.
    """
    order = np.argsort(x_col, kind="mergesort")
    xs = x_col[order]
    w = sample_weight[order]
    onehot = np.zeros((xs.size, n_classes))
    onehot[np.arange(xs.size), y[order].astype(int)] = 1.0
    wc = onehot * w[:, None]

    left_class = np.cumsum(wc, axis=0)[:-1]
    total_class = left_class[-1] + wc[-1]
    left_total = np.cumsum(w)[:-1]
    grand_total = left_total[-1] + w[-1]
    right_class = total_class[None, :] - left_class
    right_total = grand_total - left_total

    valid = xs[1:] != xs[:-1]
    if not valid.any():
        return None
    with np.errstate(divide="ignore", invalid="ignore"):
        gini_left = 1.0 - np.sum((left_class / left_total[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right_class / right_total[:, None]) ** 2, axis=1)
    parent_gini = 1.0 - np.sum((total_class / grand_total) ** 2)
    weighted = (left_total * gini_left + right_total * gini_right) / grand_total
    weighted = np.where(valid, weighted, np.inf)
    best = int(np.argmin(weighted))
    gain = parent_gini - weighted[best]
    if not np.isfinite(weighted[best]) or gain <= 1e-12:
        return None
    threshold = 0.5 * (xs[best] + xs[best + 1])
    return float(gain), float(threshold)


def _best_split_regression(x_col, y, sample_weight):
    """Best (threshold, variance-reduction) split of one feature column."""
    order = np.argsort(x_col, kind="mergesort")
    xs = x_col[order]
    ys = y[order]
    w = sample_weight[order]

    wy = w * ys
    wy2 = w * ys * ys
    left_w = np.cumsum(w)[:-1]
    left_wy = np.cumsum(wy)[:-1]
    left_wy2 = np.cumsum(wy2)[:-1]
    total_w = left_w[-1] + w[-1]
    total_wy = left_wy[-1] + wy[-1]
    total_wy2 = left_wy2[-1] + wy2[-1]
    right_w = total_w - left_w
    right_wy = total_wy - left_wy
    right_wy2 = total_wy2 - left_wy2

    valid = xs[1:] != xs[:-1]
    if not valid.any():
        return None
    with np.errstate(divide="ignore", invalid="ignore"):
        sse_left = left_wy2 - left_wy**2 / left_w
        sse_right = right_wy2 - right_wy**2 / right_w
    parent_sse = total_wy2 - total_wy**2 / total_w
    child_sse = np.where(valid, sse_left + sse_right, np.inf)
    best = int(np.argmin(child_sse))
    gain = parent_sse - child_sse[best]
    if not np.isfinite(child_sse[best]) or gain <= 1e-12:
        return None
    threshold = 0.5 * (xs[best] + xs[best + 1])
    return float(gain), float(threshold)


class _BaseTree(Estimator):
    """Shared recursive construction for the two tree flavours."""

    def __init__(self, max_depth=None, min_samples_split=2, min_samples_leaf=1,
                 max_features=None, seed=None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed

    # Subclass hooks -------------------------------------------------------
    def _leaf_value(self, y, w):
        raise NotImplementedError

    def _is_pure(self, y) -> bool:
        raise NotImplementedError

    def _split(self, x_col, y, w):
        raise NotImplementedError

    # Construction ---------------------------------------------------------
    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return max(1, min(int(self.max_features), n_features))

    def _build(self, X, y, w, depth, rng) -> _Node:
        node = _Node(self._leaf_value(y, w))
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.size < self.min_samples_split
            or self._is_pure(y)
        ):
            return node

        n_features = X.shape[1]
        k = self._n_candidate_features(n_features)
        features = rng.choice(n_features, size=k, replace=False) if k < n_features \
            else np.arange(n_features)

        best_gain, best_feature, best_threshold = 0.0, None, 0.0
        for f in features:
            result = self._split(X[:, f], y, w)
            if result is not None and result[0] > best_gain:
                best_gain, best_feature, best_threshold = result[0], int(f), result[1]

        if best_feature is None:
            return node
        mask = X[:, best_feature] <= best_threshold
        n_left = int(mask.sum())
        if n_left < self.min_samples_leaf or (y.size - n_left) < self.min_samples_leaf:
            return node
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1, rng)
        return node

    def _fit_common(self, X, y, sample_weight):
        X = check_array(X, "X", ndim=2)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if sample_weight is None:
            sample_weight = np.ones(y.size)
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64).ravel()
            if sample_weight.size != y.size:
                raise ValueError("sample_weight length mismatch")
        return X, y, sample_weight

    def _predict_node(self, X: np.ndarray) -> list:
        """The leaf reached by each row."""
        out = []
        for row in X:
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out.append(node)
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        check_fitted(self, "root_")

        def _depth(node):
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root_)


class DecisionTreeClassifier(_BaseTree):
    """CART classifier with gini impurity.

    Parameters mirror scikit-learn: ``max_depth``, ``min_samples_split``,
    ``min_samples_leaf``, ``max_features`` (``None``, ``"sqrt"`` or an int),
    and ``seed`` for feature sub-sampling.
    """

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X, y, w = self._fit_common(X, y, sample_weight)
        self.classes_ = np.unique(y)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}
        encoded = np.array([self._class_index[v] for v in y], dtype=np.float64)
        rng = ensure_rng(self.seed)
        self.root_ = self._build(X, encoded, w, 0, rng)
        return self

    def _leaf_value(self, y, w):
        counts = np.bincount(y.astype(int), weights=w, minlength=len(self.classes_))
        total = counts.sum()
        return counts / total if total > 0 else np.ones_like(counts) / counts.size

    def _is_pure(self, y) -> bool:
        return np.unique(y).size <= 1

    def _split(self, x_col, y, w):
        return _best_split_classification(x_col, y, w, len(self.classes_))

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability estimates from leaf class frequencies."""
        check_fitted(self, "root_")
        X = check_array(X, "X", ndim=2)
        return np.array([node.value for node in self._predict_node(X)])

    def predict(self, X) -> np.ndarray:
        """Most probable class per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class DecisionTreeRegressor(_BaseTree):
    """CART regressor minimizing weighted squared error."""

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        X, y, w = self._fit_common(X, y, sample_weight)
        rng = ensure_rng(self.seed)
        self.root_ = self._build(X, y, w, 0, rng)
        return self

    def _leaf_value(self, y, w):
        total = w.sum()
        return float(np.sum(w * y) / total) if total > 0 else float(y.mean())

    def _is_pure(self, y) -> bool:
        return float(y.max() - y.min()) < 1e-12

    def _split(self, x_col, y, w):
        return _best_split_regression(x_col, y, w)

    def predict(self, X) -> np.ndarray:
        """Leaf mean per row."""
        check_fitted(self, "root_")
        X = check_array(X, "X", ndim=2)
        return np.array([node.value for node in self._predict_node(X)])
