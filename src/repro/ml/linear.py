"""Linear regression family for the paper's regression compatibility tests.

Figure 6 sweeps four regressors: ordinary linear regression, Lasso,
passive-aggressive regression, and Huber regression.  All four standardize
features internally and solve in the standardized space, then predictions
are mapped back — this mirrors how the paper's scikit-learn pipelines
behave on tables whose columns span wildly different scales.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array, check_fitted


class _StandardizedLinear(Estimator):
    """Shared standardize-fit-predict plumbing for the linear models."""

    def _prepare(self, X, y):
        X = check_array(X, "X", ndim=2)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        self.x_mean_ = X.mean(axis=0)
        self.x_std_ = X.std(axis=0)
        self.x_std_[self.x_std_ == 0] = 1.0
        self.y_mean_ = float(y.mean())
        self.y_std_ = float(y.std()) or 1.0
        Xs = (X - self.x_mean_) / self.x_std_
        ys = (y - self.y_mean_) / self.y_std_
        return Xs, ys

    def predict(self, X) -> np.ndarray:
        """Predicted targets in the original scale."""
        check_fitted(self, "coef_")
        X = check_array(X, "X", ndim=2)
        Xs = (X - self.x_mean_) / self.x_std_
        ys = Xs @ self.coef_ + self.intercept_
        return ys * self.y_std_ + self.y_mean_


class LinearRegression(_StandardizedLinear):
    """Ordinary least squares via the pseudo-inverse (ridge-free, exact)."""

    def __init__(self):
        pass

    def fit(self, X, y) -> "LinearRegression":
        Xs, ys = self._prepare(X, y)
        design = np.column_stack([Xs, np.ones(Xs.shape[0])])
        solution, *_ = np.linalg.lstsq(design, ys, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self


class Lasso(_StandardizedLinear):
    """L1-penalized least squares solved by cyclic coordinate descent.

    Parameters
    ----------
    alpha:
        L1 penalty strength (in standardized space).
    max_iter, tol:
        Coordinate-descent schedule.
    """

    def __init__(self, alpha=0.1, max_iter=300, tol=1e-6):
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X, y) -> "Lasso":
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        Xs, ys = self._prepare(X, y)
        n, p = Xs.shape
        coef = np.zeros(p)
        col_sq = (Xs**2).sum(axis=0)
        col_sq[col_sq == 0] = 1.0
        residual = ys.copy()
        threshold = self.alpha * n
        for _ in range(self.max_iter):
            max_delta = 0.0
            for j in range(p):
                old = coef[j]
                rho = Xs[:, j] @ residual + old * col_sq[j]
                new = np.sign(rho) * max(abs(rho) - threshold, 0.0) / col_sq[j]
                if new != old:
                    residual += Xs[:, j] * (old - new)
                    coef[j] = new
                    max_delta = max(max_delta, abs(new - old))
            if max_delta < self.tol:
                break
        self.coef_ = coef
        self.intercept_ = float(residual.mean())
        return self


class PassiveAggressiveRegressor(_StandardizedLinear):
    """Online passive-aggressive regression (PA-I with epsilon tube).

    Each sample whose absolute error exceeds ``epsilon`` triggers an
    aggressive update clipped at ``C`` (Crammer et al., 2006).
    """

    def __init__(self, C=1.0, epsilon=0.1, epochs=10, shuffle=True, seed=None):
        self.C = C
        self.epsilon = epsilon
        self.epochs = epochs
        self.shuffle = shuffle
        self.seed = seed

    def fit(self, X, y) -> "PassiveAggressiveRegressor":
        if self.C <= 0:
            raise ValueError(f"C must be positive, got {self.C}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        Xs, ys = self._prepare(X, y)
        rng = ensure_rng(self.seed)
        n, p = Xs.shape
        coef = np.zeros(p)
        intercept = 0.0
        for _ in range(self.epochs):
            order = rng.permutation(n) if self.shuffle else np.arange(n)
            for i in order:
                pred = Xs[i] @ coef + intercept
                error = ys[i] - pred
                loss = abs(error) - self.epsilon
                if loss <= 0:
                    continue
                norm_sq = Xs[i] @ Xs[i] + 1.0
                tau = min(self.C, loss / norm_sq)
                update = tau * np.sign(error)
                coef += update * Xs[i]
                intercept += update
        self.coef_ = coef
        self.intercept_ = float(intercept)
        return self


class HuberRegressor(_StandardizedLinear):
    """Huber-loss regression via iteratively reweighted least squares.

    Quadratic within ``delta`` of the fit, linear outside — robust to the
    heavy-tailed pay/fare columns of the evaluation datasets.
    """

    def __init__(self, delta=1.35, max_iter=50, tol=1e-6):
        self.delta = delta
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X, y) -> "HuberRegressor":
        if self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")
        Xs, ys = self._prepare(X, y)
        design = np.column_stack([Xs, np.ones(Xs.shape[0])])
        solution, *_ = np.linalg.lstsq(design, ys, rcond=None)
        for _ in range(self.max_iter):
            residual = ys - design @ solution
            abs_res = np.maximum(np.abs(residual), 1e-12)
            weights = np.where(abs_res <= self.delta, 1.0, self.delta / abs_res)
            weighted_design = design * weights[:, None]
            gram = weighted_design.T @ design
            rhs = weighted_design.T @ ys
            new_solution = np.linalg.solve(gram + 1e-10 * np.eye(gram.shape[0]), rhs)
            if np.max(np.abs(new_solution - solution)) < self.tol:
                solution = new_solution
                break
            solution = new_solution
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self
