"""Estimator base class with scikit-learn-style parameter introspection.

Estimators follow three conventions the rest of the library relies on:

* constructor arguments are stored verbatim on attributes of the same name
  (so :func:`clone` can rebuild an unfitted copy),
* fitting sets trailing-underscore attributes,
* ``fit`` returns ``self``.
"""

from __future__ import annotations

import inspect


class Estimator:
    """Base class providing ``get_params`` / ``set_params`` / ``clone``."""

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name for name, p in signature.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]

    def get_params(self) -> dict:
        """Constructor parameters and their current values."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "Estimator":
        """Set constructor parameters in place; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self


def clone(estimator: Estimator) -> Estimator:
    """Build an unfitted copy of ``estimator`` with identical parameters."""
    return type(estimator)(**estimator.get_params())
