"""Machine-learning substrate: the scikit-learn substitute.

Implements every model family the paper's evaluation requires — the four
classifiers and four regressors of the model-compatibility sweeps
(Figures 5/6), the five attack-model families of the membership attack
(Table 6), grid search with k-fold CV, and the metrics (F-1, ROC AUC, MRE).
"""

from repro.ml.base import Estimator, clone
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import (
    HuberRegressor,
    Lasso,
    LinearRegression,
    PassiveAggressiveRegressor,
)
from repro.ml.metrics import (
    accuracy,
    confusion_counts,
    f1_score,
    mean_relative_error,
    mean_squared_error,
    precision,
    r2_score,
    recall,
    roc_auc,
)
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import GridSearchCV, KFold, param_grid_iter
from repro.ml.preprocessing import LabelEncoder, MinMaxScaler, StandardScaler
from repro.ml.svm import LinearSVC
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "Estimator",
    "clone",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "MLPClassifier",
    "LinearSVC",
    "LinearRegression",
    "Lasso",
    "PassiveAggressiveRegressor",
    "HuberRegressor",
    "GridSearchCV",
    "KFold",
    "param_grid_iter",
    "LabelEncoder",
    "StandardScaler",
    "MinMaxScaler",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "roc_auc",
    "confusion_counts",
    "mean_relative_error",
    "mean_squared_error",
    "r2_score",
]
