"""Evaluation metrics used throughout the paper's experiments.

* F-1 score — the classification model-compatibility metric (Figure 5) and
  the membership-attack success metric (Table 6);
* ROC AUC — the second membership-attack metric;
* mean relative error (MRE) — the regression model-compatibility metric
  (Figure 6).
"""

from __future__ import annotations

import numpy as np


def _validate_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metric inputs must be non-empty")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_counts(y_true, y_pred, positive: float = 1.0) -> tuple[int, int, int, int]:
    """(TP, FP, FN, TN) counts for the given positive class."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    pos_true = y_true == positive
    pos_pred = y_pred == positive
    tp = int(np.sum(pos_true & pos_pred))
    fp = int(np.sum(~pos_true & pos_pred))
    fn = int(np.sum(pos_true & ~pos_pred))
    tn = int(np.sum(~pos_true & ~pos_pred))
    return tp, fp, fn, tn


def precision(y_true, y_pred, positive: float = 1.0) -> float:
    """TP / (TP + FP); 0 when nothing is predicted positive."""
    tp, fp, _, _ = confusion_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if (tp + fp) > 0 else 0.0


def recall(y_true, y_pred, positive: float = 1.0) -> float:
    """TP / (TP + FN); 0 when there are no positives."""
    tp, _, fn, _ = confusion_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if (tp + fn) > 0 else 0.0


def f1_score(y_true, y_pred, positive: float = 1.0) -> float:
    """Harmonic mean of precision and recall (the paper's classification metric)."""
    p = precision(y_true, y_pred, positive)
    r = recall(y_true, y_pred, positive)
    return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0


def roc_auc(y_true, scores) -> float:
    """Area under the ROC curve from continuous scores.

    Computed via the rank statistic (equivalent to the Mann–Whitney U),
    with proper tie handling.  Returns 0.5 when one class is absent, which
    is the convention that keeps membership-attack summaries well-defined
    on degenerate splits.
    """
    y_true, scores = _validate_pair(y_true, scores)
    pos = y_true == 1.0
    n_pos = int(pos.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over ties.
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[pos].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def mean_relative_error(y_true, y_pred, eps: float = 1e-12) -> float:
    """MRE = mean(|y - ŷ| / |y|), the paper's regression metric (Figure 6).

    ``eps`` guards against division by exact zeros in the target.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def mean_squared_error(y_true, y_pred) -> float:
    """Plain MSE."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 0 for a constant-target degenerate case."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0
    return 1.0 - ss_res / ss_tot
