"""Linear support vector classifier trained with Pegasos SGD.

One of the five attack-model families the paper uses for the membership
attack (§5.3.2).  Binary hinge-loss linear SVM with L2 regularization.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array, check_fitted


class LinearSVC(Estimator):
    """Binary linear SVM (hinge loss, L2 penalty) via Pegasos.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger = less regularization);
        mapped to Pegasos' lambda as ``1 / (C * n_samples)``.
    epochs:
        Passes over the shuffled data.
    seed:
        Seed for shuffling.
    """

    def __init__(self, C=1.0, epochs=20, seed=None):
        self.C = C
        self.epochs = epochs
        self.seed = seed

    def fit(self, X, y) -> "LinearSVC":
        """Train on (X, y); y may be any two distinct values."""
        if self.C <= 0:
            raise ValueError(f"C must be positive, got {self.C}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        X = check_array(X, "X", ndim=2)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError(f"LinearSVC is binary; got classes {self.classes_}")
        signs = np.where(y == self.classes_[1], 1.0, -1.0)

        self.mean_ = X.mean(axis=0)
        self.std_ = X.std(axis=0)
        self.std_[self.std_ == 0] = 1.0
        Xs = (X - self.mean_) / self.std_

        rng = ensure_rng(self.seed)
        n, p = Xs.shape
        lam = 1.0 / (self.C * n)
        weights = np.zeros(p)
        bias = 0.0
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                margin = signs[i] * (Xs[i] @ weights + bias)
                weights *= 1.0 - eta * lam
                if margin < 1.0:
                    weights += eta * signs[i] * Xs[i]
                    bias += eta * signs[i]
        self.coef_ = weights
        self.intercept_ = float(bias)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed distance to the separating hyperplane."""
        check_fitted(self, "coef_")
        X = check_array(X, "X", ndim=2)
        Xs = (X - self.mean_) / self.std_
        return Xs @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Platt-style squashing of the margin into (n, 2) pseudo-probabilities."""
        scores = self.decision_function(X)
        pos = 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))
        return np.column_stack([1.0 - pos, pos])

    def predict(self, X) -> np.ndarray:
        """Class prediction by margin sign."""
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])
