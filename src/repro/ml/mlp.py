"""Multilayer perceptron classifier built on :mod:`repro.nn`.

One of the four classifiers in the paper's model-compatibility sweep
(Figure 5), and one of the attack-model families for the membership attack
(Table 6).  Binary classification with a logistic output trained by Adam
on mini-batches.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator
from repro.nn import Adam, Dense, ReLU, Sequential, bce_with_logits
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array, check_fitted


class MLPClassifier(Estimator):
    """Feed-forward binary classifier.

    Parameters
    ----------
    hidden_sizes:
        Widths of the hidden layers.
    epochs, batch_size, lr:
        Adam training schedule.
    standardize:
        Z-score inputs using training statistics (recommended; raw tables
        mix scales across columns by orders of magnitude).
    seed:
        Seed for init and shuffling.
    """

    def __init__(self, hidden_sizes=(32, 16), epochs=60, batch_size=64,
                 lr=1e-3, standardize=True, seed=None):
        self.hidden_sizes = tuple(hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.standardize = standardize
        self.seed = seed

    def _build(self, n_features: int, rng) -> Sequential:
        layers = []
        width = n_features
        for hidden in self.hidden_sizes:
            layers.append(Dense(width, hidden, init="he", rng=rng))
            layers.append(ReLU())
            width = hidden
        layers.append(Dense(width, 1, init="glorot", rng=rng))
        return Sequential(layers)

    def fit(self, X, y) -> "MLPClassifier":
        """Train with mini-batch Adam on the logistic loss."""
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        X = check_array(X, "X", ndim=2)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        self.classes_ = np.unique(y)
        if self.classes_.size > 2:
            raise ValueError("MLPClassifier supports binary classification only")
        targets = (y == self.classes_[-1]).astype(np.float64)

        rng = ensure_rng(self.seed)
        if self.standardize:
            self.mean_ = X.mean(axis=0)
            self.std_ = X.std(axis=0)
            self.std_[self.std_ == 0] = 1.0
            X = (X - self.mean_) / self.std_
        else:
            self.mean_, self.std_ = None, None

        self.network_ = self._build(X.shape[1], rng)
        optimizer = Adam(self.network_.parameters(), lr=self.lr, beta1=0.9)
        n = X.shape[0]
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                logits = self.network_.forward(X[idx])
                _, grad = bce_with_logits(logits, targets[idx].reshape(-1, 1))
                self.network_.zero_grad()
                self.network_.backward(grad)
                optimizer.step()
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is not None:
            return (X - self.mean_) / self.std_
        return X

    def decision_function(self, X) -> np.ndarray:
        """Raw logits for the positive class."""
        check_fitted(self, "network_")
        X = check_array(X, "X", ndim=2)
        return self.network_.forward(self._transform(X), training=False).ravel()

    def predict_proba(self, X) -> np.ndarray:
        """(n, 2) class probabilities ordered like ``classes_``."""
        logits = self.decision_function(X)
        pos = 1.0 / (1.0 + np.exp(-np.clip(logits, -500, 500)))
        if self.classes_.size == 1:
            return np.ones((logits.size, 1))
        return np.column_stack([1.0 - pos, pos])

    def predict(self, X) -> np.ndarray:
        """Thresholded class prediction."""
        if self.classes_.size == 1:
            logits = self.decision_function(X)
            return np.full(logits.size, self.classes_[0])
        logits = self.decision_function(X)
        return np.where(logits >= 0.0, self.classes_[-1], self.classes_[0])
