"""AdaBoost classifier (SAMME) over decision-tree weak learners."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array, check_fitted


class AdaBoostClassifier(Estimator):
    """Discrete AdaBoost with the SAMME multi-class weight update.

    Parameters
    ----------
    n_estimators:
        Maximum boosting rounds (stops early on a perfect or useless learner).
    max_depth:
        Depth of each weak tree (1 = decision stumps, the classic choice).
    learning_rate:
        Shrinkage on each learner's vote weight.
    seed:
        Seed for tree feature sub-sampling.
    """

    def __init__(self, n_estimators=50, max_depth=1, learning_rate=1.0, seed=None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.seed = seed

    def fit(self, X, y) -> "AdaBoostClassifier":
        """Run boosting rounds, reweighting misclassified samples."""
        if self.n_estimators <= 0:
            raise ValueError(f"n_estimators must be positive, got {self.n_estimators}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        X = check_array(X, "X", ndim=2)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        rng = ensure_rng(self.seed)
        self.classes_ = np.unique(y)
        n_classes = self.classes_.size
        if n_classes < 2:
            # Degenerate training data (e.g. a degraded synthetic table whose
            # label collapsed to one class): fall back to a constant
            # predictor instead of failing the whole evaluation sweep.
            self.estimators_ = []
            self.estimator_weights_ = []
            return self

        n = X.shape[0]
        weights = np.full(n, 1.0 / n)
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []

        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(max_depth=self.max_depth, seed=rng)
            tree.fit(X, y, sample_weight=weights)
            pred = tree.predict(X)
            miss = pred != y
            error = float(np.sum(weights[miss]))
            if error <= 1e-12:
                # Perfect learner: give it a large, finite vote and stop.
                self.estimators_.append(tree)
                self.estimator_weights_.append(10.0)
                break
            if error >= 1.0 - 1.0 / n_classes:
                # No better than chance; boosting cannot proceed.
                if not self.estimators_:
                    self.estimators_.append(tree)
                    self.estimator_weights_.append(1.0)
                break
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            self.estimators_.append(tree)
            self.estimator_weights_.append(float(alpha))
            weights = weights * np.exp(alpha * miss)
            weights /= weights.sum()
        return self

    def decision_scores(self, X) -> np.ndarray:
        """Weighted vote totals per class, shape (n, n_classes)."""
        check_fitted(self, "classes_")
        X = check_array(X, "X", ndim=2)
        scores = np.zeros((X.shape[0], self.classes_.size))
        if not self.estimators_:
            # Constant predictor (single-class training data).
            scores[:, 0] = 1.0
            return scores
        for tree, alpha in zip(self.estimators_, self.estimator_weights_):
            pred = tree.predict(X)
            cols = np.searchsorted(self.classes_, pred)
            scores[np.arange(X.shape[0]), cols] += alpha
        return scores

    def predict_proba(self, X) -> np.ndarray:
        """Vote shares (normalized decision scores)."""
        scores = self.decision_scores(X)
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0] = 1.0
        return scores / total

    def predict(self, X) -> np.ndarray:
        """Class with the highest weighted vote."""
        scores = self.decision_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]
