"""Shared utilities: seeded RNG, argument validation, and fault injection."""

from repro.utils.faults import FaultError, FaultPlan, fault_bytes, fault_point, inject
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import (
    check_array,
    check_fitted,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "check_array",
    "check_fitted",
    "check_positive",
    "check_probability",
    "FaultError",
    "FaultPlan",
    "fault_bytes",
    "fault_point",
    "inject",
]
