"""Shared utilities: seeded random number generation and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import (
    check_array,
    check_fitted,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "check_array",
    "check_fitted",
    "check_positive",
    "check_probability",
]
