"""Shared argument-validation helpers.

Centralizing the checks keeps error messages consistent across the library
and keeps the numerical code free of boilerplate.
"""

from __future__ import annotations

import numpy as np


def check_array(x, name: str = "array", ndim: int | None = None, dtype=np.float64) -> np.ndarray:
    """Convert ``x`` to a contiguous ndarray and validate its rank.

    Parameters
    ----------
    x:
        Array-like input.
    name:
        Argument name used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to accept any rank.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    """
    arr = np.asarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    return np.ascontiguousarray(arr)


def check_fitted(obj, attribute: str) -> None:
    """Raise ``RuntimeError`` unless ``obj`` has a non-None ``attribute``.

    Mirrors scikit-learn's ``check_is_fitted`` convention: estimators set a
    trailing-underscore attribute in ``fit`` and predict-time methods call
    this first.
    """
    if getattr(obj, attribute, None) is None:
        raise RuntimeError(
            f"{type(obj).__name__} is not fitted yet; call fit() before using this method"
        )


def check_positive(value, name: str, strict: bool = True) -> None:
    """Validate that a scalar is positive (``strict``) or non-negative."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_probability(value, name: str) -> None:
    """Validate that a scalar lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
