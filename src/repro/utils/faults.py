"""Deterministic, seeded fault injection for the serving and training stack.

Fault tolerance that is not *tested by injecting the faults* is a comment,
not a property.  This module provides the injection layer the chaos suite
drives: production code marks its failure-prone seams with **named
injection points**, and a test arms a :class:`FaultPlan` that makes the
Nth traversal of a point raise, delay, truncate, or corrupt — always
deterministically, so a chaos test replays bit-for-bit.

Injection points in the stack (one name per seam)::

    registry.read       verifying/deserializing a persisted artifact
    registry.commit     between the two renames of a re-registration swap
    batcher.tick        the batcher worker starting one drain tick
    service.generate    a synthesis-service generator replenishment
    sink.write          one chunk written to a streaming export sink
    socket.send         one payload written to (or read from) an HTTP socket
    parallel.reduce     publishing/reducing one shard gradient buffer in
                        the data-parallel trainer's all-reduce
    pool.block          a serving worker process starting one pool-block
                        generation (the seam chaos tests kill workers at;
                        armed plans propagate into forked workers)
    quality.tap         one quality-sketch update on the decode path (the
                        seam chaos tests crash to prove a broken sketch
                        never blocks or corrupts the sample stream)

Production call sites use two entry points:

* :func:`fault_point` — control-flow seams; may raise or delay;
* :func:`fault_bytes` — payload seams; returns the (possibly truncated or
  corrupted) bytes, and may also raise or delay.

**Zero overhead when disarmed** is a hard requirement: both functions
reduce to one module-global load and an ``is None`` test when no plan is
installed, and the engine benchmark's ``resilience`` section records the
disarmed cost so a regression is measurable, not asserted.

Usage::

    plan = FaultPlan(seed=7)
    plan.arm("batcher.tick", "raise", after=2)        # 3rd tick crashes
    plan.arm("socket.send", "truncate", fraction=0.5)
    with plan:
        ...exercise the system...
    assert plan.fired("batcher.tick") == 1
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import numpy as np

#: Every injection point compiled into the stack.  ``FaultPlan.arm``
#: validates against this set so a typo'd point name fails the test
#: loudly instead of silently never firing.
POINTS = frozenset({
    "registry.read",
    "registry.commit",
    "batcher.tick",
    "service.generate",
    "sink.write",
    "socket.send",
    "parallel.reduce",
    "pool.block",
    "quality.tap",
})

ACTIONS = frozenset({"raise", "delay", "truncate", "corrupt"})

#: The installed plan; ``None`` (the steady state) makes every injection
#: point a no-op costing one global load and an identity test.
_PLAN: "FaultPlan | None" = None


class FaultError(RuntimeError):
    """The default exception an armed ``raise`` action throws."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class _Rule:
    """One armed behaviour: fire ``times`` times after ``after`` free hits."""

    __slots__ = ("action", "after", "times", "exc", "delay_s", "fraction",
                 "hits", "fired")

    def __init__(self, action: str, after: int, times: int, exc, delay_s: float,
                 fraction: float):
        self.action = action
        self.after = after
        self.times = times
        self.exc = exc
        self.delay_s = delay_s
        self.fraction = fraction
        self.hits = 0
        self.fired = 0

    def due(self) -> bool:
        return (self.hits > self.after
                and (self.times is None or self.fired < self.times))


class FaultPlan:
    """A seeded, deterministic set of armed injection rules.

    Parameters
    ----------
    seed:
        Seeds the corruption stream: which byte a ``corrupt`` action flips
        is a pure function of ``(seed, firing index)``, so a failing chaos
        test replays exactly.

    A plan is also a context manager: ``with plan: ...`` installs it for
    the block (see :func:`inject`).  Arming is chainable::

        FaultPlan().arm("service.generate", "raise", times=2)
    """

    def __init__(self, seed: int = 0):
        self._rules: dict[str, _Rule] = {}
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def arm(self, point: str, action: str = "raise", *, after: int = 0,
            times: int | None = 1, exc: BaseException | None = None,
            delay_s: float = 0.0, fraction: float = 0.5) -> "FaultPlan":
        """Arm ``point`` to perform ``action`` on its next traversals.

        Parameters
        ----------
        point:
            One of :data:`POINTS`.
        action:
            ``"raise"`` throws ``exc`` (default :class:`FaultError`);
            ``"delay"`` sleeps ``delay_s`` then continues; ``"truncate"``
            cuts a payload to ``fraction`` of its length; ``"corrupt"``
            flips one deterministic byte of a payload.  Truncate/corrupt
            apply only at :func:`fault_bytes` sites (payload seams) and
            pass control seams through untouched.
        after:
            Free traversals before the first firing (``after=2`` arms the
            3rd hit).
        times:
            Firings before the rule disarms itself; ``None`` fires forever.
        """
        if point not in POINTS:
            raise ValueError(
                f"unknown injection point {point!r}; compiled points: "
                + ", ".join(sorted(POINTS))
            )
        if action not in ACTIONS:
            raise ValueError(
                f"unknown action {action!r}; one of: " + ", ".join(sorted(ACTIONS))
            )
        if after < 0:
            raise ValueError(f"after must be non-negative, got {after}")
        if times is not None and times < 1:
            raise ValueError(f"times must be positive or None, got {times}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self._rules[point] = _Rule(action, after, times, exc, delay_s, fraction)
        return self

    # ------------------------------------------------------------------
    # Introspection (what actually happened).
    # ------------------------------------------------------------------
    def hits(self, point: str) -> int:
        """Traversals of ``point`` observed while this plan was installed."""
        rule = self._rules.get(point)
        return rule.hits if rule is not None else 0

    def fired(self, point: str) -> int:
        """Times the armed action at ``point`` actually triggered."""
        rule = self._rules.get(point)
        return rule.fired if rule is not None else 0

    # ------------------------------------------------------------------
    # Firing (called from the injection entry points below).
    # ------------------------------------------------------------------
    def _strike(self, point: str) -> tuple[_Rule, int] | None:
        """Count a traversal; return ``(rule, firing_index)`` if it fires."""
        rule = self._rules.get(point)
        if rule is None:
            return None
        with self._lock:
            rule.hits += 1
            if not rule.due():
                return None
            rule.fired += 1
            return rule, rule.fired - 1

    def _control(self, point: str) -> None:
        struck = self._strike(point)
        if struck is None:
            return
        rule, _ = struck
        if rule.action == "raise":
            raise rule.exc if rule.exc is not None else FaultError(point)
        if rule.action == "delay":
            time.sleep(rule.delay_s)
        # truncate/corrupt are payload actions; at a control seam they
        # deliberately pass through (nothing to transform).

    def _payload(self, point: str, data: bytes) -> bytes:
        struck = self._strike(point)
        if struck is None:
            return data
        rule, _ = struck
        if rule.action == "raise":
            raise rule.exc if rule.exc is not None else FaultError(point)
        if rule.action == "delay":
            time.sleep(rule.delay_s)
            return data
        if rule.action == "truncate":
            return data[: int(len(data) * rule.fraction)]
        # corrupt: flip one deterministic byte (seeded stream, so the
        # corrupted output is a pure function of plan seed + firing order).
        if not data:
            return data
        with self._lock:
            index = int(self._rng.integers(0, len(data)))
        corrupted = bytearray(data)
        corrupted[index] ^= 0xFF
        return bytes(corrupted)

    # ------------------------------------------------------------------
    # Installation.
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultPlan":
        self._cm = inject(self)
        self._cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        cm, self._cm = self._cm, None
        cm.__exit__(exc_type, exc, tb)
        return False


@contextmanager
def inject(plan: FaultPlan):
    """Install ``plan`` for the duration of the block (re-entrant safe)."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def fault_point(point: str) -> None:
    """Traverse a control-flow injection seam.

    No-op (one global load + ``is None`` test) unless a plan armed this
    point, in which case the armed action runs — typically raising into
    the production error path under test.
    """
    if _PLAN is not None:
        _PLAN._control(point)


def fault_bytes(point: str, data: bytes) -> bytes:
    """Traverse a payload injection seam; returns the bytes to actually use.

    Identical fast path to :func:`fault_point`; when armed, ``truncate``
    and ``corrupt`` transform the payload deterministically while
    ``raise``/``delay`` behave as at control seams.
    """
    if _PLAN is None:
        return data
    return _PLAN._payload(point, data)
