"""Seeded random-number-generator helpers.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream).  These helpers normalize
all three into a ``Generator`` so downstream code never branches on type.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used when a parent process needs to hand deterministic, non-overlapping
    streams to sub-components (e.g. chunked table-GAN training).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
