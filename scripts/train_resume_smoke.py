"""CI smoke test for crash-safe training: SIGTERM, resume, identical weights.

Three real ``python -m repro train`` subprocesses:

1. an **uninterrupted baseline** run that saves its generator;
2. the **same run with checkpointing**, SIGTERM'd mid-training — it must
   checkpoint, print the resume hint, and exit 0 (not die on the signal);
3. a ``--resume`` run that continues from the snapshot and saves its
   generator.

The acceptance check loads both saved generators and compares every
array with ``np.array_equal`` — bit-identical weights, not merely close.
(Comparing the ``.npz`` files byte-for-byte would be wrong: zip archives
embed timestamps; the *arrays* are the contract.)

Every wait is bounded, so a wedged run fails the job instead of hanging
it.  Run from the repository root::

    PYTHONPATH=src python scripts/train_resume_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading

TIMEOUT_S = 180

TRAIN_ARGS = [
    "--dataset", "adult", "--rows", "64", "--seed", "0",
    "--epochs", "12", "--batch-size", "16", "--base-channels", "4",
]


def fail(message: str) -> None:
    print(f"SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def run_train(extra, label):
    command = [sys.executable, "-m", "repro", "train", *TRAIN_ARGS, *extra]
    print(f"[{label}] {' '.join(command)}")
    result = subprocess.run(command, capture_output=True, text=True,
                            timeout=TIMEOUT_S)
    sys.stdout.write(result.stdout)
    if result.returncode != 0:
        sys.stderr.write(result.stderr)
        fail(f"{label} run exited {result.returncode}")
    return result.stdout


def run_train_and_sigterm(extra, label):
    """Start a training run, SIGTERM it after its first epoch completes."""
    command = [sys.executable, "-m", "repro", "train", *TRAIN_ARGS, *extra]
    print(f"[{label}] {' '.join(command)}")
    proc = subprocess.Popen(command, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    lines = []

    def reader():
        for line in proc.stdout:
            print(f"[{label}] {line.rstrip()}")
            lines.append(line)
            # The first per-epoch loss line proves the loop (and the
            # SIGTERM handler) is live, with 11 epochs still to go.
            if line.lstrip().startswith("epoch   1:"):
                proc.send_signal(signal.SIGTERM)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    try:
        code = proc.wait(timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"{label} run did not exit after SIGTERM")
    thread.join(timeout=10)
    output = "".join(lines)
    if code != 0:
        fail(f"{label} run exited {code} on SIGTERM instead of "
             "checkpoint-and-exit")
    if "interrupted: checkpoint saved" not in output:
        fail(f"{label} run exited 0 but never acknowledged the checkpoint")
    if "trained in" in output:
        fail(f"{label} run finished before SIGTERM landed; nothing resumed")
    return output


def compare_generators(baseline_path, resumed_path):
    import numpy as np

    with np.load(baseline_path) as baseline, np.load(resumed_path) as resumed:
        if set(baseline.files) != set(resumed.files):
            fail("saved generators hold different array sets: "
                 f"{sorted(set(baseline.files) ^ set(resumed.files))}")
        for key in baseline.files:
            if not np.array_equal(baseline[key], resumed[key]):
                fail(f"array {key!r} differs between the uninterrupted and "
                     "resumed runs — resume is not bit-exact")
        print(f"all {len(baseline.files)} arrays bit-identical")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        baseline_model = os.path.join(tmp, "baseline.npz")
        resumed_model = os.path.join(tmp, "resumed.npz")
        checkpoint_dir = os.path.join(tmp, "checkpoints")

        run_train(["--model", baseline_model], "baseline")

        run_train_and_sigterm(
            ["--checkpoint-dir", checkpoint_dir, "--checkpoint-every", "1"],
            "interrupted",
        )
        latest = os.path.join(checkpoint_dir, "checkpoint-latest.npz")
        if not os.path.exists(latest):
            fail(f"no checkpoint at {latest} after SIGTERM")

        resume_out = run_train(
            ["--checkpoint-dir", checkpoint_dir, "--resume",
             "--model", resumed_model], "resumed",
        )
        if "trained in" not in resume_out:
            fail("resumed run never reported completion")

        compare_generators(baseline_model, resumed_model)
    print("TRAIN-RESUME SMOKE PASSED")


if __name__ == "__main__":
    main()
