"""CI smoke test for data-parallel training: worker-count invariance.

Three real ``python -m repro train`` subprocesses over the same data and
seed, differing only in ``--workers`` (1, 2, 4).  The contract under test
is the one documented in ``repro.core.parallel``: the trained weights are
a pure function of (data, config, gradient shards, seed) — never of the
worker count.  The acceptance check loads all three saved generators and
compares every array with ``np.array_equal`` — bit-identical weights,
not merely close.

Every wait is bounded, so a wedged worker fails the job instead of
hanging it.  Run from the repository root::

    PYTHONPATH=src python scripts/train_parallel_smoke.py
"""

import os
import subprocess
import sys
import tempfile

TIMEOUT_S = 240

TRAIN_ARGS = [
    "--dataset", "adult", "--rows", "64", "--seed", "0",
    "--epochs", "4", "--batch-size", "16", "--base-channels", "4",
]

WORKER_COUNTS = (1, 2, 4)


def fail(message: str) -> None:
    print(f"SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def run_train(workers, model_path):
    label = f"workers={workers}"
    command = [sys.executable, "-m", "repro", "train", *TRAIN_ARGS,
               "--workers", str(workers), "--model", model_path]
    print(f"[{label}] {' '.join(command)}")
    try:
        result = subprocess.run(command, capture_output=True, text=True,
                                timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        fail(f"{label} run did not finish within {TIMEOUT_S}s")
    sys.stdout.write(result.stdout)
    if result.returncode != 0:
        sys.stderr.write(result.stderr)
        fail(f"{label} run exited {result.returncode}")
    if "trained in" not in result.stdout:
        fail(f"{label} run never reported completion")


def compare_generators(baseline_path, other_path, label):
    import numpy as np

    with np.load(baseline_path) as baseline, np.load(other_path) as other:
        if set(baseline.files) != set(other.files):
            fail("saved generators hold different array sets: "
                 f"{sorted(set(baseline.files) ^ set(other.files))}")
        for key in baseline.files:
            if not np.array_equal(baseline[key], other[key]):
                fail(f"array {key!r} differs between --workers 1 and "
                     f"{label} — training is not worker-count invariant")
        print(f"[{label}] all {len(baseline.files)} arrays bit-identical "
              "with --workers 1")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        models = {n: os.path.join(tmp, f"workers{n}.npz")
                  for n in WORKER_COUNTS}
        for n in WORKER_COUNTS:
            run_train(n, models[n])
        for n in WORKER_COUNTS[1:]:
            compare_generators(models[1], models[n], f"workers={n}")
    print("TRAIN-PARALLEL SMOKE PASSED")


if __name__ == "__main__":
    main()
