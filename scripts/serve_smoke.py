"""CI smoke test for the long-lived synthesis server.

End to end through the real process boundary: train a tiny model,
register it, boot ``python -m repro serve`` as a subprocess on a free
port, hit ``/healthz`` and one ``/sample`` with the client library, then
SIGTERM the server and assert it drains and exits cleanly (code 0).
The same pass then repeats with ``--server-workers 2`` — the
multi-process serving tier must boot, serve, and drain (including its
worker processes and shared-memory segments) just as cleanly.

Every wait is bounded, so a wedged server fails the job instead of
hanging it.  Run from the repository root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

TIMEOUT_S = 120


def fail(message: str) -> None:
    print(f"SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def train_and_register(registry_dir: str) -> None:
    from repro import TableGAN, low_privacy
    from repro.data.datasets import load_dataset
    from repro.serve import ModelRegistry

    bundle = load_dataset("adult", rows=64, seed=0)
    gan = TableGAN(low_privacy(epochs=1, batch_size=16, base_channels=4,
                               seed=0))
    gan.fit(bundle.train)
    ModelRegistry(registry_dir).register("smoke", gan, version="1")
    print("registered tiny model 'smoke@1'")


def read_port(proc: subprocess.Popen) -> int:
    """Parse the bound port from the server's boot line (bounded wait)."""
    result = {}

    def reader():
        for line in proc.stdout:
            print(f"[serve] {line.rstrip()}")
            if " at http://" in line and "port" not in result:
                result["port"] = int(line.rsplit(":", 1)[1])
                return

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout=TIMEOUT_S)
    if "port" not in result:
        fail("server did not print its address in time")
    return result["port"]


def run_pass(registry_dir: str, extra_args: list, label: str) -> None:
    """Boot one server configuration, exercise it, drain it."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--registry",
         registry_dir, "--host", "127.0.0.1", "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        port = read_port(proc)
        from repro.serve import SynthesisClient

        with SynthesisClient(port=port, timeout=TIMEOUT_S) as client:
            health = client.health()
            if health["status"] != "ok":
                fail(f"[{label}] unexpected /healthz reply: {health}")
            print(f"[{label}] healthz ok (uptime {health['uptime_s']:.2f}s)")
            reply = client.sample("smoke", 32)
            if len(reply["rows"]) != 32 or reply["offset"] != 0:
                fail(f"[{label}] bad sample reply: n={len(reply['rows'])} "
                     f"offset={reply['offset']}")
            print(f"[{label}] sampled {len(reply['rows'])} rows x "
                  f"{len(reply['columns'])} columns from 'smoke'")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=TIMEOUT_S)
        if code != 0:
            fail(f"[{label}] server exited with code {code} after SIGTERM")
        print(f"[{label}] server drained and exited cleanly")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
            fail(f"[{label}] server had to be killed")


def check_shm_clean() -> None:
    """No serving-pool shared-memory segments may outlive their server."""
    if not os.path.isdir("/dev/shm"):
        return  # non-POSIX-shm platform: nothing to check
    leaked = [name for name in os.listdir("/dev/shm")
              if name.startswith("rpool")]
    if leaked:
        fail(f"leaked shared-memory segments after drain: {leaked}")
    print("no leaked shared-memory segments")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        registry_dir = os.path.join(tmp, "registry")
        train_and_register(registry_dir)
        run_pass(registry_dir, [], "threaded")
        run_pass(registry_dir, ["--server-workers", "2"], "workers=2")
        check_shm_clean()
    print("SMOKE PASSED")


if __name__ == "__main__":
    start = time.monotonic()
    main()
    print(f"total {time.monotonic() - start:.1f}s")
