"""The tracing seam: disarmed no-ops, armed spans, context propagation."""

import json
import threading

from repro.obs import trace


class TestDisarmed:
    def test_span_returns_the_shared_noop_singleton(self):
        first = trace.span("a")
        second = trace.span("b", rows=3)
        assert first is second is trace._NOOP_SPAN
        with first as sp:
            assert sp.set(hit=True) is sp
            assert sp.trace_id is None

    def test_armed_is_false_and_current_is_none(self):
        assert trace.armed() is False
        assert trace.current() is None

    def test_attach_and_emit_are_noops(self):
        with trace.attach(("t", "s")):
            pass
        assert trace.emit("x", 0.0) is None

    def test_log_event_falls_back_to_stderr(self, capsys):
        trace.log_event("worker_crash", model="tiny", pid=object())
        line = capsys.readouterr().err.strip()
        record = json.loads(line)
        assert record["kind"] == "event"
        assert record["name"] == "worker_crash"
        assert record["attrs"]["model"] == "tiny"  # default=repr for the rest

    def test_new_trace_id_is_16_hex(self):
        tid = trace.new_trace_id()
        assert len(tid) == 16
        int(tid, 16)


class TestArmed:
    def test_nested_spans_share_a_trace_and_parent_correctly(self):
        sink = []
        with trace.tracing(sink):
            with trace.span("outer", kind="root") as outer:
                with trace.span("inner") as inner:
                    assert trace.current() == (inner.trace_id, inner.span_id)
                    inner.set(rows=4)
        assert [r["name"] for r in sink] == ["inner", "outer"]
        inner_rec, outer_rec = sink
        assert inner_rec["trace"] == outer_rec["trace"]
        assert inner_rec["parent"] == outer_rec["span"]
        assert outer_rec["parent"] is None
        assert outer_rec["attrs"] == {"kind": "root"}
        assert inner_rec["attrs"] == {"rows": 4}
        assert inner_rec["dur_ms"] >= 0
        assert inner_rec["kind"] == "span"

    def test_explicit_trace_id_starts_a_root(self):
        sink = []
        with trace.tracing(sink):
            with trace.span("handler", trace_id="abcd1234abcd1234"):
                pass
        assert sink[0]["trace"] == "abcd1234abcd1234"
        assert sink[0]["parent"] is None

    def test_exception_is_recorded_and_propagates(self):
        sink = []
        with trace.tracing(sink):
            try:
                with trace.span("boom"):
                    raise ValueError("bad rows")
            except ValueError:
                pass
        assert sink[0]["attrs"]["error"] == "ValueError: bad rows"

    def test_attach_propagates_context_across_threads(self):
        """The batcher pattern: the producer captures current() into the
        queue entry, the worker re-enters it with attach()."""
        sink = []
        with trace.tracing(sink):
            with trace.span("handler") as handler:
                ctx = trace.current()

            def worker():
                with trace.attach(ctx):
                    with trace.span("batcher"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        batcher_rec = next(r for r in sink if r["name"] == "batcher")
        assert batcher_rec["trace"] == handler.trace_id
        assert batcher_rec["parent"] == handler.span_id

    def test_emit_writes_an_after_the_fact_span(self):
        import time

        sink = []
        with trace.tracing(sink):
            start = time.perf_counter()
            span_id = trace.emit("batcher", start,
                                 parent=("feed" * 4, "beef" * 4), rows=8)
        record = sink[0]
        assert record["span"] == span_id
        assert record["trace"] == "feed" * 4
        assert record["parent"] == "beef" * 4
        assert record["attrs"] == {"rows": 8}

    def test_log_event_goes_to_the_sink_with_trace_context(self):
        sink = []
        with trace.tracing(sink):
            with trace.span("handler") as handler:
                trace.log_event("crash", dead=False)
        event = next(r for r in sink if r["kind"] == "event")
        assert event["trace"] == handler.trace_id
        assert event["attrs"] == {"dead": False}

    def test_tracing_restores_the_previous_tracer(self):
        outer_sink, inner_sink = [], []
        with trace.tracing(outer_sink):
            with trace.tracing(inner_sink):
                with trace.span("in"):
                    pass
            with trace.span("out"):
                pass
        assert [r["name"] for r in inner_sink] == ["in"]
        assert [r["name"] for r in outer_sink] == ["out"]
        assert trace.armed() is False

    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with trace.tracing(str(path)) as tracer:
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
            assert tracer.emitted == 2
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_arm_disarm_round_trip(self):
        sink = []
        tracer = trace.arm(sink)
        try:
            with trace.span("x"):
                pass
            assert trace.armed() is True
        finally:
            assert trace.disarm() is tracer
        assert trace.armed() is False
        assert len(sink) == 1
