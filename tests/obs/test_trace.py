"""The tracing seam: disarmed no-ops, armed spans, context propagation."""

import json
import threading

from repro.obs import trace


class TestDisarmed:
    def test_span_returns_the_shared_noop_singleton(self):
        first = trace.span("a")
        second = trace.span("b", rows=3)
        assert first is second is trace._NOOP_SPAN
        with first as sp:
            assert sp.set(hit=True) is sp
            assert sp.trace_id is None

    def test_armed_is_false_and_current_is_none(self):
        assert trace.armed() is False
        assert trace.current() is None

    def test_attach_and_emit_are_noops(self):
        with trace.attach(("t", "s")):
            pass
        assert trace.emit("x", 0.0) is None

    def test_log_event_falls_back_to_stderr(self, capsys):
        trace.log_event("worker_crash", model="tiny", pid=object())
        line = capsys.readouterr().err.strip()
        record = json.loads(line)
        assert record["kind"] == "event"
        assert record["name"] == "worker_crash"
        assert record["attrs"]["model"] == "tiny"  # default=repr for the rest

    def test_new_trace_id_is_16_hex(self):
        tid = trace.new_trace_id()
        assert len(tid) == 16
        int(tid, 16)


class TestArmed:
    def test_nested_spans_share_a_trace_and_parent_correctly(self):
        sink = []
        with trace.tracing(sink):
            with trace.span("outer", kind="root") as outer:
                with trace.span("inner") as inner:
                    assert trace.current() == (inner.trace_id, inner.span_id)
                    inner.set(rows=4)
        assert [r["name"] for r in sink] == ["inner", "outer"]
        inner_rec, outer_rec = sink
        assert inner_rec["trace"] == outer_rec["trace"]
        assert inner_rec["parent"] == outer_rec["span"]
        assert outer_rec["parent"] is None
        assert outer_rec["attrs"] == {"kind": "root"}
        assert inner_rec["attrs"] == {"rows": 4}
        assert inner_rec["dur_ms"] >= 0
        assert inner_rec["kind"] == "span"

    def test_explicit_trace_id_starts_a_root(self):
        sink = []
        with trace.tracing(sink):
            with trace.span("handler", trace_id="abcd1234abcd1234"):
                pass
        assert sink[0]["trace"] == "abcd1234abcd1234"
        assert sink[0]["parent"] is None

    def test_exception_is_recorded_and_propagates(self):
        sink = []
        with trace.tracing(sink):
            try:
                with trace.span("boom"):
                    raise ValueError("bad rows")
            except ValueError:
                pass
        assert sink[0]["attrs"]["error"] == "ValueError: bad rows"

    def test_attach_propagates_context_across_threads(self):
        """The batcher pattern: the producer captures current() into the
        queue entry, the worker re-enters it with attach()."""
        sink = []
        with trace.tracing(sink):
            with trace.span("handler") as handler:
                ctx = trace.current()

            def worker():
                with trace.attach(ctx):
                    with trace.span("batcher"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        batcher_rec = next(r for r in sink if r["name"] == "batcher")
        assert batcher_rec["trace"] == handler.trace_id
        assert batcher_rec["parent"] == handler.span_id

    def test_emit_writes_an_after_the_fact_span(self):
        import time

        sink = []
        with trace.tracing(sink):
            start = time.perf_counter()
            span_id = trace.emit("batcher", start,
                                 parent=("feed" * 4, "beef" * 4), rows=8)
        record = sink[0]
        assert record["span"] == span_id
        assert record["trace"] == "feed" * 4
        assert record["parent"] == "beef" * 4
        assert record["attrs"] == {"rows": 8}

    def test_log_event_goes_to_the_sink_with_trace_context(self):
        sink = []
        with trace.tracing(sink):
            with trace.span("handler") as handler:
                trace.log_event("crash", dead=False)
        event = next(r for r in sink if r["kind"] == "event")
        assert event["trace"] == handler.trace_id
        assert event["attrs"] == {"dead": False}

    def test_tracing_restores_the_previous_tracer(self):
        outer_sink, inner_sink = [], []
        with trace.tracing(outer_sink):
            with trace.tracing(inner_sink):
                with trace.span("in"):
                    pass
            with trace.span("out"):
                pass
        assert [r["name"] for r in inner_sink] == ["in"]
        assert [r["name"] for r in outer_sink] == ["out"]
        assert trace.armed() is False

    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with trace.tracing(str(path)) as tracer:
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
            assert tracer.emitted == 2
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_arm_disarm_round_trip(self):
        sink = []
        tracer = trace.arm(sink)
        try:
            with trace.span("x"):
                pass
            assert trace.armed() is True
        finally:
            assert trace.disarm() is tracer
        assert trace.armed() is False
        assert len(sink) == 1


class TestRotation:
    """Size-capped trace-log rotation must never tear a JSON record."""

    def _emit(self, tracer, n):
        for i in range(n):
            tracer._write({"kind": "span", "name": f"s{i}", "trace": "t",
                           "span": f"{i:016x}", "parent": None,
                           "ts": 0.0, "dur_ms": 0.1, "attrs": {}})

    def test_rotates_at_cap_and_keeps_n_files(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with trace.tracing(str(path), max_bytes=512, keep=2) as tracer:
            self._emit(tracer, 60)
        assert tracer.rotations > 2
        assert path.exists()
        assert (tmp_path / "spans.jsonl.1").exists()
        assert (tmp_path / "spans.jsonl.2").exists()
        assert not (tmp_path / "spans.jsonl.3").exists()
        # Rotation happens before a write would exceed the cap, so every
        # retained file stays within it.
        for name in ("spans.jsonl", "spans.jsonl.1", "spans.jsonl.2"):
            assert (tmp_path / name).stat().st_size <= 512

    def test_rotation_never_tears_a_record(self, tmp_path):
        """Every line across the live file and every rotated file parses
        as one complete JSON record (rotation only between whole lines)."""
        path = tmp_path / "spans.jsonl"
        with trace.tracing(str(path), max_bytes=400, keep=3) as tracer:
            self._emit(tracer, 80)
        names = []
        for candidate in (path, *(tmp_path / f"spans.jsonl.{i}"
                                  for i in range(1, 4))):
            if not candidate.exists():
                continue
            for line in candidate.read_text().splitlines():
                record = json.loads(line)  # raises if any record tore
                names.append(record["name"])
        assert len(names) == len(set(names))  # no record duplicated either

    def test_concurrent_writers_never_tear_records(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with trace.tracing(str(path), max_bytes=600, keep=4) as tracer:
            threads = [
                threading.Thread(target=self._emit, args=(tracer, 40))
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert tracer.emitted == 160
        total = 0
        for candidate in (path, *(tmp_path / f"spans.jsonl.{i}"
                                  for i in range(1, 5))):
            if candidate.exists():
                for line in candidate.read_text().splitlines():
                    json.loads(line)
                    total += 1
        # Old records may rotate off the end of the keep chain, but every
        # surviving line must be whole.
        assert 0 < total <= 160

    def test_no_cap_means_no_rotation(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with trace.tracing(str(path)) as tracer:
            self._emit(tracer, 50)
        assert tracer.rotations == 0
        assert not (tmp_path / "spans.jsonl.1").exists()
        assert len(path.read_text().splitlines()) == 50

    def test_oversized_single_record_still_lands(self, tmp_path):
        """A record bigger than the cap rotates once then writes anyway —
        the cap bounds growth, it never drops data."""
        path = tmp_path / "spans.jsonl"
        with trace.tracing(str(path), max_bytes=64, keep=2) as tracer:
            tracer._write({"kind": "span", "name": "big", "attrs":
                           {"blob": "x" * 500}})
            tracer._write({"kind": "span", "name": "after", "attrs": {}})
        names = []
        for candidate in (path, tmp_path / "spans.jsonl.1",
                          tmp_path / "spans.jsonl.2"):
            if candidate.exists():
                names += [json.loads(line)["name"]
                          for line in candidate.read_text().splitlines()]
        assert set(names) == {"big", "after"}
