"""Streaming quality sketches and drift scoring (serving-agnostic core)."""

import numpy as np
import pytest

from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.obs.quality import (
    ReservoirSample,
    TableSketch,
    reference_stats,
    score_drift,
)


def _schema():
    return TableSchema([
        ColumnSpec("x", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE),
        ColumnSpec("y", ColumnKind.DISCRETE, ColumnRole.SENSITIVE),
        ColumnSpec("cat", ColumnKind.CATEGORICAL, ColumnRole.SENSITIVE,
                   categories=("a", "b", "c")),
    ])


def _rows(rng, n):
    return np.column_stack([
        rng.uniform(0.0, 10.0, n),
        rng.integers(0, 5, n).astype(np.float64),
        rng.integers(0, 3, n).astype(np.float64),
    ])


class TestReservoir:
    def test_fills_then_bounds(self, rng):
        res = ReservoirSample(16, 3, seed=1)
        res.update(_rows(rng, 10))
        assert res.filled == 10 and res.seen == 10
        res.update(_rows(rng, 100))
        assert res.filled == 16 and res.seen == 110
        assert res.sample().shape == (16, 3)

    def test_deterministic_given_seed(self, rng):
        blocks = [_rows(rng, 40) for _ in range(5)]
        a = ReservoirSample(8, 3, seed=7)
        b = ReservoirSample(8, 3, seed=7)
        for block in blocks:
            a.update(block)
            b.update(block)
        assert np.array_equal(a.sample(), b.sample())

    def test_zero_capacity_counts_only(self, rng):
        res = ReservoirSample(0, 3, seed=0)
        res.update(_rows(rng, 25))
        assert res.seen == 25 and res.filled == 0
        assert res.sample().shape == (0, 3)

    def test_uniformity_over_stream(self):
        """Every stream row must be equally likely to survive (algorithm R)."""
        hits = np.zeros(200)
        for seed in range(300):
            res = ReservoirSample(10, 1, seed=seed)
            res.update(np.arange(200, dtype=np.float64).reshape(-1, 1))
            hits[res.sample()[:, 0].astype(int)] += 1
        # 10/200 inclusion probability * 300 runs = 15 expected hits/row;
        # a biased reservoir (e.g. never replacing the head) is far outside.
        assert hits.min() > 2 and hits.max() < 45


class TestTableSketch:
    def test_moments_match_numpy(self, rng):
        values = _rows(rng, 500)
        sketch = TableSketch(_schema(), values.min(0), values.max(0))
        for start in range(0, 500, 130):  # uneven blocks
            sketch.update(values[start:start + 130])
        assert sketch.count == 500
        assert np.allclose(sketch.mean, values.mean(axis=0))
        assert np.allclose(np.sqrt(sketch.m2 / sketch.count),
                           values.std(axis=0))
        assert np.allclose(sketch.minv, values.min(axis=0))
        assert np.allclose(sketch.maxv, values.max(axis=0))

    def test_histogram_counts_rows(self, rng):
        values = _rows(rng, 300)
        sketch = TableSketch(_schema(), values.min(0), values.max(0), bins=8)
        sketch.update(values)
        assert sketch.hist.shape == (3, 8)
        assert (sketch.hist.sum(axis=1) == 300).all()

    def test_out_of_range_values_clip_to_edge_bins(self):
        schema = _schema()
        sketch = TableSketch(schema, [0.0, 0.0, 0.0], [1.0, 4.0, 2.0], bins=4)
        sketch.update(np.array([[-5.0, 99.0, 0.0], [99.0, -5.0, 1.0]]))
        assert sketch.hist[0, 0] == 1 and sketch.hist[0, -1] == 1
        assert sketch.hist[1, -1] == 1 and sketch.hist[1, 0] == 1

    def test_constant_column_single_bin(self):
        schema = _schema()
        sketch = TableSketch(schema, [2.0, 0.0, 0.0], [2.0, 4.0, 2.0], bins=8)
        sketch.update(np.array([[2.0, 1.0, 0.0]] * 50))
        assert sketch.hist[0, 0] == 50
        assert sketch.hist[0, 1:].sum() == 0

    def test_categorical_counts_exact(self, rng):
        values = _rows(rng, 400)
        sketch = TableSketch(_schema(), values.min(0), values.max(0))
        sketch.update(values)
        counts = sketch.cat_counts[2]
        expected = np.bincount(values[:, 2].astype(int), minlength=3)
        assert np.array_equal(counts, expected)

    def test_merge_equals_single_update(self, rng):
        values = _rows(rng, 600)
        lo, hi = values.min(0), values.max(0)
        whole = TableSketch(_schema(), lo, hi, reservoir_rows=0)
        whole.update(values)
        left = TableSketch(_schema(), lo, hi, reservoir_rows=0)
        right = TableSketch(_schema(), lo, hi, reservoir_rows=0)
        left.update(values[:250])
        right.update(values[250:])
        left.merge(right)
        assert left.count == whole.count
        assert np.allclose(left.mean, whole.mean)
        assert np.allclose(left.m2, whole.m2)
        assert np.array_equal(left.hist, whole.hist)
        assert np.array_equal(left.cat_counts[2], whole.cat_counts[2])

    def test_payload_roundtrip_json_and_arrays(self, rng):
        import json

        values = _rows(rng, 120)
        lo, hi = values.min(0), values.max(0)
        src = TableSketch(_schema(), lo, hi, reservoir_rows=0)
        src.update(values)
        for arrays in (False, True):
            payload = src.to_payload(arrays=arrays)
            if not arrays:
                payload = json.loads(json.dumps(payload))  # wire-safe
            dst = TableSketch(_schema(), lo, hi, reservoir_rows=0)
            dst.merge_payload(payload)
            assert dst.count == src.count
            assert np.allclose(dst.mean, src.mean)
            assert np.array_equal(dst.hist, src.hist)

    def test_empty_and_single_row_updates(self):
        sketch = TableSketch(_schema(), [0.0] * 3, [1.0] * 3)
        sketch.update(np.empty((0, 3)))
        assert sketch.count == 0
        sketch.update(np.array([0.5, 1.0, 2.0]))  # 1-D single row
        assert sketch.count == 1
        snap = sketch.snapshot()
        assert snap["rows"] == 1
        assert all(np.isfinite(col["std"]) for col in snap["columns"].values())

    def test_snapshot_top_k_uses_category_names(self, rng):
        values = _rows(rng, 200)
        sketch = TableSketch(_schema(), values.min(0), values.max(0))
        sketch.update(values)
        top = sketch.snapshot()["columns"]["cat"]["categories"]["top_k"]
        assert top and all(name in ("a", "b", "c") for name, _count in top)
        counts = [count for _name, count in top]
        assert counts == sorted(counts, reverse=True)


class TestReferenceStats:
    def test_matches_table_and_is_json(self, rng):
        import json

        values = _rows(rng, 250)
        table = Table(values, _schema())
        ref = reference_stats(table, bins=16)
        assert ref["rows"] == 250 and ref["bins"] == 16
        assert np.isclose(ref["columns"]["x"]["mean"], values[:, 0].mean())
        json.dumps(ref)  # manifest-embeddable

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            reference_stats(Table(np.empty((0, 3)), _schema()))


class TestScoreDrift:
    def _sketch_snapshot(self, rng, n, shift=0.0):
        values = _rows(rng, n)
        values[:, 0] += shift
        base = _rows(np.random.default_rng(0), 400)
        lo, hi = base.min(0), base.max(0)
        sketch = TableSketch(_schema(), lo, hi, reservoir_rows=0)
        sketch.update(values)
        return sketch.snapshot()

    def test_identical_distribution_ok(self):
        ref = reference_stats(
            Table(_rows(np.random.default_rng(3), 500), _schema()))
        live = self._sketch_snapshot(np.random.default_rng(3), 500)
        # Same generator, same seed: the binned CDFs are near-identical.
        scores = score_drift(ref, live)
        assert scores["scored"] is True
        assert scores["columns"]["x"]["statistic"] < 0.15

    def test_shifted_distribution_drifts(self):
        ref = reference_stats(
            Table(_rows(np.random.default_rng(3), 500), _schema()))
        live = self._sketch_snapshot(np.random.default_rng(4), 500, shift=8.0)
        scores = score_drift(ref, live)
        assert scores["columns"]["x"]["status"] == "drift"
        assert scores["status"] == "drift"

    def test_min_rows_gates_everything_ok(self):
        ref = reference_stats(
            Table(_rows(np.random.default_rng(3), 500), _schema()))
        live = self._sketch_snapshot(np.random.default_rng(4), 50, shift=8.0)
        scores = score_drift(ref, live, min_rows=100)
        assert scores["scored"] is False
        assert scores["status"] == "ok"
        assert all(c["status"] == "ok" for c in scores["columns"].values())

    def test_categorical_tv_distance(self):
        ref = reference_stats(
            Table(np.array([[0.0, 0.0, 0.0]] * 50 + [[0.0, 0.0, 1.0]] * 50),
                  _schema()))
        live_values = np.array([[0.0, 0.0, 2.0]] * 200)
        sketch = TableSketch(_schema(), [0.0] * 3, [1.0, 1.0, 2.0],
                             reservoir_rows=0)
        sketch.update(live_values)
        scores = score_drift(ref, sketch.snapshot())
        # Disjoint supports: total variation saturates at 1.
        assert scores["columns"]["cat"]["statistic"] == pytest.approx(1.0)
        assert scores["columns"]["cat"]["status"] == "drift"

    def test_all_scores_finite(self):
        """Zero-count live sketches and constant columns stay finite."""
        ref = reference_stats(Table(np.zeros((120, 3)), _schema()))
        empty = TableSketch(_schema(), [0.0] * 3, [0.0] * 3,
                            reservoir_rows=0).snapshot()
        scores = score_drift(ref, empty)
        for col in scores["columns"].values():
            assert np.isfinite(col["statistic"])
            assert np.isfinite(col["area"])
