"""Tests for the observability subsystem (:mod:`repro.obs`)."""
