"""MetricsRegistry, labeled series, and the log-bucket histogram."""

import threading

import pytest

from repro.obs.metrics import (
    REGISTRY,
    LatencyHistogram,
    MetricsRegistry,
)


class TestLatencyHistogram:
    def test_empty_summary_is_all_zeros(self):
        """A routed-but-never-sampled model must render zeros — never NaN,
        never a ZeroDivisionError (the ISSUE 8 satellite bug)."""
        summary = LatencyHistogram().summary()
        assert summary == {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                           "p90_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}

    def test_summary_after_records(self):
        histogram = LatencyHistogram()
        for seconds in (0.001, 0.002, 0.004, 0.5):
            histogram.record(seconds)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean_ms"] == pytest.approx(126.75, rel=1e-3)
        assert summary["max_ms"] == 500.0
        # Percentiles are bucket upper bounds: ordered, never zero here.
        assert 0 < summary["p50_ms"] <= summary["p99_ms"]

    def test_observe_is_an_alias_for_record(self):
        histogram = LatencyHistogram()
        histogram.observe(0.01)
        assert histogram.summary()["count"] == 1

    def test_merge_folds_counts_sums_and_max(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        left.record(0.001)
        right.record(0.1)
        right.record(0.2)
        left.merge(right)
        summary = left.summary()
        assert summary["count"] == 3
        assert summary["max_ms"] == 200.0
        assert right.summary()["count"] == 2  # source unchanged

    def test_merge_of_two_empty_histograms_stays_empty(self):
        left = LatencyHistogram().merge(LatencyHistogram())
        assert left.summary()["count"] == 0

    def test_merge_rejects_non_histograms(self):
        with pytest.raises(TypeError):
            LatencyHistogram().merge(object())


class TestRegistry:
    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", "help text")
        second = registry.counter("requests_total")
        assert first is second
        assert first.help == "help text"

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad-name")

    def test_invalid_label_name_rejected(self):
        family = MetricsRegistry().counter("ok_total")
        with pytest.raises(ValueError, match="invalid label name"):
            family.labels(**{"bad-label": "x"})

    def test_labels_are_order_insensitive_and_stringified(self):
        family = MetricsRegistry().counter("ops_total")
        a = family.labels(model="tiny", status=200)
        b = family.labels(status="200", model="tiny")
        assert a is b
        a.inc(3)
        assert b.value == 3.0

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total").labels()
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth").labels(model="tiny")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0

    def test_remove_drops_a_series(self):
        family = MetricsRegistry().gauge("depth")
        family.labels(model="gone").set(1)
        family.remove(model="gone")
        assert family.series() == []

    def test_concurrent_increments_are_not_lost(self):
        counter = MetricsRegistry().counter("hits_total").labels()

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestExposition:
    def test_render_text_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests").labels(model="tiny").inc(2)
        registry.gauge("up").set(1)
        text = registry.render_text()
        assert "# HELP req_total requests\n" in text
        assert "# TYPE req_total counter\n" in text
        assert 'req_total{model="tiny"} 2\n' in text
        assert "# TYPE up gauge\n" in text
        assert "\nup 1\n" in text
        assert text.endswith("\n")

    def test_render_text_histogram_is_cumulative(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", "latency")
        family.record(0.00005)  # below the first bound
        family.record(0.0002)
        family.record(500.0)  # overflow bucket
        text = registry.render_text()
        assert 'lat_seconds_bucket{le="0.0001"} 1\n' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "lat_seconds_count 3\n" in text
        assert "lat_seconds_sum 500.00025" in text
        # Cumulative monotonicity across every bucket line.
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
                  if line.startswith("lat_seconds_bucket")]
        assert counts == sorted(counts)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total").labels(model='we"ird\\name\n').inc()
        text = registry.render_text()
        assert 'model="we\\"ird\\\\name\\n"' in text

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").labels(model="m").inc()
        registry.histogram("h_seconds").record(0.01)
        snapshot = registry.snapshot()
        assert snapshot["c_total"]["kind"] == "counter"
        assert snapshot["c_total"]["series"] == [
            {"labels": {"model": "m"}, "value": 1.0}
        ]
        assert snapshot["h_seconds"]["series"][0]["count"] == 1

    def test_collectors_run_at_exposition_time_only(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live").labels()
        calls = []

        def refresh():
            calls.append(1)
            gauge.set(len(calls))

        registry.add_collector(refresh)
        assert calls == []
        registry.render_text()
        registry.snapshot()
        assert len(calls) == 2
        registry.remove_collector(refresh)
        registry.render_text()
        assert len(calls) == 2
        registry.remove_collector(refresh)  # idempotent

    def test_default_registry_exists(self):
        assert isinstance(REGISTRY, MetricsRegistry)
