"""Sharded sampling: worker-count invariance and deterministic plans."""

import numpy as np
import pytest

from repro.serve import CsvSink, ShardedSampler, plan_shards


class TestPlan:
    def test_rows_partitioned_exactly(self):
        shards = plan_shards(100, 32, seed=0)
        assert [s.rows for s in shards] == [32, 32, 32, 4]
        assert [s.index for s in shards] == [0, 1, 2, 3]

    def test_plan_is_deterministic_and_seed_sensitive(self):
        a = plan_shards(64, 16, seed=1)
        b = plan_shards(64, 16, seed=1)
        c = plan_shards(64, 16, seed=2)
        key = lambda shards: [s.seed.generate_state(2).tolist() for s in shards]
        assert key(a) == key(b)
        assert key(a) != key(c)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(0, 16)
        with pytest.raises(ValueError):
            plan_shards(16, 0)


class TestShardedSampler:
    @pytest.fixture(scope="class")
    def sampler(self, populated_registry):
        return ShardedSampler(populated_registry, "tiny", shard_rows=16)

    def test_unknown_model_rejected(self, populated_registry):
        with pytest.raises(ValueError, match="no model named"):
            ShardedSampler(populated_registry, "missing")

    def test_output_invariant_to_worker_count(self, sampler):
        """The acceptance property: bit-identical output for any --workers."""
        inline = sampler.sample_values(40, seed=7, workers=1)
        two = sampler.sample_values(40, seed=7, workers=2)
        three = sampler.sample_values(40, seed=7, workers=3)
        assert np.array_equal(inline, two)
        assert np.array_equal(inline, three)

    def test_table_output_matches_registry_model(self, sampler,
                                                 populated_registry):
        table = sampler.sample_table(20, seed=3, workers=2)
        assert table.n_rows == 20
        model = populated_registry.load("tiny")
        shard = plan_shards(20, 16, seed=3)[0]
        want = model.sample(shard.rows, rng=np.random.default_rng(shard.seed))
        assert np.array_equal(table.values[: shard.rows], want.values)

    def test_sink_streaming_equals_in_memory(self, sampler, tmp_path):
        values = sampler.sample_values(40, seed=7, workers=2)
        path = tmp_path / "rows.csv"
        with CsvSink(path, sampler.schema) as sink:
            written = sampler.sample_to_sink(40, sink, seed=7, workers=2)
        assert written == 40
        from repro.data.io import write_csv
        from repro.data.table import Table

        reference = tmp_path / "reference.csv"
        write_csv(Table(values, sampler.schema), reference)
        assert path.read_text() == reference.read_text()

    def test_seed_changes_output(self, sampler):
        a = sampler.sample_values(20, seed=1, workers=1)
        b = sampler.sample_values(20, seed=2, workers=1)
        assert not np.array_equal(a, b)
