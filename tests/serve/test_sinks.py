"""Streaming sinks: chunked writes, atomic commit, and format round trips."""

import csv
import os

import numpy as np
import pytest

from repro.data.io import write_csv
from repro.serve import CsvSink, NpzSink, read_npz_chunks


@pytest.fixture()
def table(adult_bundle):
    return adult_bundle.train.head(12)


class TestCsvSink:
    def test_chunked_writes_equal_write_csv(self, table, tmp_path):
        whole = tmp_path / "whole.csv"
        write_csv(table, whole)
        streamed = tmp_path / "streamed.csv"
        with CsvSink(streamed, table.schema) as sink:
            for start in range(0, table.n_rows, 5):
                sink.write(table.values[start : start + 5])
            assert sink.rows_written == table.n_rows
        assert streamed.read_text() == whole.read_text()

    def test_decodes_categoricals(self, table, tmp_path):
        path = tmp_path / "rows.csv"
        with CsvSink(path, table.schema) as sink:
            sink.write(table.values)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        sex_idx = rows[0].index("sex")
        assert rows[1][sex_idx] in ("female", "male")

    def test_nothing_at_final_path_until_close(self, table, tmp_path):
        path = tmp_path / "rows.csv"
        sink = CsvSink(path, table.schema)
        sink.write(table.values)
        assert not path.exists()
        sink.close()
        assert path.exists()

    def test_exception_discards_partial_output(self, table, tmp_path):
        path = tmp_path / "rows.csv"
        with pytest.raises(RuntimeError, match="boom"):
            with CsvSink(path, table.schema) as sink:
                sink.write(table.values)
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_write_after_close_rejected(self, table, tmp_path):
        sink = CsvSink(tmp_path / "rows.csv", table.schema)
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.write(table.values)


class TestNpzSink:
    def test_chunked_round_trip(self, table, tmp_path):
        path = tmp_path / "rows.npz"
        with NpzSink(path, columns=table.schema.names) as sink:
            for start in range(0, table.n_rows, 5):
                sink.write(table.values[start : start + 5])
        values, columns = read_npz_chunks(path)
        assert np.array_equal(values, table.values)
        assert columns == table.schema.names

    def test_without_columns(self, table, tmp_path):
        path = tmp_path / "rows.npz"
        with NpzSink(path) as sink:
            sink.write(table.values)
        values, columns = read_npz_chunks(path)
        assert np.array_equal(values, table.values)
        assert columns is None

    def test_archive_is_plain_npz(self, table, tmp_path):
        """The output loads with np.load alone — no custom reader required."""
        path = tmp_path / "rows.npz"
        with NpzSink(path) as sink:
            sink.write(table.values[:4])
            sink.write(table.values[4:])
        with np.load(path) as archive:
            assert sorted(archive.files) == ["chunk_00000", "chunk_00001"]

    def test_exception_discards_partial_output(self, table, tmp_path):
        path = tmp_path / "rows.npz"
        with pytest.raises(RuntimeError):
            with NpzSink(path) as sink:
                sink.write(table.values)
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_rejects_bad_chunks(self, table, tmp_path):
        with NpzSink(tmp_path / "a.npz", columns=("x", "y")) as sink:
            with pytest.raises(ValueError, match="columns"):
                sink.write(np.zeros((3, 5)))
            with pytest.raises(ValueError, match="2-D"):
                sink.write(np.zeros(3))
            sink.write(np.zeros((3, 2)))

    def test_empty_archive_read_rejected(self, tmp_path):
        path = tmp_path / "empty.npz"
        with NpzSink(path):
            pass
        assert os.path.exists(path)
        with pytest.raises(ValueError, match="no chunk members"):
            read_npz_chunks(path)

    def test_chunks_reassemble_numerically_past_padding_overflow(self,
                                                                 tmp_path):
        """chunk_100000 (6 digits) must sort after chunk_99999, not before."""
        import zipfile

        path = tmp_path / "wide.npz"
        with zipfile.ZipFile(path, "w") as archive:
            for index, value in ((99999, 1.0), (100000, 2.0)):
                with archive.open(f"chunk_{index:05d}.npy", "w") as handle:
                    np.lib.format.write_array(
                        handle, np.full((1, 2), value), allow_pickle=False
                    )
        values, _ = read_npz_chunks(path)
        assert np.array_equal(values[:, 0], [1.0, 2.0])
