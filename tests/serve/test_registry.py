"""Model registry: round trips, atomicity, corruption, and versioning."""

import json
import os

import numpy as np
import pytest

from repro import ChunkedTableGAN, ModelRegistry, TableGAN
from repro.serve import CorruptArtifactError, RegistryError, split_ref
from repro.serve.registry import MANIFEST_NAME


class TestRegistration:
    def test_listing_and_membership(self, populated_registry):
        assert populated_registry.names() == ["tiny"]
        assert "tiny" in populated_registry
        assert "missing" not in populated_registry

    def test_manifest_contents(self, populated_registry, trained_gan):
        manifest = populated_registry.manifest("tiny")
        assert manifest["kind"] == "tablegan"
        assert manifest["side"] == trained_gan.matrixizer_.side
        assert manifest["n_features"] == trained_gan.matrixizer_.n_features
        assert manifest["dtype"] == trained_gan.config.np_dtype.name
        assert len(manifest["schema"]["columns"]) == manifest["n_features"]
        assert manifest["config"]["base_channels"] == trained_gan.config.base_channels

    def test_reference_stats_round_trip(self, tmp_path, trained_gan,
                                        adult_bundle):
        from repro.obs.quality import reference_stats

        registry = ModelRegistry(tmp_path / "reg")
        stats = reference_stats(adult_bundle.train)
        registry.register("with-ref", trained_gan, reference_stats=stats)
        manifest = registry.manifest("with-ref")
        # The manifest is JSON on disk: the frozen stats survive exactly.
        assert manifest["reference_stats"] == json.loads(json.dumps(stats))
        assert manifest["reference_stats"]["rows"] == adult_bundle.train.n_rows
        # Registrations without stats simply omit the key.
        registry.register("without-ref", trained_gan)
        assert "reference_stats" not in registry.manifest("without-ref")

    def test_reference_stats_must_be_a_dict(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError):
            registry.register("bad", trained_gan, reference_stats=[1, 2])

    def test_refuses_duplicate_without_overwrite(self, populated_registry,
                                                 trained_gan):
        with pytest.raises(RegistryError, match="already registered"):
            populated_registry.register("tiny", trained_gan)

    def test_overwrite_replaces(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        registry.register("m", trained_gan, overwrite=True)
        assert registry.names() == ["m"]

    def test_rejects_unfitted_and_unknown_models(self, tmp_path,
                                                 tiny_gan_config):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError, match="unfitted"):
            registry.register("m", TableGAN(tiny_gan_config))
        with pytest.raises(RegistryError, match="expected TableGAN"):
            registry.register("m", object())

    def test_rejects_path_traversal_names(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        for bad in ("../escape", ".hidden", "a/b", "", "name\n", "name\nx"):
            with pytest.raises(RegistryError, match="invalid model name"):
                registry.register(bad, trained_gan)

    def test_failed_overwrite_restores_previous_model(self, tmp_path,
                                                      trained_gan,
                                                      monkeypatch):
        """If the commit rename fails mid-overwrite, the old model returns."""
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        want = registry.load("m").sample(5, rng=np.random.default_rng(1))

        real_replace = os.replace

        def failing_replace(src, dst):
            if ".stage-" in str(src) and str(dst).endswith("m"):
                raise OSError("simulated crash at commit")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="simulated crash"):
            registry.register("m", trained_gan, overwrite=True)
        monkeypatch.undo()

        assert registry.names() == ["m"]
        got = registry.load("m").sample(5, rng=np.random.default_rng(1))
        assert np.array_equal(want.values, got.values)

    def test_no_staging_residue_after_register(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["m"]

    def test_read_operations_never_create_the_root(self, tmp_path,
                                                   trained_gan):
        """A mistyped registry path must not leave directories behind."""
        missing = tmp_path / "typo" / "registry"
        registry = ModelRegistry(missing)
        assert registry.names() == []
        assert "m" not in registry
        with pytest.raises(RegistryError):
            registry.load("m")
        assert not missing.exists()
        registry.register("m", trained_gan)
        assert missing.is_dir() and registry.names() == ["m"]

    def test_delete(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        registry.delete("m")
        assert registry.names() == []
        with pytest.raises(RegistryError):
            registry.delete("m")


class TestVersioning:
    @pytest.fixture()
    def versioned(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan, version="1")
        registry.register("m", trained_gan, version="2")
        return registry

    def test_split_ref(self):
        assert split_ref("m") == ("m", None)
        assert split_ref("m@latest") == ("m", None)
        assert split_ref("m@2") == ("m", "2")
        for bad in ("@2", "m@", "m@a@b", "m@.hidden", 7):
            with pytest.raises(RegistryError):
                split_ref(bad)

    def test_versions_stay_on_disk(self, versioned):
        assert versioned.names() == ["m@1", "m@2"]
        assert versioned.versions("m") == ["1", "2"]
        assert "m@1" in versioned and "m@2" in versioned and "m" in versioned
        assert "m@3" not in versioned

    def test_latest_resolution(self, versioned):
        assert versioned.resolve("m") == "m@2"
        assert versioned.resolve("m@latest") == "m@2"
        assert versioned.resolve("m@1") == "m@1"
        assert versioned.manifest("m")["version"] == "2"
        assert versioned.manifest("m@1")["version"] == "1"

    def test_load_resolves_latest_and_pinned(self, versioned, trained_gan):
        want = trained_gan.sample(6, rng=np.random.default_rng(4))
        for ref in ("m", "m@latest", "m@1", "m@2"):
            got = versioned.load(ref).sample(6, rng=np.random.default_rng(4))
            assert np.array_equal(want.values, got.values)

    def test_registering_a_version_keeps_prior_ones(self, versioned,
                                                    trained_gan):
        versioned.register("m", trained_gan, version="3")
        assert versioned.versions("m") == ["1", "2", "3"]
        assert versioned.resolve("m") == "m@3"

    def test_unversioned_and_versioned_coexist(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        registry.register("m", trained_gan, version="2")
        assert registry.names() == ["m", "m@2"]
        # The newest registration wins the alias, whichever shape it has.
        assert registry.resolve("m") == "m@2"

    def test_duplicate_version_needs_overwrite(self, versioned, trained_gan):
        with pytest.raises(RegistryError, match="already registered"):
            versioned.register("m", trained_gan, version="2")
        versioned.register("m", trained_gan, version="2", overwrite=True)

    def test_reserved_and_invalid_versions_rejected(self, tmp_path,
                                                    trained_gan):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError, match="reserved alias"):
            registry.register("m", trained_gan, version="latest")
        with pytest.raises(RegistryError, match="invalid model version"):
            registry.register("m", trained_gan, version=".bad")
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.register("m@2", trained_gan)

    def test_delete_is_exact(self, versioned):
        versioned.delete("m@1")
        assert versioned.names() == ["m@2"]
        # A bare name never deletes "whatever is newest".
        with pytest.raises(RegistryError, match="m@2"):
            versioned.delete("m")
        with pytest.raises(RegistryError, match="no model named"):
            versioned.delete("m@1")

    def test_describe_reports_versions(self, versioned):
        rows = versioned.describe()
        assert [(row["name"], row["version"]) for row in rows] == [
            ("m@1", "1"), ("m@2", "2"),
        ]

    def test_sharded_sampler_pins_resolution_at_construction(self, versioned,
                                                             trained_gan):
        """A bare name is resolved ONCE when the sampler is built, so a
        version registered mid-run can never mix into the output (the
        parent and every worker would otherwise resolve independently)."""
        from repro.serve import ShardedSampler

        sampler = ShardedSampler(versioned, "m", shard_rows=16)
        assert sampler.name == "m@2"
        versioned.register("m", trained_gan, version="3")
        assert versioned.resolve("m") == "m@3"
        assert sampler.name == "m@2"  # still pinned
        want = versioned.load("m@2").sample(8, rng=np.random.default_rng(0))
        assert sampler.sample_values(8, seed=None, workers=1).shape == (
            8, want.values.shape[1],
        )


class TestRoundTrip:
    def test_load_samples_bit_identical(self, populated_registry, trained_gan):
        """train -> register -> load -> sample equals the original model."""
        loaded = populated_registry.load("tiny")
        want = trained_gan.sample(25, rng=np.random.default_rng(3))
        got = loaded.sample(25, rng=np.random.default_rng(3))
        assert np.array_equal(want.values, got.values)
        assert got.schema == want.schema

    def test_loaded_model_serves_without_training_table(self,
                                                        populated_registry):
        loaded = populated_registry.load("tiny")
        table = loaded.sample(7, rng=np.random.default_rng(0))
        assert table.n_rows == 7

    def test_chunked_round_trip(self, tmp_path, adult_bundle, tiny_gan_config):
        chunked = ChunkedTableGAN(
            tiny_gan_config.with_overrides(epochs=1), n_chunks=2
        )
        chunked.fit(adult_bundle.train, rng=np.random.default_rng(0))
        registry = ModelRegistry(tmp_path)
        manifest = registry.register("chunked", chunked)
        assert manifest["kind"] == "chunked"
        assert len(manifest["chunks"]) == 2

        loaded = registry.load("chunked")
        assert isinstance(loaded, ChunkedTableGAN)
        assert loaded.chunk_sizes_ == chunked.chunk_sizes_
        want = chunked.sample(30, rng=np.random.default_rng(5))
        got = loaded.sample(30, rng=np.random.default_rng(5))
        assert np.array_equal(want.values, got.values)


class TestCorruption:
    @pytest.fixture()
    def registry(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        return registry

    def test_flipped_bytes_detected(self, registry):
        artifact = registry.path_for("m") / "generator.npz"
        blob = bytearray(artifact.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        artifact.write_bytes(bytes(blob))
        with pytest.raises(CorruptArtifactError, match="checksum mismatch"):
            registry.load("m")

    def test_truncated_artifact_detected(self, registry):
        artifact = registry.path_for("m") / "generator.npz"
        artifact.write_bytes(artifact.read_bytes()[:100])
        with pytest.raises(CorruptArtifactError):
            registry.load("m")

    def test_missing_artifact_detected(self, registry):
        (registry.path_for("m") / "generator.npz").unlink()
        with pytest.raises(CorruptArtifactError, match="missing"):
            registry.load("m")

    def test_malformed_manifest_detected(self, registry):
        path = registry.path_for("m") / MANIFEST_NAME
        path.write_text("{not json")
        with pytest.raises(CorruptArtifactError, match="unreadable manifest"):
            registry.load("m")

    def test_wrong_format_version_refused(self, registry):
        path = registry.path_for("m") / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(RegistryError, match="format version"):
            registry.load("m")

    def test_unknown_model_raises(self, registry):
        with pytest.raises(RegistryError, match="no model named"):
            registry.load("nope")
