"""SynthesisService: micro-batching, pooling, and stream determinism."""

import numpy as np
import pytest

from repro.serve import SynthesisService


class TestRequests:
    def test_sample_table_shape_and_schema(self, trained_gan, adult_bundle):
        service = SynthesisService(trained_gan, seed=0)
        table = service.sample(9)
        assert table.n_rows == 9
        assert table.schema == adult_bundle.train.schema

    def test_responses_continue_one_stream(self, trained_gan):
        """Concatenated responses == one direct sampler call: request
        batching must never change the record stream."""
        service = SynthesisService(trained_gan, pool_size=32, seed=5)
        parts = [service.sample_records(n) for n in (3, 5, 7)]
        direct = trained_gan.record_sampler().sample_records(
            15, rng=np.random.default_rng(5)
        )
        assert np.array_equal(np.concatenate(parts), direct)

    def test_decoded_matches_encoded_stream(self, trained_gan):
        service = SynthesisService(trained_gan, seed=5)
        table = service.sample(10)
        direct = trained_gan.record_sampler().sample_table(
            10, rng=np.random.default_rng(5)
        )
        assert np.array_equal(table.values, direct.values)

    def test_rejects_bad_requests(self, trained_gan):
        service = SynthesisService(trained_gan, seed=0)
        with pytest.raises(ValueError):
            service.sample_records(0)
        with pytest.raises(ValueError):
            service.sample_many([4, 0])
        with pytest.raises(TypeError):
            SynthesisService(object())
        with pytest.raises(ValueError):
            SynthesisService(trained_gan, pool_size=-1)
        with pytest.raises(ValueError):
            SynthesisService(trained_gan, batch_rows=0)


class TestMicroBatching:
    def test_sample_many_slices_one_block(self, trained_gan):
        service = SynthesisService(trained_gan, seed=7)
        counts = [4, 1, 6, 3]
        tables = service.sample_many(counts)
        assert [t.n_rows for t in tables] == counts
        direct = trained_gan.record_sampler().sample_table(
            sum(counts), rng=np.random.default_rng(7)
        )
        stacked = np.concatenate([t.values for t in tables])
        assert np.array_equal(stacked, direct.values)

    def test_sample_many_is_one_generator_call(self, trained_gan):
        service = SynthesisService(trained_gan, seed=0, batch_rows=1024)
        service.sample_many_records([8] * 16)
        assert service.stats.generator_calls == 1
        assert service.stats.requests == 16
        assert service.stats.rows_served == 128

    def test_empty_request_list(self, trained_gan):
        service = SynthesisService(trained_gan, seed=0)
        assert service.sample_many([]) == []
        assert service.stats.requests == 0


class TestPool:
    def test_pool_replenishes_in_blocks(self, trained_gan):
        service = SynthesisService(trained_gan, pool_size=64, seed=1)
        service.sample_records(5)
        assert service.stats.rows_generated == 64
        assert service.pooled_rows == 59

    def test_sub_batch_requests_hit_the_pool(self, trained_gan):
        service = SynthesisService(trained_gan, pool_size=64, seed=1)
        service.sample_records(5)
        calls = service.stats.generator_calls
        for n in (7, 9, 11):
            service.sample_records(n)
        assert service.stats.generator_calls == calls
        assert service.stats.pool_hits == 3

    def test_pool_disabled_generates_exactly_what_is_needed(self, trained_gan):
        service = SynthesisService(trained_gan, pool_size=0, seed=1)
        service.sample_records(5)
        assert service.stats.rows_generated == 5
        assert service.pooled_rows == 0


class TestInferenceMode:
    def test_serving_does_not_perturb_batchnorm(self, trained_gan):
        from repro.nn import BatchNorm

        bns = [
            layer for layer in trained_gan.generator_
            if isinstance(layer, BatchNorm)
        ]
        before = [(bn.running_mean.copy(), bn.running_var.copy()) for bn in bns]
        SynthesisService(trained_gan, pool_size=32, seed=2).sample(48)
        for bn, (mean, var) in zip(bns, before):
            assert np.array_equal(bn.running_mean, mean)
            assert np.array_equal(bn.running_var, var)
