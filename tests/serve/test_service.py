"""SynthesisService: micro-batching, pooling, stream determinism, threads."""

import threading

import numpy as np
import pytest

from repro.serve import SynthesisService


class TestRequests:
    def test_sample_table_shape_and_schema(self, trained_gan, adult_bundle):
        service = SynthesisService(trained_gan, seed=0)
        table = service.sample(9)
        assert table.n_rows == 9
        assert table.schema == adult_bundle.train.schema

    def test_responses_continue_one_stream(self, trained_gan):
        """Concatenated responses == one direct sampler call: request
        batching must never change the record stream."""
        service = SynthesisService(trained_gan, pool_size=32, seed=5)
        parts = [service.sample_records(n) for n in (3, 5, 7)]
        direct = trained_gan.record_sampler().sample_records(
            15, rng=np.random.default_rng(5)
        )
        assert np.array_equal(np.concatenate(parts), direct)

    def test_decoded_matches_encoded_stream(self, trained_gan):
        service = SynthesisService(trained_gan, seed=5)
        table = service.sample(10)
        direct = trained_gan.record_sampler().sample_table(
            10, rng=np.random.default_rng(5)
        )
        assert np.array_equal(table.values, direct.values)

    def test_rejects_bad_requests(self, trained_gan):
        service = SynthesisService(trained_gan, seed=0)
        with pytest.raises(ValueError):
            service.sample_records(0)
        with pytest.raises(ValueError):
            service.sample_many([4, 0])
        with pytest.raises(TypeError):
            SynthesisService(object())
        with pytest.raises(ValueError):
            SynthesisService(trained_gan, pool_size=-1)
        with pytest.raises(ValueError):
            SynthesisService(trained_gan, batch_rows=0)


class TestMicroBatching:
    def test_sample_many_slices_one_block(self, trained_gan):
        service = SynthesisService(trained_gan, seed=7)
        counts = [4, 1, 6, 3]
        tables = service.sample_many(counts)
        assert [t.n_rows for t in tables] == counts
        direct = trained_gan.record_sampler().sample_table(
            sum(counts), rng=np.random.default_rng(7)
        )
        stacked = np.concatenate([t.values for t in tables])
        assert np.array_equal(stacked, direct.values)

    def test_sample_many_is_one_generator_call(self, trained_gan):
        service = SynthesisService(trained_gan, seed=0, batch_rows=1024)
        service.sample_many_records([8] * 16)
        assert service.stats.generator_calls == 1
        assert service.stats.requests == 16
        assert service.stats.rows_served == 128

    def test_empty_request_list(self, trained_gan):
        service = SynthesisService(trained_gan, seed=0)
        assert service.sample_many([]) == []
        assert service.stats.requests == 0


class TestPool:
    def test_pool_replenishes_in_blocks(self, trained_gan):
        service = SynthesisService(trained_gan, pool_size=64, seed=1)
        service.sample_records(5)
        assert service.stats.rows_generated == 64
        assert service.pooled_rows == 59

    def test_sub_batch_requests_hit_the_pool(self, trained_gan):
        service = SynthesisService(trained_gan, pool_size=64, seed=1)
        service.sample_records(5)
        calls = service.stats.generator_calls
        for n in (7, 9, 11):
            service.sample_records(n)
        assert service.stats.generator_calls == calls
        assert service.stats.pool_hits == 3

    def test_pool_disabled_generates_exactly_what_is_needed(self, trained_gan):
        service = SynthesisService(trained_gan, pool_size=0, seed=1)
        service.sample_records(5)
        assert service.stats.rows_generated == 5
        assert service.pooled_rows == 0


class TestTakeBlock:
    def test_reports_stream_offsets(self, trained_gan):
        service = SynthesisService(trained_gan, seed=5)
        first, base_1 = service.take_block([3, 4])
        second, base_2 = service.take_block([6])
        assert (base_1, base_2) == (0, 7)
        assert [block.shape[0] for block in first] == [3, 4]
        assert service.stream_position == 13
        direct = trained_gan.record_sampler().sample_table(
            13, rng=np.random.default_rng(5)
        )
        stacked = np.concatenate([*first, *second])
        assert np.array_equal(stacked, direct.values)

    def test_empty_batch(self, trained_gan):
        service = SynthesisService(trained_gan, seed=5)
        blocks, base = service.take_block([])
        assert blocks == [] and base == 0


class TestReplenish:
    def test_replenish_pre_generates_without_claiming(self, trained_gan):
        service = SynthesisService(trained_gan, pool_size=32, seed=6)
        assert service.replenish() == 32
        assert service.pooled_rows == 32
        assert service.stream_position == 0
        assert service.replenish() == 0  # already full
        assert service.replenish(target=0) == 0
        # Read-ahead is invisible to the stream contract: the next sample
        # still serves the stream head, bit-identical to a direct run.
        got = service.sample(40)
        direct = trained_gan.record_sampler().sample_table(
            40, rng=np.random.default_rng(6)
        )
        assert np.array_equal(got.values, direct.values)

    def test_replenish_disabled_without_pool(self, trained_gan):
        service = SynthesisService(trained_gan, pool_size=0, seed=6)
        assert service.replenish() == 0
        assert service.pooled_rows == 0


class TestThreadSafety:
    def test_concurrent_callers_partition_the_stream(self, trained_gan):
        """The pool and stats survive concurrent callers: every response
        is a contiguous slice, the slices are disjoint, and together they
        tile one seeded record stream with no duplicates."""
        service = SynthesisService(trained_gan, pool_size=48, seed=9)
        per_thread = [(3, 1, 5), (2, 7, 4), (6, 2, 2), (1, 8, 3),
                      (4, 4, 1), (5, 3, 2)]
        results = []
        results_lock = threading.Lock()

        def worker(counts):
            for n in counts:
                blocks, base = service.take_block([n])
                with results_lock:
                    results.append((base, blocks[0]))

        threads = [threading.Thread(target=worker, args=(counts,))
                   for counts in per_thread]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = sum(sum(counts) for counts in per_thread)
        n_requests = sum(len(counts) for counts in per_thread)
        assert service.stats.requests == n_requests
        assert service.stats.rows_served == total
        assert service.stream_position == total
        assert service.stats.rows_generated >= total
        assert service.pooled_rows == service.stats.rows_generated - total

        # No duplicate or overlapping slices: offsets + lengths tile
        # [0, total) exactly ...
        results.sort(key=lambda item: item[0])
        position = 0
        for base, block in results:
            assert base == position
            position += block.shape[0]
        assert position == total
        # ... and the tiled content is bit-identical to one direct run.
        direct = trained_gan.record_sampler().sample_table(
            total, rng=np.random.default_rng(9)
        )
        stacked = np.concatenate([block for _, block in results])
        assert np.array_equal(stacked, direct.values)

    def test_concurrent_sample_records_keep_stats_consistent(self,
                                                             trained_gan):
        service = SynthesisService(trained_gan, pool_size=32, seed=2)

        def worker():
            for n in (2, 3, 4):
                service.sample_records(n)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert service.stats.requests == 24
        assert service.stats.rows_served == 8 * 9
        assert service.stream_position == 8 * 9


class TestInferenceMode:
    def test_serving_does_not_perturb_batchnorm(self, trained_gan):
        from repro.nn import BatchNorm

        bns = [
            layer for layer in trained_gan.generator_
            if isinstance(layer, BatchNorm)
        ]
        before = [(bn.running_mean.copy(), bn.running_var.copy()) for bn in bns]
        SynthesisService(trained_gan, pool_size=32, seed=2).sample(48)
        for bn, (mean, var) in zip(bns, before):
            assert np.array_equal(bn.running_mean, mean)
            assert np.array_equal(bn.running_var, var)
